"""repro — reproduction of "Enhancing DNS Resilience against Denial of
Service Attacks" (Pappas, Massey, Zhang — DSN 2007).

The library builds a synthetic DNS delegation hierarchy, replays query
traces through a full iterative caching resolver, and implements the
paper's three resilience schemes — TTL refresh, credit-based TTL renewal
(LRU / LFU / A-LRU / A-LFU) and long IRR TTLs — plus the harnesses that
regenerate every table and figure of the paper's evaluation.

Quickstart::

    from repro import (
        ResilienceConfig, Scale, make_scenario, run_replay, AttackSpec,
    )

    scenario = make_scenario(Scale.TINY)
    result = run_replay(
        scenario.built,
        scenario.trace("TRC1"),
        ResilienceConfig.refresh_renew("a-lfu", credit=5),
        attack=AttackSpec(),   # root + TLDs blocked for 6 h on day 7
    )
    print(result.sr_attack_failure_rate)
"""

from repro.core.cache import DnsCache
from repro.core.caching_server import CachingServer, Resolution, ResolutionOutcome
from repro.core.config import ResilienceConfig
from repro.core.policies import (
    AdaptiveLFUPolicy,
    AdaptiveLRUPolicy,
    LFUPolicy,
    LRUPolicy,
    RenewalPolicy,
    make_policy,
)
from repro.dns.message import Message, Question, Rcode
from repro.dns.name import Name, root_name
from repro.dns.records import InfrastructureRecordSet, ResourceRecord, RRset
from repro.dns.rrtypes import RRClass, RRType
from repro.dns.dnssec import make_dnskey_rrset, make_ds_rrset, sign_irrs
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone, ZoneBuilder
from repro.dns.zonefile import dump_zone, load_zone, load_zone_file, parse_zone_text
from repro.experiments.harness import AttackSpec, ReplayResult, run_replay
from repro.experiments.scenarios import Scale, Scenario, make_scenario
from repro.hierarchy.builder import (
    BuiltHierarchy,
    HierarchyBuilder,
    HierarchyConfig,
    build_hierarchy,
)
from repro.hierarchy.churn import ChurnEvent, ChurnSchedule, apply_churn_event, generate_churn
from repro.hierarchy.tree import ZoneTree
from repro.simulation.attack import (
    AttackSchedule,
    AttackWindow,
    attack_on_root_and_tlds,
    attack_on_zones,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.network import LatencyModel, Network
from repro.workload.generator import TraceGenerator, WorkloadConfig
from repro.workload.trace import Trace, TraceQuery, read_trace, write_trace

__version__ = "1.0.0"

__all__ = [
    "AdaptiveLFUPolicy",
    "AdaptiveLRUPolicy",
    "AttackSchedule",
    "AttackSpec",
    "AttackWindow",
    "AuthoritativeServer",
    "BuiltHierarchy",
    "ChurnEvent",
    "ChurnSchedule",
    "CachingServer",
    "DnsCache",
    "HierarchyBuilder",
    "HierarchyConfig",
    "InfrastructureRecordSet",
    "LFUPolicy",
    "LRUPolicy",
    "LatencyModel",
    "Message",
    "Name",
    "Network",
    "Question",
    "RRClass",
    "RRType",
    "RRset",
    "Rcode",
    "RenewalPolicy",
    "ReplayResult",
    "Resolution",
    "ResolutionOutcome",
    "ResilienceConfig",
    "ResourceRecord",
    "Scale",
    "Scenario",
    "SimulationEngine",
    "Trace",
    "TraceGenerator",
    "TraceQuery",
    "WorkloadConfig",
    "Zone",
    "ZoneBuilder",
    "ZoneTree",
    "apply_churn_event",
    "attack_on_root_and_tlds",
    "attack_on_zones",
    "build_hierarchy",
    "dump_zone",
    "generate_churn",
    "load_zone",
    "load_zone_file",
    "make_dnskey_rrset",
    "make_ds_rrset",
    "parse_zone_text",
    "sign_irrs",
    "make_policy",
    "make_scenario",
    "read_trace",
    "root_name",
    "run_replay",
    "write_trace",
    "__version__",
]
