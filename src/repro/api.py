"""Stable programmatic facade for the reproduction library.

Importing from ``repro.api`` is the supported way to drive replays and
experiments from code; everything listed in ``__all__`` keeps working
across internal refactors.  The deeper module paths
(``repro.experiments.harness`` and friends) remain importable but may
move between releases.

Typical use::

    from repro.api import EXPERIMENTS, ObservationSpec, ReplaySpec, run_replays

    summary, = run_replays([
        ReplaySpec.for_scenario(
            scenario, "TRC1", config,
            observe=ObservationSpec(events_path="events.jsonl"),
        )
    ])
    result = EXPERIMENTS["latency"].run()
"""

from __future__ import annotations

from repro.core.budget import FetchBudget
from repro.core.clock import Clock, VirtualClock
from repro.core.config import ResilienceConfig, RetryPolicy
from repro.core.schemes import parse_scheme, scheme_syntax
from repro.core.transport import Upstream
from repro.experiments import EXPERIMENTS
from repro.experiments.harness import AttackSpec, ReplayResult, run_replay
from repro.experiments.parallel import (
    FleetMemberSummary,
    FleetSpec,
    FleetSummary,
    ReplayExecutionError,
    ReplaySpec,
    run_replays,
    summarize_replay,
)
from repro.experiments.registry import CommandDef, ExperimentDef, resolve_scale
from repro.experiments.scenarios import Scale, Scenario, make_scenario
from repro.experiments.summary import ReplaySummary
from repro.obs import (
    Event,
    EventBus,
    EventKind,
    FlightRecorder,
    JsonlSink,
    MetricSink,
    ObservationContext,
    ObservationSpec,
    PrometheusSink,
    StageTimings,
    TimeSeriesSink,
)
from repro.serve import ServeSpec, serve
from repro.serve.clock import WallClock
from repro.simulation.adversary import (
    AdversarySpec,
    FlashCrowdSpec,
    NxnsAttackSpec,
    PoisonAttackSpec,
)
from repro.simulation.faults import FaultInjector, FaultSpec
from repro.validation import (
    DifferentialCache,
    DivergenceError,
    InvariantViolation,
    OracleCache,
    ValidationError,
    check_cache_invariants,
    check_renewal_invariants,
    run_fuzz,
)

__all__ = [
    "AdversarySpec",
    "AttackSpec",
    "Clock",
    "CommandDef",
    "DifferentialCache",
    "DivergenceError",
    "EXPERIMENTS",
    "Event",
    "EventBus",
    "EventKind",
    "ExperimentDef",
    "FaultInjector",
    "FaultSpec",
    "FetchBudget",
    "FlashCrowdSpec",
    "FleetMemberSummary",
    "FleetSpec",
    "FleetSummary",
    "FlightRecorder",
    "InvariantViolation",
    "JsonlSink",
    "MetricSink",
    "NxnsAttackSpec",
    "ObservationContext",
    "ObservationSpec",
    "OracleCache",
    "PoisonAttackSpec",
    "PrometheusSink",
    "ReplayExecutionError",
    "ReplayResult",
    "ReplaySpec",
    "ReplaySummary",
    "ResilienceConfig",
    "RetryPolicy",
    "Scale",
    "Scenario",
    "ServeSpec",
    "StageTimings",
    "TimeSeriesSink",
    "Upstream",
    "ValidationError",
    "VirtualClock",
    "WallClock",
    "check_cache_invariants",
    "check_renewal_invariants",
    "make_scenario",
    "parse_scheme",
    "resolve_scale",
    "run_fuzz",
    "run_replay",
    "run_replays",
    "scheme_syntax",
    "serve",
    "summarize_replay",
]
