"""Zero-cost source annotations read by the whole-program audit.

The :mod:`repro.devtools.audit` analyzer enforces cross-module
invariants (memo-invalidation completeness, copy-on-write safety, ...)
that it cannot infer from bare code alone.  The conventions here are the
declaration side of that contract:

* ``@invalidates("memo")`` marks a method as the *invalidator* of a memo
  declared with a ``# repro: memo(...)`` class-body comment.  The audit
  cross-checks that the declared invalidator carries the decorator and
  that every mutator of the memo's dependency fields reaches it.
* ``# repro: memo(name: field=_f, depends=[a, b], invalidator=m)`` —
  class-body comment declaring a memoized derived view: which instance
  fields the cached value is computed from and which method clears it
  (``invalidator=none`` for fill-only memos whose mutators must clear
  the storage field directly).
* ``# repro: published`` — class-body comment marking a class whose
  instances are built once in the parent process and handed to forked
  replay workers copy-on-write (DESIGN.md §14).
* ``# repro: publishes`` — comment inside the function that performs
  that pre-fork build, marking the publication point.
* ``# repro: pickled-boundary`` — class-body comment marking a spec or
  summary dataclass that crosses the worker process boundary; every
  field type transitively reachable from it must stay picklable.

The decorator is deliberately a no-op at runtime: annotations must never
cost the hot path anything.  All enforcement is static.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable[..., object])

__all__ = ["invalidates"]


def invalidates(*memos: str) -> Callable[[_F], _F]:
    """Declare that the decorated method invalidates the named memos.

    Purely declarative: the decorated function is returned unchanged.
    The audit (``repro audit``, rule REP010) uses the decorator to
    verify that the method named by a ``# repro: memo(...)`` declaration
    really is marked as that memo's invalidator, so renames and
    refactors cannot silently detach the two.
    """
    if not memos:
        raise ValueError("@invalidates needs at least one memo name")

    def mark(func: _F) -> _F:
        return func

    return mark
