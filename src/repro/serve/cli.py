"""The ``repro serve`` subcommand: handler + registry entry.

Registered through the same :class:`~repro.experiments.registry.CommandDef`
machinery as ``repro events`` and ``repro bench`` — every flag below is
generated from :class:`~repro.serve.spec.ServeSpec`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import sys

from repro.experiments.registry import CommandDef
from repro.serve.driver import selftest
from repro.serve.spec import ServeSpec


async def _serve_forever(spec: ServeSpec) -> int:
    from repro.serve.server import DnsFrontEnd

    front_end = DnsFrontEnd(spec)
    await front_end.start()
    try:
        if front_end.udp_address is None:
            raise RuntimeError("front end did not bind a UDP port")
        host, port = front_end.udp_address
        print(f"repro serve: DNS on {host}:{port} (udp+tcp), "
              f"scheme {spec.scheme}, seed {spec.seed}")
        if front_end.metrics_address is not None:
            mhost, mport = front_end.metrics_address
            print(f"repro serve: metrics on http://{mhost}:{mport}/metrics")
        names = front_end.sample_names(spec.print_names)
        for name in names:
            print(f"  try: dig @{host} -p {port} {name} A")
        await asyncio.Event().wait()  # until cancelled (Ctrl-C)
    finally:
        await front_end.stop()
    return 0


def run_serve(spec: ServeSpec) -> int:
    """Serve forever, or run the hermetic selftest when asked."""
    if spec.selftest:
        # The selftest must not collide with a real deployment: bind
        # ephemeral ports regardless of what the spec says.
        hermetic = dataclasses.replace(spec, port=0, metrics_port=-1)
        report = asyncio.run(selftest(hermetic))
        print(report.render())
        if spec.selftest_out:
            with open(spec.selftest_out, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
            print(f"load report written to {spec.selftest_out}")
        if report.answered == 0:
            print("error: selftest resolved nothing", file=sys.stderr)
            return 1
        return 0
    try:
        return asyncio.run(_serve_forever(spec))
    except KeyboardInterrupt:
        print("repro serve: stopped")
        return 0


SERVE_COMMAND = CommandDef(
    name="serve",
    help="answer real DNS queries (UDP+TCP) from the simulated hierarchy",
    spec_type=ServeSpec,
    handler=run_serve,
)
