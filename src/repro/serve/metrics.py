"""Serve-side counters plus the HTTP endpoint that exposes them.

The endpoint renders two blocks in one scrape: the front end's own
counters (queries by transport, singleflight dedups, stale serves,
truncations) and the existing obs :class:`~repro.obs.sinks.PrometheusSink`
fed by the resolver core's event bus — so one ``curl`` shows both the
transport layer and the simulation-grade event taxonomy underneath it.
"""

from __future__ import annotations

import asyncio

from repro.obs.sinks import PrometheusSink


class ServeMetrics:
    """Plain counters for the wall-clock front end.

    Mutated from the loop thread only (the resolver thread reports back
    through futures), read by the scrape handler on the same thread —
    no locking needed.
    """

    __slots__ = (
        "udp_queries", "tcp_queries", "singleflight_hits", "stale_served",
        "truncated", "formerr", "servfail", "budget_rejections",
        "stale_memo_entries",
    )

    def __init__(self) -> None:
        self.udp_queries = 0
        self.tcp_queries = 0
        self.singleflight_hits = 0
        self.stale_served = 0
        self.truncated = 0
        self.formerr = 0
        self.servfail = 0
        self.budget_rejections = 0
        self.stale_memo_entries = 0

    @property
    def queries_total(self) -> int:
        return self.udp_queries + self.tcp_queries

    def render(self) -> str:
        """The front-end counters in Prometheus text exposition format."""
        lines = [
            "# HELP repro_serve_queries_total DNS queries received by transport.",
            "# TYPE repro_serve_queries_total counter",
            f'repro_serve_queries_total{{transport="udp"}} {self.udp_queries}',
            f'repro_serve_queries_total{{transport="tcp"}} {self.tcp_queries}',
            "# HELP repro_serve_singleflight_hits_total "
            "Queries deduplicated onto an in-flight resolution.",
            "# TYPE repro_serve_singleflight_hits_total counter",
            f"repro_serve_singleflight_hits_total {self.singleflight_hits}",
            "# HELP repro_serve_stale_served_total "
            "Stale answers served while a refetch was in flight.",
            "# TYPE repro_serve_stale_served_total counter",
            f"repro_serve_stale_served_total {self.stale_served}",
            "# HELP repro_serve_truncated_total UDP responses truncated with TC set.",
            "# TYPE repro_serve_truncated_total counter",
            f"repro_serve_truncated_total {self.truncated}",
            "# HELP repro_serve_formerr_total Queries dropped or refused as malformed.",
            "# TYPE repro_serve_formerr_total counter",
            f"repro_serve_formerr_total {self.formerr}",
            "# HELP repro_serve_servfail_total Resolutions that failed (SERVFAIL sent).",
            "# TYPE repro_serve_servfail_total counter",
            f"repro_serve_servfail_total {self.servfail}",
            "# HELP repro_serve_budget_rejections_total "
            "Queries refused because the client exceeded its concurrent "
            "upstream-fetch budget.",
            "# TYPE repro_serve_budget_rejections_total counter",
            f"repro_serve_budget_rejections_total {self.budget_rejections}",
            "# HELP repro_serve_stale_memo_entries "
            "Entries currently held by the bounded serve-stale memo.",
            "# TYPE repro_serve_stale_memo_entries gauge",
            f"repro_serve_stale_memo_entries {self.stale_memo_entries}",
        ]
        return "\n".join(lines) + "\n"


def render_scrape(metrics: ServeMetrics, sink: PrometheusSink) -> str:
    """One scrape body: front-end counters + the obs event counters."""
    return metrics.render() + sink.render()


async def start_metrics_server(
    host: str,
    port: int,
    metrics: ServeMetrics,
    sink: PrometheusSink,
) -> asyncio.AbstractServer:
    """Serve ``render_scrape`` over minimal HTTP/1.0 at any path."""

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            # Drain the request head; the response is the same for
            # every path and method.
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = render_scrape(metrics, sink).encode("utf-8")
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                + f"Content-Type: {PrometheusSink.CONTENT_TYPE}\r\n"
                  f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
            )
            writer.write(body)
            await writer.drain()
        finally:
            writer.close()

    return await asyncio.start_server(handle, host, port)
