"""ServeSpec: the frozen, picklable description of one ``repro serve``.

Follows the experiment-spec contract (DESIGN.md §10): every field is a
CLI-expressible value, so the ``repro serve`` subcommand's flags are
generated from this dataclass by the same registry machinery the
experiments use — one source of truth for names, defaults and help.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.scenarios import Scale


@dataclass(frozen=True)
class ServeSpec:
    """What to serve, where to bind, and how to self-test."""

    host: str = field(default="127.0.0.1", metadata={
        "help": "address to bind the DNS and metrics listeners on"})
    port: int = field(default=5353, metadata={
        "help": "UDP+TCP port for DNS (0 picks a free port)"})
    metrics_port: int = field(default=9153, metadata={
        "help": "HTTP port for the Prometheus endpoint (0 picks, -1 disables)"})
    scheme: str = field(default="combination", metadata={
        "help": "resilience scheme for the resolver core "
                "(vanilla, refresh, a-lfu:5, long-ttl:7, swr:3600, "
                "decoupled:7, ...)"})
    scale: Scale | None = field(default=None, metadata={
        "help": "zone-tree scale to build and answer from"})
    seed: int = field(default=7, metadata={
        "help": "hierarchy/trace seed (fixes which names exist)"})
    udp_payload_max: int = field(default=512, metadata={
        "help": "UDP response ceiling before TC truncation"})
    stale_grace: float = field(default=30.0, metadata={
        "help": "seconds a stale answer may be served while an identical "
                "question is being refetched"})
    stale_memo_max: int = field(default=4096, metadata={
        "help": "max entries in the serve-stale memo (expired entries "
                "are swept first, then oldest-stored; 0 disables the "
                "memo entirely)"})
    client_fetch_budget: int = field(default=0, metadata={
        "help": "max concurrent upstream resolutions per client address "
                "(0 = unlimited); over-budget queries get SERVFAIL"})
    print_names: int = field(default=3, metadata={
        "help": "log this many resolvable sample names at startup"})
    selftest: bool = field(default=False, metadata={
        "help": "serve on a loopback port, run the closed-loop load "
                "driver against it, print qps/latency, exit"})
    selftest_queries: int = field(default=300, metadata={
        "help": "total queries the selftest driver sends"})
    selftest_clients: int = field(default=8, metadata={
        "help": "concurrent closed-loop selftest clients"})
    selftest_out: str | None = field(default=None, metadata={
        "help": "write the selftest load report as JSON to this path"})

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port {self.port} out of range")
        if not -1 <= self.metrics_port <= 65535:
            raise ValueError(f"metrics_port {self.metrics_port} out of range")
        if self.udp_payload_max < 64:
            raise ValueError("udp_payload_max must be at least 64 octets")
        if self.stale_grace < 0:
            raise ValueError("stale_grace must be non-negative")
        if self.stale_memo_max < 0:
            raise ValueError("stale_memo_max must be non-negative")
        if self.client_fetch_budget < 0:
            raise ValueError("client_fetch_budget must be non-negative")
        if self.selftest_queries < 1 or self.selftest_clients < 1:
            raise ValueError("selftest_queries/clients must be positive")
