"""The asyncio DNS front end: UDP + TCP listeners over a CachingServer.

Threading model (the whole design in one paragraph): the asyncio loop
thread owns sockets, parses/encodes packets, and keeps the singleflight
and serve-stale state; one dedicated resolver thread owns the
:class:`~repro.core.caching_server.CachingServer` — every stub query
*and* every renewal timer body (via :class:`~repro.serve.clock.WallClock`'s
runner) executes there, preserving the core's single-threaded
discipline without any locks inside it.

Front-end semantics layered on top of the core:

* **Singleflight** — concurrent identical questions (same name/type)
  collapse onto one in-flight resolution; followers await its future.
* **Serve-stale during refetch** — a follower that finds a previous
  answer within ``ttl + stale_grace`` is answered from it immediately
  instead of waiting on the in-flight refetch (the refetch still
  completes and refreshes the memo).
* **Truncation + TCP fallback** — UDP responses above the spec's
  payload ceiling degrade to TC-marked header+question; the TCP
  listener answers the retry without a ceiling.
"""

from __future__ import annotations

import asyncio
import struct
from concurrent.futures import ThreadPoolExecutor

from repro.core.budget import FetchBudget
from repro.core.caching_server import CachingServer, Resolution, ResolutionOutcome
from repro.core.schemes import parse_scheme
from repro.dns.message import Message, Question, Rcode
from repro.dns.name import Name
from repro.dns.rrtypes import RRTYPE_BITS
from repro.experiments.registry import resolve_scale
from repro.experiments.scenarios import make_scenario
from repro.obs.events import EventBus
from repro.obs.sinks import PrometheusSink
from repro.serve.clock import WallClock
from repro.serve.metrics import ServeMetrics, start_metrics_server
from repro.serve.spec import ServeSpec
from repro.serve.wire import (
    FLAG_QR,
    FLAG_TC,
    HEADER,
    DecodedQuery,
    WireFormatError,
    decode_query,
    encode_response,
    frame_tcp,
)

_TCP_LENGTH = struct.Struct("!H")

#: Non-failure outcomes without an answer RRset (NXDOMAIN / NODATA) are
#: memoised for this long — the serve-stale memo's negative TTL.
_NEGATIVE_MEMO_TTL = 5.0


class _UdpProtocol(asyncio.DatagramProtocol):
    def __init__(self, front_end: "DnsFrontEnd") -> None:
        self._front_end = front_end
        self.transport: asyncio.DatagramTransport | None = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]

    def datagram_received(self, data: bytes, addr: tuple) -> None:
        transport = self.transport
        if transport is not None:
            self._front_end._on_udp(data, addr, transport)


class DnsFrontEnd:
    """One bound front end: sockets, metrics, and the resolver thread."""

    def __init__(self, spec: ServeSpec) -> None:
        self.spec = spec
        scenario = make_scenario(resolve_scale(spec.scale), seed=spec.seed)
        self._built = scenario.built
        self._config = parse_scheme(spec.scheme)
        self.metrics = ServeMetrics()
        self.bus = EventBus()
        self.prometheus = PrometheusSink().attach(self.bus)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-resolver"
        )
        self.clock: WallClock | None = None
        self.server: CachingServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        # Singleflight: packed question key -> the in-flight resolution.
        self._inflight: dict[int, asyncio.Future[Resolution]] = {}
        # Per-client concurrent upstream-fetch budgets (empty when the
        # spec leaves client_fetch_budget at 0 = unlimited).  Budgets
        # cap *leader* resolutions only: singleflight followers and
        # stale serves cost the upstream nothing, so they stay free —
        # an abusive client is limited precisely in the currency it
        # burns, resolver work.
        self._client_budgets: dict[str, FetchBudget] = {}
        # Serve-stale memo: packed key -> (stored_at, ttl, resolution).
        self._last_good: dict[int, tuple[float, float, Resolution]] = {}
        self._udp_transport: asyncio.DatagramTransport | None = None
        self._tcp_server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        self.udp_address: tuple[str, int] | None = None
        self.metrics_address: tuple[str, int] | None = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind UDP/TCP/metrics listeners and build the resolver core."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self.clock = WallClock(loop, runner=self._executor.submit)
        self.server = CachingServer(
            root_hints=self._built.tree.root_hints(),
            network=self._make_upstream(),
            clock=self.clock,
            config=self._config,
            observer=self.bus,
        )
        spec = self.spec
        self._udp_transport, _ = await loop.create_datagram_endpoint(
            lambda: _UdpProtocol(self),
            local_addr=(spec.host, spec.port),
        )
        sockname = self._udp_transport.get_extra_info("sockname")
        self.udp_address = (sockname[0], sockname[1])
        # TCP binds the port UDP actually got (matters when port=0).
        self._tcp_server = await asyncio.start_server(
            self._on_tcp, spec.host, self.udp_address[1]
        )
        if spec.metrics_port >= 0:
            self._metrics_server = await start_metrics_server(
                spec.host, spec.metrics_port, self.metrics, self.prometheus
            )
            msock = self._metrics_server.sockets[0].getsockname()
            self.metrics_address = (msock[0], msock[1])

    def _make_upstream(self):  # noqa: ANN202 - Upstream protocol
        """The transport the core resolves through.

        The front end answers from the *simulated* zone tree (that is
        the point: real traffic against the paper's hierarchy), so this
        is the simulated Network; swap in
        :class:`~repro.serve.upstream.UdpUpstream` here to resolve
        against live servers instead.
        """
        from repro.simulation.network import Network

        return Network(self._built.tree)

    async def stop(self) -> None:
        """Close listeners, drain in-flight work, stop the resolver."""
        for task in list(self._tasks):
            task.cancel()
        if self._udp_transport is not None:
            self._udp_transport.close()
        for server in (self._tcp_server, self._metrics_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._executor.shutdown(wait=True, cancel_futures=True)

    def sample_names(self, count: int) -> tuple[Name, ...]:
        """Deterministic resolvable host names (for clients and tests)."""
        names = [
            hosts[0]
            for _zone, hosts in sorted(self._built.catalog.items())
            if hosts
        ]
        return tuple(names[:count])

    # -- datagram / stream entry points -------------------------------------

    def _on_udp(
        self, data: bytes, addr: tuple, transport: asyncio.DatagramTransport
    ) -> None:
        try:
            query = decode_query(data)
        except WireFormatError:
            self.metrics.formerr += 1
            reject = _formerr_for(data)
            if reject is not None:
                transport.sendto(reject, addr)
            return
        self.metrics.udp_queries += 1
        self._spawn(self._answer_udp(query, addr, transport))

    async def _answer_udp(
        self,
        query: DecodedQuery,
        addr: tuple,
        transport: asyncio.DatagramTransport,
    ) -> None:
        message = await self._resolve(query, client=addr[0])
        payload = encode_response(
            message,
            message_id=query.message_id,
            raw_labels=query.raw_labels,
            recursion_desired=query.recursion_desired,
            max_size=self.spec.udp_payload_max,
        )
        if payload[2] & (FLAG_TC >> 8):
            self.metrics.truncated += 1
        transport.sendto(payload, addr)

    async def _on_tcp(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        client = peername[0] if peername else "tcp"
        try:
            while True:
                try:
                    header = await reader.readexactly(_TCP_LENGTH.size)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                (length,) = _TCP_LENGTH.unpack(header)
                data = await reader.readexactly(length)
                try:
                    query = decode_query(data)
                except WireFormatError:
                    self.metrics.formerr += 1
                    reject = _formerr_for(data)
                    if reject is None:
                        return
                    writer.write(frame_tcp(reject))
                    await writer.drain()
                    continue
                self.metrics.tcp_queries += 1
                message = await self._resolve(query, client=client)
                payload = encode_response(
                    message,
                    message_id=query.message_id,
                    raw_labels=query.raw_labels,
                    recursion_desired=query.recursion_desired,
                )
                writer.write(frame_tcp(payload))
                await writer.drain()
        finally:
            writer.close()

    # -- resolution: singleflight + serve-stale -----------------------------

    async def _resolve(self, query: DecodedQuery, client: str = "") -> Message:
        question = query.question
        key = (question.name.iid << RRTYPE_BITS) | question.rrtype
        flight = self._inflight.get(key)
        if flight is not None:
            self.metrics.singleflight_hits += 1
            stale = self._usable_memo(key)
            if stale is not None:
                self.metrics.stale_served += 1
                return self._render(question, query.message_id, stale)
            resolution = await asyncio.shield(flight)
        else:
            budget = self._client_budget(client)
            if budget is not None and not budget.spend():
                # Over-budget clients get an immediate SERVFAIL instead
                # of a resolver-thread slot (graceful refusal, same
                # semantics as the simulated fetch budget).
                self.metrics.budget_rejections += 1
                resolution = Resolution(ResolutionOutcome.FAILURE)
            else:
                try:
                    resolution = await self._resolve_leader(key, question)
                finally:
                    if budget is not None:
                        budget.release()
        if resolution.failed:
            self.metrics.servfail += 1
        return self._render(question, query.message_id, resolution)

    def _client_budget(self, client: str) -> FetchBudget | None:
        limit = self.spec.client_fetch_budget
        if limit <= 0:
            return None
        budget = self._client_budgets.get(client)
        if budget is None:
            budget = FetchBudget(limit)
            self._client_budgets[client] = budget
        return budget

    async def _resolve_leader(self, key: int, question: Question) -> Resolution:
        loop, clock, server = self._loop, self.clock, self.server
        if loop is None or clock is None or server is None:
            raise RuntimeError("front end not started")
        future: asyncio.Future[Resolution] = loop.create_future()
        self._inflight[key] = future

        def work() -> Resolution:
            return server.handle_stub_query(
                question.name, question.rrtype, clock.now()
            )

        try:
            resolution = await loop.run_in_executor(self._executor, work)
        except BaseException as error:
            if not future.done():
                future.set_exception(error)
            # The future's consumers re-raise; keep the memo untouched.
            future.exception()  # mark retrieved for followers-free case
            raise
        else:
            if not future.done():
                future.set_result(resolution)
            if not resolution.failed:
                ttl = (
                    resolution.answer.ttl
                    if resolution.answer is not None
                    else _NEGATIVE_MEMO_TTL
                )
                self._store_memo(key, clock.now(), ttl, resolution)
            return resolution
        finally:
            self._inflight.pop(key, None)

    def _store_memo(
        self, key: int, now: float, ttl: float, resolution: Resolution
    ) -> None:
        """File one answer in the serve-stale memo, keeping it bounded.

        Unbounded growth was the PR-5 negative-cache bug shape all over
        again: entries were only ever evicted when their exact key was
        probed after expiry, so one pass over many distinct names pinned
        memory forever.  Now every store re-inserts (so dict order is
        storage order), sweeps entries past ``ttl + stale_grace`` when
        the cap is hit, and falls back to oldest-stored eviction.
        """
        memo = self._last_good
        limit = self.spec.stale_memo_max
        if limit <= 0:
            return
        memo.pop(key, None)
        memo[key] = (now, ttl, resolution)
        if len(memo) > limit:
            grace = self.spec.stale_grace
            expired = [
                stale_key
                for stale_key, (stored_at, entry_ttl, _) in memo.items()
                if now - stored_at > entry_ttl + grace
            ]
            for stale_key in expired:
                del memo[stale_key]
            while len(memo) > limit:
                del memo[next(iter(memo))]
        self.metrics.stale_memo_entries = len(memo)

    def _usable_memo(self, key: int) -> Resolution | None:
        if self.clock is None:
            raise RuntimeError("front end not started")
        memo = self._last_good.get(key)
        if memo is None:
            return None
        stored_at, ttl, resolution = memo
        age = self.clock.now() - stored_at
        if age <= ttl + self.spec.stale_grace:
            return resolution
        del self._last_good[key]
        self.metrics.stale_memo_entries = len(self._last_good)
        return None

    def _render(
        self, question: Question, message_id: int, resolution: Resolution
    ) -> Message:
        rcode = Rcode.NOERROR
        answer: tuple = ()
        if resolution.failed:
            rcode = Rcode.SERVFAIL
        elif resolution.outcome is ResolutionOutcome.NXDOMAIN:
            rcode = Rcode.NXDOMAIN
        elif resolution.answer is not None:
            answer = (resolution.answer,)
        return Message(
            question=question,
            rcode=rcode,
            authoritative=False,
            answer=answer,
            message_id=message_id,
        )

    def _spawn(self, coroutine) -> None:  # noqa: ANN001
        if self._loop is None:
            raise RuntimeError("front end not started")
        task = self._loop.create_task(coroutine)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)


def _formerr_for(data: bytes) -> bytes | None:
    """A minimal FORMERR reply when the packet at least carries an id."""
    if len(data) < HEADER.size:
        return None
    message_id, flags = struct.unpack_from("!HH", data)
    if flags & FLAG_QR:
        return None  # never answer answers
    return HEADER.pack(
        message_id, FLAG_QR | int(Rcode.FORMERR), 0, 0, 0, 0
    )


async def serve_until(
    spec: ServeSpec,
    shutdown: "asyncio.Event | None" = None,
) -> DnsFrontEnd:
    """Start a front end and (when given) block until ``shutdown``.

    Returns the running front end; the caller owns ``stop()`` when no
    shutdown event is supplied.
    """
    front_end = DnsFrontEnd(spec)
    await front_end.start()
    if shutdown is not None:
        try:
            await shutdown.wait()
        finally:
            await front_end.stop()
    return front_end
