"""Closed-loop UDP load driver for a running ``repro serve`` front end.

Each client keeps exactly one query in flight (closed loop — the paper's
stub-resolver model), round-robining over a fixed name list.  Latencies
are wall-clock per-query; the report carries throughput and the p50/p99
tail the bench harness records in ``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass

from repro.dns.message import Question
from repro.dns.name import Name
from repro.dns.rrtypes import RRType
from repro.serve.wire import WireFormatError, decode_message, encode_query


@dataclass(frozen=True)
class LoadReport:
    """What one closed-loop run measured."""

    queries: int
    answered: int
    failed: int
    duration_seconds: float
    qps: float
    p50_ms: float
    p99_ms: float

    def as_dict(self) -> dict[str, float | int]:
        return {
            "queries": self.queries,
            "answered": self.answered,
            "failed": self.failed,
            "duration_seconds": self.duration_seconds,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        return (
            f"{self.queries} queries in {self.duration_seconds:.2f}s "
            f"({self.qps:.0f} qps), {self.answered} answered / "
            f"{self.failed} failed, p50 {self.p50_ms:.2f}ms, "
            f"p99 {self.p99_ms:.2f}ms"
        )


class _ClientProtocol(asyncio.DatagramProtocol):
    """Resolves the pending future matching each response's message id."""

    def __init__(self) -> None:
        self.pending: dict[int, asyncio.Future[bytes]] = {}

    def datagram_received(self, data: bytes, addr: tuple) -> None:
        if len(data) < 2:
            return
        message_id = (data[0] << 8) | data[1]
        future = self.pending.pop(message_id, None)
        if future is not None and not future.done():
            future.set_result(data)

    def error_received(self, error: Exception) -> None:
        for future in self.pending.values():
            if not future.done():
                future.set_exception(error)
        self.pending.clear()


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = int(fraction * (len(sorted_values) - 1))
    return sorted_values[index]


async def run_load(
    host: str,
    port: int,
    names: "tuple[Name, ...] | list[Name]",
    *,
    queries: int,
    clients: int,
    timeout: float = 2.0,
) -> LoadReport:
    """Send ``queries`` questions from ``clients`` closed-loop clients."""
    if not names:
        raise ValueError("run_load needs at least one name to query")
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    answered = 0
    failed = 0
    sent = 0
    next_id = 1

    async def client(worker: int) -> None:
        nonlocal answered, failed, sent, next_id
        transport, protocol = await loop.create_datagram_endpoint(
            _ClientProtocol, remote_addr=(host, port)
        )
        try:
            position = worker
            while sent < queries:
                sent += 1
                message_id = next_id & 0xFFFF or 1
                next_id += 1
                name = names[position % len(names)]
                position += clients
                question = Question(name, RRType.A)
                packet = encode_query(question, message_id)
                future: asyncio.Future[bytes] = loop.create_future()
                protocol.pending[message_id] = future
                started = time.perf_counter()
                transport.sendto(packet)
                try:
                    data = await asyncio.wait_for(future, timeout)
                except (asyncio.TimeoutError, OSError):
                    protocol.pending.pop(message_id, None)
                    failed += 1
                    continue
                latencies.append(time.perf_counter() - started)
                try:
                    decoded = decode_message(data)
                except WireFormatError:
                    failed += 1
                    continue
                if decoded.message.rcode.value == 0 and decoded.message.answer:
                    answered += 1
                else:
                    failed += 1
        finally:
            transport.close()

    begin = time.perf_counter()
    await asyncio.gather(*(client(i) for i in range(clients)))
    duration = time.perf_counter() - begin
    latencies.sort()
    total = answered + failed
    return LoadReport(
        queries=total,
        answered=answered,
        failed=failed,
        duration_seconds=duration,
        qps=total / duration if duration > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50) * 1000.0,
        p99_ms=_percentile(latencies, 0.99) * 1000.0,
    )


async def selftest(spec) -> LoadReport:  # noqa: ANN001 - ServeSpec
    """Start a front end per ``spec``, drive it, stop it, report."""
    from repro.serve.server import DnsFrontEnd

    front_end = DnsFrontEnd(spec)
    await front_end.start()
    try:
        if front_end.udp_address is None:
            raise RuntimeError("front end did not bind a UDP port")
        host, port = front_end.udp_address
        names = front_end.sample_names(max(8, spec.selftest_clients))
        return await run_load(
            host,
            port,
            names,
            queries=spec.selftest_queries,
            clients=spec.selftest_clients,
        )
    finally:
        await front_end.stop()
