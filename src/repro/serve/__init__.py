"""``repro serve``: the asyncio UDP/TCP front end over the simulated core.

Everything in this package runs in *wall-clock* territory: it binds real
sockets, reads real time and answers real ``dig`` queries, fronting the
same :class:`~repro.core.caching_server.CachingServer` the replays
exercise — swapped onto a :class:`~repro.serve.clock.WallClock` and (on
request) a real UDP :class:`~repro.serve.upstream.UdpUpstream` through
the Clock/Transport protocols of DESIGN.md §15.

Because wall-clock reads are the point here, ``serve/`` is the one
sanctioned allowlist in the REP001 determinism gate; the simulated core
(``core/``, ``simulation/``) stays under the full gate, and ``repro
audit`` (REP013) still flags any call chain that would let these
modules' time reads taint it.
"""

from repro.serve.driver import LoadReport, run_load
from repro.serve.spec import ServeSpec
from repro.serve.wire import (
    DecodedMessage,
    DecodedQuery,
    WireFormatError,
    decode_message,
    decode_query,
    encode_query,
    encode_response,
)

__all__ = [
    "DecodedMessage",
    "DecodedQuery",
    "LoadReport",
    "ServeSpec",
    "WireFormatError",
    "decode_message",
    "decode_query",
    "encode_query",
    "encode_response",
    "run_load",
    "serve",
]


def serve(spec: ServeSpec) -> int:
    """Run the DNS front end described by ``spec`` until interrupted.

    The stable programmatic entry point (also exported via
    ``repro.api``); equivalent to the ``repro serve`` subcommand.
    Returns a process exit code.
    """
    from repro.serve.cli import run_serve

    return run_serve(spec)
