"""WallClock: the :class:`~repro.core.clock.Clock` protocol on real time.

Time is ``time.monotonic()`` and timers are ``loop.call_later`` handles
on a live asyncio loop.  The resolution core is not thread-safe, so the
server hands the clock a *runner* that funnels every timer body onto
the single resolver thread — renewal refetches fire exactly where stub
queries resolve, serialised with them.

All methods are safe to call from any thread (the resolver thread arms
renewal timers while the loop thread owns the handles); arming and
cancelling marshal onto the loop via ``call_soon_threadsafe``.

This module reads the wall clock on purpose: it lives under the
``serve/`` REP001 allowlist (DESIGN.md §15), and ``repro audit``
(REP013) still rejects any call path from the deterministic core into
it.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from typing import Callable

from repro.core.clock import TimerAction

Runner = Callable[[Callable[[], None]], object]
"""Where timer bodies execute (e.g. ``executor.submit``); defaults to
inline on the loop thread."""

_GONE: object = object()


class WallClock:
    """A thread-safe wall-time :class:`~repro.core.clock.Clock`."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        runner: Runner | None = None,
    ) -> None:
        self._loop = loop
        self._runner = runner
        self._tokens = itertools.count(1)
        # token -> TimerHandle once armed; None between schedule() and
        # the loop callback that arms it.  Absent = fired or cancelled.
        self._timers: dict[int, asyncio.TimerHandle | None] = {}
        self._lock = threading.Lock()

    def now(self) -> float:
        return time.monotonic()

    def schedule(self, delay: float, action: TimerAction) -> int:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        token = next(self._tokens)
        with self._lock:
            self._timers[token] = None
        self._loop.call_soon_threadsafe(self._arm, token, delay, action)
        return token

    def schedule_at(self, when: float, action: TimerAction) -> int:
        return self.schedule(max(0.0, when - self.now()), action)

    def cancel(self, token: int) -> bool:
        with self._lock:
            if token not in self._timers:
                return False
            handle = self._timers.pop(token)
        if handle is not None:
            # Handle cancellation belongs to the loop thread; a timer
            # that beats this callback is caught by _fire's liveness
            # check above.
            self._loop.call_soon_threadsafe(handle.cancel)
        return True

    def pending_timers(self) -> int:
        """Timers armed or awaiting arming (diagnostic)."""
        with self._lock:
            return len(self._timers)

    # -- loop-side internals ------------------------------------------------

    def _arm(self, token: int, delay: float, action: TimerAction) -> None:
        with self._lock:
            if token not in self._timers:
                return  # cancelled before arming
            self._timers[token] = self._loop.call_later(
                delay, self._fire, token, action
            )

    def _fire(self, token: int, action: TimerAction) -> None:
        with self._lock:
            if self._timers.pop(token, _GONE) is _GONE:
                return  # cancelled in the firing race
        body: Callable[[], None] = lambda: action(self.now())
        if self._runner is None:
            body()
        else:
            self._runner(body)
