"""RFC 1035 wire codec: :class:`~repro.dns.message.Message` ⇄ bytes.

The simulator's in-memory messages carry exactly the data a real packet
does (question, three record sections, AA bit, rcode), so the codec is
a straight transliteration of RFC 1035 §4: the 12-octet header, label
sequences with backward compression pointers, and per-type RDATA.  The
struct layout matches the raw-socket resolvers in SNIPPETS.md — the
golden-vector tests parse this codec's output with that exact layout.

Scope notes (the honest deltas from a full implementation):

* No EDNS0.  UDP responses that exceed the 512-octet classic limit are
  truncated to header + question with TC set; clients retry over TCP
  (:func:`frame_tcp` adds the 2-octet length prefix).
* Name-valued RDATA (NS/CNAME/PTR, the SOA names) is compressed and
  decompressed; A/AAAA use their binary forms; TXT uses character
  strings; every other type round-trips its textual rdata as raw UTF-8
  octets (self-consistent, and these types never leave the simulator).
* TTLs are whole seconds on the wire (uint32); the simulator's float
  TTLs are truncated on encode.

Query names preserve the client's octet case: :func:`decode_query`
keeps the raw labels alongside the canonical lowercased
:class:`~repro.dns.name.Name`, and :func:`encode_response` echoes them
back (RFC 1035 matching is case-insensitive, but resolvers compare the
echoed question bytes — 0x20 mixing must survive the round trip).
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass

from repro.dns.message import Message, Question, Rcode
from repro.dns.name import Name
from repro.dns.records import ResourceRecord, RRset
from repro.dns.rrtypes import RRClass, RRType

HEADER = struct.Struct("!HHHHHH")
"""id, flags, qdcount, ancount, nscount, arcount (RFC 1035 §4.1.1)."""

#: Classic DNS/UDP payload ceiling (no EDNS0 in this codec).
UDP_PAYLOAD_MAX = 512

FLAG_QR = 0x8000
FLAG_AA = 0x0400
FLAG_TC = 0x0200
FLAG_RD = 0x0100
FLAG_RA = 0x0080
_OPCODE_SHIFT = 11
_OPCODE_MASK = 0xF
_RCODE_MASK = 0xF

#: Compression pointers are 14 bits wide; offsets past this cannot be
#: targets.
_POINTER_LIMIT = 0x4000
_POINTER_TAG = 0xC0

_SOA_WIRE_TAIL = struct.Struct("!IIIII")
_RR_FIXED = struct.Struct("!HHIH")
_U16 = struct.Struct("!H")

_NAME_RDATA = frozenset({RRType.NS, RRType.CNAME, RRType.PTR})


class WireFormatError(ValueError):
    """A packet (or a message) that cannot be coded to/from the wire."""


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


class _Writer:
    """Accumulates one message, tracking name offsets for compression."""

    __slots__ = ("buf", "_offsets")

    def __init__(self) -> None:
        self.buf = bytearray()
        # Canonical (lowercased) suffix -> offset of its first encoding.
        self._offsets: dict[tuple[str, ...], int] = {}

    def write_name(self, labels: tuple[str, ...]) -> None:
        """Write a (possibly mixed-case) label sequence, compressing
        against every suffix already present in the message."""
        for index in range(len(labels)):
            suffix = tuple(label.lower() for label in labels[index:])
            pointer = self._offsets.get(suffix)
            if pointer is not None:
                self.buf += _U16.pack(0xC000 | pointer)
                return
            here = len(self.buf)
            if here < _POINTER_LIMIT:
                self._offsets[suffix] = here
            encoded = labels[index].encode("ascii")
            if not 0 < len(encoded) < 64:
                raise WireFormatError(f"label {labels[index]!r} not encodable")
            self.buf.append(len(encoded))
            self.buf += encoded
        self.buf.append(0)

    def write_question(
        self, question: Question, raw_labels: tuple[str, ...] | None = None
    ) -> None:
        self.write_name(raw_labels or question.name.labels)
        self.buf += _U16.pack(int(question.rrtype))
        self.buf += _U16.pack(int(question.rrclass))

    def write_record(self, record: ResourceRecord) -> None:
        self.write_name(record.name.labels)
        ttl = int(record.ttl)
        if not 0 <= ttl < 2**32:
            raise WireFormatError(f"TTL {record.ttl} not encodable")
        self.buf += _RR_FIXED.pack(
            int(record.rrtype), int(record.rrclass), ttl, 0
        )
        rdlength_at = len(self.buf) - 2
        self._write_rdata(record)
        rdlength = len(self.buf) - rdlength_at - 2
        self.buf[rdlength_at:rdlength_at + 2] = _U16.pack(rdlength)

    def _write_rdata(self, record: ResourceRecord) -> None:
        rrtype = record.rrtype
        data = record.data
        if rrtype in _NAME_RDATA:
            if not isinstance(data, Name):  # pragma: no cover - typed upstream
                raise WireFormatError(f"{rrtype.name} rdata must be a Name")
            self.write_name(data.labels)
        elif rrtype is RRType.A:
            self.buf += _encode_ipv4(str(data))
        elif rrtype is RRType.AAAA:
            try:
                self.buf += ipaddress.IPv6Address(str(data)).packed
            except ipaddress.AddressValueError as error:
                raise WireFormatError(f"bad AAAA rdata {data!r}") from error
        elif rrtype is RRType.SOA:
            self._write_soa(str(data))
        elif rrtype is RRType.TXT:
            raw = str(data).encode("utf-8")
            for start in range(0, len(raw) or 1, 255):
                chunk = raw[start:start + 255]
                self.buf.append(len(chunk))
                self.buf += chunk
        else:
            # MX/SRV/DS/RRSIG/DNSKEY carry free-text rdata in the
            # simulator; ship the octets verbatim (self-consistent with
            # the decoder, which is the only consumer).
            self.buf += str(data).encode("utf-8")

    def _write_soa(self, text: str) -> None:
        # The simulator's SOA rdata is "<mname> <rname> <serial>
        # <minimum>" (see ZoneBuilder.set_soa); refresh/retry/expire are
        # not modelled and encode as zero.
        tokens = text.split()
        if len(tokens) != 4:
            raise WireFormatError(f"unencodable SOA rdata {text!r}")
        mname, rname, serial, minimum = tokens
        self.write_name(_labels_from_text(mname))
        self.write_name(_labels_from_text(rname))
        try:
            self.buf += _SOA_WIRE_TAIL.pack(int(serial), 0, 0, 0, int(minimum))
        except (ValueError, struct.error) as error:
            raise WireFormatError(f"unencodable SOA rdata {text!r}") from error


def _labels_from_text(text: str) -> tuple[str, ...]:
    stripped = text[:-1] if text.endswith(".") else text
    if not stripped:
        return ()
    return tuple(stripped.split("."))


def _encode_ipv4(text: str) -> bytes:
    parts = text.split(".")
    if len(parts) != 4:
        raise WireFormatError(f"bad A rdata {text!r}")
    try:
        octets = bytes(int(part) for part in parts)
    except ValueError as error:
        raise WireFormatError(f"bad A rdata {text!r}") from error
    return octets


def encode_query(
    question: Question,
    message_id: int,
    recursion_desired: bool = True,
    raw_labels: tuple[str, ...] | None = None,
) -> bytes:
    """One query packet for ``question`` (header + question section)."""
    writer = _Writer()
    flags = FLAG_RD if recursion_desired else 0
    writer.buf += HEADER.pack(message_id & 0xFFFF, flags, 1, 0, 0, 0)
    writer.write_question(question, raw_labels)
    return bytes(writer.buf)


def encode_response(
    message: Message,
    *,
    message_id: int | None = None,
    raw_labels: tuple[str, ...] | None = None,
    recursion_desired: bool = False,
    recursion_available: bool = True,
    max_size: int | None = None,
) -> bytes:
    """Encode ``message`` as a response packet.

    ``raw_labels`` echoes the client's original qname octets;
    ``recursion_desired`` echoes the client's RD bit.  When the encoded
    packet exceeds ``max_size`` (the UDP path passes 512), the response
    degrades to header + question with TC set — the classic signal to
    retry over TCP.
    """
    writer = _Writer()
    flags = FLAG_QR
    if message.authoritative:
        flags |= FLAG_AA
    if recursion_desired:
        flags |= FLAG_RD
    if recursion_available:
        flags |= FLAG_RA
    flags |= int(message.rcode) & _RCODE_MASK
    sections = (message.answer, message.authority, message.additional)
    counts = tuple(
        sum(len(rrset) for rrset in section) for section in sections
    )
    mid = (message.message_id if message_id is None else message_id) & 0xFFFF
    writer.buf += HEADER.pack(mid, flags, 1, *counts)
    writer.write_question(message.question, raw_labels)
    for section in sections:
        for rrset in section:
            for record in rrset:
                writer.write_record(record)
    if max_size is not None and len(writer.buf) > max_size:
        truncated = _Writer()
        truncated.buf += HEADER.pack(mid, flags | FLAG_TC, 1, 0, 0, 0)
        truncated.write_question(message.question, raw_labels)
        return bytes(truncated.buf)
    return bytes(writer.buf)


def frame_tcp(payload: bytes) -> bytes:
    """Prefix ``payload`` with the RFC 1035 §4.2.2 two-octet length."""
    if len(payload) > 0xFFFF:
        raise WireFormatError(f"message of {len(payload)} octets exceeds TCP framing")
    return _U16.pack(len(payload)) + payload


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class DecodedQuery:
    """One parsed query: the canonical question plus wire details."""

    message_id: int
    question: Question
    raw_labels: tuple[str, ...]
    """The qname labels exactly as received (original octet case)."""
    recursion_desired: bool
    opcode: int


@dataclass(frozen=True, slots=True)
class DecodedMessage:
    """One parsed response: the Message plus response-only wire bits."""

    message: Message
    truncated: bool
    recursion_available: bool


def _read_name(data: bytes, offset: int) -> tuple[tuple[str, ...], int]:
    """Read one (possibly compressed) name.

    Returns ``(labels, next_offset)`` where labels keep their wire
    octet case and ``next_offset`` is the position after the name in
    the *original* (unjumped) byte stream.
    """
    labels: list[str] = []
    end: int | None = None
    jumps = 0
    total = 0
    while True:
        if offset >= len(data):
            raise WireFormatError("name runs past the end of the packet")
        length = data[offset]
        if length & _POINTER_TAG == _POINTER_TAG:
            if offset + 1 >= len(data):
                raise WireFormatError("dangling compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if end is None:
                end = offset + 2
            if pointer >= offset:
                raise WireFormatError("forward compression pointer")
            jumps += 1
            if jumps > 64:
                raise WireFormatError("compression pointer loop")
            offset = pointer
            continue
        if length & _POINTER_TAG:
            raise WireFormatError(f"reserved label type 0x{length:02x}")
        offset += 1
        if length == 0:
            return tuple(labels), end if end is not None else offset
        if offset + length > len(data):
            raise WireFormatError("label runs past the end of the packet")
        total += length + 1
        if total > 255:
            raise WireFormatError("name exceeds 255 octets")
        try:
            labels.append(data[offset:offset + length].decode("ascii"))
        except UnicodeDecodeError as error:
            raise WireFormatError("non-ASCII label") from error
        offset += length


def _canonical_name(labels: tuple[str, ...]) -> Name:
    if not labels:
        return Name.from_text(".")
    return Name.from_text(".".join(labels) + ".")


def _read_u16(data: bytes, offset: int) -> tuple[int, int]:
    if offset + 2 > len(data):
        raise WireFormatError("packet truncated mid-field")
    return _U16.unpack_from(data, offset)[0], offset + 2


def decode_query(data: bytes) -> DecodedQuery:
    """Parse a query packet (header + one question).

    Raises :class:`WireFormatError` for responses, multi-question
    packets, names with bad labels, or truncated octets — the server
    maps those to FORMERR or a drop.
    """
    if len(data) < HEADER.size:
        raise WireFormatError("packet shorter than the DNS header")
    message_id, flags, qdcount, _an, _ns, _ar = HEADER.unpack_from(data)
    if flags & FLAG_QR:
        raise WireFormatError("QR bit set on a query")
    if qdcount != 1:
        raise WireFormatError(f"expected exactly one question, got {qdcount}")
    labels, offset = _read_name(data, HEADER.size)
    rrtype_value, offset = _read_u16(data, offset)
    rrclass_value, offset = _read_u16(data, offset)
    try:
        question = Question(
            _canonical_name(labels),
            RRType(rrtype_value),
            RRClass(rrclass_value),
        )
    except ValueError as error:
        raise WireFormatError(str(error)) from error
    return DecodedQuery(
        message_id=message_id,
        question=question,
        raw_labels=labels,
        recursion_desired=bool(flags & FLAG_RD),
        opcode=(flags >> _OPCODE_SHIFT) & _OPCODE_MASK,
    )


def _decode_rdata(
    data: bytes, start: int, rdlength: int, rrtype: RRType
) -> Name | str:
    end = start + rdlength
    if end > len(data):
        raise WireFormatError("rdata runs past the end of the packet")
    if rrtype in _NAME_RDATA:
        labels, _ = _read_name(data, start)
        return _canonical_name(labels)
    raw = data[start:end]
    if rrtype is RRType.A:
        if rdlength != 4:
            raise WireFormatError(f"A rdata of {rdlength} octets")
        return ".".join(str(octet) for octet in raw)
    if rrtype is RRType.AAAA:
        if rdlength != 16:
            raise WireFormatError(f"AAAA rdata of {rdlength} octets")
        return str(ipaddress.IPv6Address(raw))
    if rrtype is RRType.SOA:
        mname, offset = _read_name(data, start)
        rname, offset = _read_name(data, offset)
        if offset + _SOA_WIRE_TAIL.size > end:
            raise WireFormatError("SOA rdata truncated")
        serial, _refresh, _retry, _expire, minimum = _SOA_WIRE_TAIL.unpack_from(
            data, offset
        )
        return (
            f"{_canonical_name(mname)} {_canonical_name(rname)} "
            f"{serial} {minimum}"
        )
    if rrtype is RRType.TXT:
        chunks: list[bytes] = []
        offset = start
        while offset < end:
            size = raw[offset - start]
            offset += 1
            chunks.append(data[offset:offset + size])
            offset += size
        if offset != end:
            raise WireFormatError("TXT rdata mis-framed")
        return b"".join(chunks).decode("utf-8", errors="strict")
    return raw.decode("utf-8", errors="strict")


def _read_records(
    data: bytes, offset: int, count: int
) -> tuple[tuple[RRset, ...], int]:
    """Read ``count`` records, grouping wire-adjacent records that share
    an (owner, type) into one RRset (order within the set preserved)."""
    rrsets: list[RRset] = []
    pending: list[ResourceRecord] = []
    for _ in range(count):
        labels, offset = _read_name(data, offset)
        if offset + _RR_FIXED.size > len(data):
            raise WireFormatError("record header truncated")
        rrtype_value, rrclass_value, ttl, rdlength = _RR_FIXED.unpack_from(
            data, offset
        )
        offset += _RR_FIXED.size
        try:
            rrtype = RRType(rrtype_value)
            rrclass = RRClass(rrclass_value)
        except ValueError as error:
            raise WireFormatError(str(error)) from error
        rdata = _decode_rdata(data, offset, rdlength, rrtype)
        offset += rdlength
        record = ResourceRecord(
            name=_canonical_name(labels),
            rrtype=rrtype,
            ttl=float(ttl),
            data=rdata,
            rrclass=rrclass,
        )
        if pending and (
            pending[0].name != record.name
            or pending[0].rrtype != record.rrtype
        ):
            rrsets.append(_bundle(pending))
            pending = []
        pending.append(record)
    if pending:
        rrsets.append(_bundle(pending))
    return tuple(rrsets), offset


def _bundle(records: list[ResourceRecord]) -> RRset:
    first = records[0]
    return RRset(
        name=first.name,
        rrtype=first.rrtype,
        ttl=first.ttl,
        records=tuple(records),
    )


def decode_message(data: bytes) -> DecodedMessage:
    """Parse a response packet into a :class:`Message`."""
    if len(data) < HEADER.size:
        raise WireFormatError("packet shorter than the DNS header")
    message_id, flags, qdcount, ancount, nscount, arcount = HEADER.unpack_from(
        data
    )
    if not flags & FLAG_QR:
        raise WireFormatError("QR bit clear on a response")
    if qdcount != 1:
        raise WireFormatError(f"expected exactly one question, got {qdcount}")
    labels, offset = _read_name(data, HEADER.size)
    rrtype_value, offset = _read_u16(data, offset)
    rrclass_value, offset = _read_u16(data, offset)
    try:
        question = Question(
            _canonical_name(labels),
            RRType(rrtype_value),
            RRClass(rrclass_value),
        )
        rcode = Rcode(flags & _RCODE_MASK)
    except ValueError as error:
        raise WireFormatError(str(error)) from error
    answer, offset = _read_records(data, offset, ancount)
    authority, offset = _read_records(data, offset, nscount)
    additional, offset = _read_records(data, offset, arcount)
    message = Message(
        question=question,
        rcode=rcode,
        authoritative=bool(flags & FLAG_AA),
        answer=answer,
        authority=authority,
        additional=additional,
        message_id=message_id,
    )
    return DecodedMessage(
        message=message,
        truncated=bool(flags & FLAG_TC),
        recursion_available=bool(flags & FLAG_RA),
    )
