"""UdpUpstream: the :class:`~repro.core.transport.Upstream` protocol
over a real UDP socket.

This is the transport half of running the resolver "for real": where a
replay's :class:`~repro.simulation.network.Network` looks up the
simulated :class:`~repro.hierarchy.tree.ZoneTree`, this sends the
question as an RFC 1035 packet to the named address and decodes the
answer.  The caching server cannot tell the difference — both expose
``query`` and ``query_timeout`` and return
:class:`~repro.simulation.network.QueryResult` values.

Blocking by design: the serve front end runs the whole resolution core
on one dedicated thread, so a synchronous send/receive keeps the core's
single-threaded discipline (and its latency shows up where the metrics
expect it).
"""

from __future__ import annotations

import itertools
import socket
import time

from repro.dns.message import Question
from repro.serve.wire import WireFormatError, decode_message, encode_query
from repro.simulation.network import QueryResult

#: Queries to servers that answer garbage count as lame, same as the
#: simulated network's LameDelegationError arm.
_DEFAULT_PORT = 53


class UdpUpstream:
    """Send questions to authoritative addresses over real UDP."""

    def __init__(self, timeout: float = 2.0, payload_max: int = 4096) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self._timeout = timeout
        self._payload_max = payload_max
        self._ids = itertools.count(1)
        self.queries_sent = 0
        self.queries_lost = 0

    @property
    def query_timeout(self) -> float:
        return self._timeout

    def query(self, address: str, question: Question, now: float) -> QueryResult:
        """One blocking query attempt to ``address`` (``ip`` or ``ip:port``).

        Mirrors the simulated network's contract: timeouts, unreachable
        hosts and undecodable answers come back as unanswered
        :class:`QueryResult` values, never exceptions.
        """
        host, _, port_text = address.partition(":")
        port = int(port_text) if port_text else _DEFAULT_PORT
        message_id = next(self._ids) & 0xFFFF
        packet = encode_query(question, message_id)
        self.queries_sent += 1
        started = time.monotonic()
        try:
            with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
                sock.settimeout(self._timeout)
                sock.sendto(packet, (host, port))
                while True:
                    data, _ = sock.recvfrom(self._payload_max)
                    decoded = decode_message(data)
                    if decoded.message.message_id == message_id:
                        break
        except (TimeoutError, socket.timeout):
            self.queries_lost += 1
            return QueryResult(None, self._timeout, timed_out=True)
        except (OSError, WireFormatError):
            # Unreachable, refused, or garbage: like a lame server — a
            # fast negative, not worth a retransmit.
            self.queries_lost += 1
            return QueryResult(None, time.monotonic() - started)
        return QueryResult(decoded.message, time.monotonic() - started)
