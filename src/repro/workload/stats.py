"""Trace statistics — the columns of the paper's Table 1.

For each trace the paper reports: organisation/location/duration (fixed
metadata here), number of clients (stub resolvers), requests in (SR→CS),
requests out (CS→AN, measured by replaying), distinct names and distinct
zones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.name import Name
from repro.hierarchy.tree import ZoneTree
from repro.workload.trace import Trace

DAY = 86400.0


@dataclass(frozen=True)
class TraceStatistics:
    """One row of Table 1."""

    name: str
    duration_days: float
    clients: int
    requests_in: int
    requests_out: int | None
    distinct_names: int
    distinct_zones: int

    def as_row(self) -> tuple:
        out = "-" if self.requests_out is None else self.requests_out
        return (
            self.name,
            f"{self.duration_days:g} days",
            self.clients,
            self.requests_in,
            out,
            self.distinct_names,
            self.distinct_zones,
        )


def compute_statistics(
    trace: Trace,
    tree: ZoneTree | None = None,
    requests_out: int | None = None,
) -> TraceStatistics:
    """Compute Table-1 statistics for ``trace``.

    ``tree`` maps names to their enclosing zones for the distinct-zone
    count; without it, zones are approximated by stripping one label
    (host → zone), which is exact for the synthetic workload's
    host-in-zone names.

    ``requests_out`` comes from a replay (the trace alone cannot know
    how many queries the CS emitted).
    """
    names: set[Name] = set()
    zones: set[Name] = set()
    clients: set[int] = set()
    zone_of: dict[Name, Name] = {}
    for query in trace:
        names.add(query.qname)
        clients.add(query.client_id)
        zone = zone_of.get(query.qname)
        if zone is None:
            if tree is not None:
                zone = tree.enclosing_zone(query.qname).name
            else:
                zone = query.qname.parent() if not query.qname.is_root else query.qname
            zone_of[query.qname] = zone
        zones.add(zone)
    return TraceStatistics(
        name=trace.name,
        duration_days=trace.duration / DAY,
        clients=len(clients),
        requests_in=len(trace),
        requests_out=requests_out,
        distinct_names=len(names),
        distinct_zones=len(zones),
    )
