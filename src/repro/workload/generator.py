"""Synthetic stub-resolver workload generation.

The generator reproduces the statistical structure the paper's evaluation
depends on (rather than the authors' private packet traces):

* **Zipf zone popularity** — a few zones draw most queries; the long tail
  is visited rarely (this is what makes LFU-style renewal matter).
* **Per-client interest locality** — each stub resolver mixes the globally
  popular zones with a private working set (the paper's "overlap of
  interest between different SRs").
* **Diurnal load** — sinusoidal day/night modulation of the Poisson
  arrival rate.
* **Host-level popularity** — within a zone, www-like hosts dominate.
* **Query-type mix** — mostly A, a sliver of AAAA/MX (which often yield
  NODATA, as in real traces).

numpy does the heavy sampling so month-long traces stay cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dns.name import Name
from repro.dns.rrtypes import RRType
from repro.simulation.faults import unit_hash
from repro.workload.trace import Trace, TraceQuery

DAY = 86400.0
HOUR = 3600.0


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape parameters for one synthetic trace."""

    duration_days: float = 7.0
    queries_per_day: float = 40_000.0
    num_clients: int = 300
    zone_zipf_alpha: float = 1.15
    shared_interest_fraction: float = 0.7
    private_zones_per_client: int = 15
    name_zipf_alpha: float = 1.1
    diurnal_amplitude: float = 0.5
    qtype_mix: tuple[tuple[RRType, float], ...] = (
        (RRType.A, 0.94),
        (RRType.AAAA, 0.04),
        (RRType.MX, 0.02),
    )

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.num_clients < 1:
            raise ValueError("need at least one client")
        if not 0.0 <= self.shared_interest_fraction <= 1.0:
            raise ValueError("shared_interest_fraction must be a fraction")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        total = sum(weight for _, weight in self.qtype_mix)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"qtype_mix weights sum to {total}, expected 1")


class TraceGenerator:
    """Generates traces against a zone catalog.

    One generator instance can emit several traces; each call uses an
    independent seed so TRC1..TRC6 differ while staying reproducible.
    """

    def __init__(self, catalog: dict[Name, list[Name]], config: WorkloadConfig,
                 seed: int = 0) -> None:
        if not catalog:
            raise ValueError("catalog is empty — build the hierarchy first")
        self.config = config
        self._seed = seed
        # Deterministic zone ordering, then a seeded popularity shuffle so
        # popularity is independent of construction order.
        zones = sorted(catalog.keys())
        shuffle_rng = np.random.default_rng(seed)
        order = shuffle_rng.permutation(len(zones))
        self._zones: list[Name] = [zones[i] for i in order]
        self._hosts: list[list[Name]] = [catalog[zone] for zone in self._zones]

        ranks = np.arange(1, len(self._zones) + 1, dtype=np.float64)
        weights = ranks ** (-config.zone_zipf_alpha)
        self._zone_cdf = np.cumsum(weights / weights.sum())

        # Per-zone-size host CDFs (sizes are small; cache by size).
        self._host_cdfs: dict[int, np.ndarray] = {}
        for hosts in self._hosts:
            size = len(hosts)
            if size not in self._host_cdfs:
                host_ranks = np.arange(1, size + 1, dtype=np.float64)
                host_weights = host_ranks ** (-config.name_zipf_alpha)
                self._host_cdfs[size] = np.cumsum(host_weights / host_weights.sum())

    # -- public ---------------------------------------------------------------

    def generate(self, name: str, stream: int = 0) -> Trace:
        """Produce one trace; ``stream`` decorrelates TRC1..TRCn."""
        config = self.config
        rng = np.random.default_rng((self._seed, stream, 0xD25))
        times = self._arrival_times(rng)
        count = len(times)

        clients = rng.integers(0, config.num_clients, size=count)
        private_sets = rng.integers(
            0,
            len(self._zones),
            size=(config.num_clients, config.private_zones_per_client),
        )

        shared_mask = rng.random(count) < config.shared_interest_fraction
        zone_indices = np.empty(count, dtype=np.int64)
        shared_count = int(shared_mask.sum())
        zone_indices[shared_mask] = np.searchsorted(
            self._zone_cdf, rng.random(shared_count)
        )
        private_mask = ~shared_mask
        private_count = count - shared_count
        slot = rng.integers(0, config.private_zones_per_client, size=private_count)
        zone_indices[private_mask] = private_sets[clients[private_mask], slot]

        host_draws = rng.random(count)
        qtypes, qtype_weights = zip(*config.qtype_mix)
        type_indices = rng.choice(
            len(qtypes), size=count, p=np.asarray(qtype_weights)
        )

        queries: list[TraceQuery] = []
        hosts = self._hosts
        host_cdfs = self._host_cdfs
        for position in range(count):
            zone_index = int(zone_indices[position])
            zone_hosts = hosts[zone_index]
            cdf = host_cdfs[len(zone_hosts)]
            host_index = int(np.searchsorted(cdf, host_draws[position]))
            queries.append(
                TraceQuery(
                    time=float(times[position]),
                    client_id=int(clients[position]),
                    qname=zone_hosts[host_index],
                    rrtype=qtypes[int(type_indices[position])],
                )
            )
        return Trace(
            name=name, duration=config.duration_days * DAY, queries=queries
        )

    # -- internals ---------------------------------------------------------------

    def _arrival_times(self, rng: np.random.Generator) -> np.ndarray:
        """Diurnal non-homogeneous Poisson arrivals over the full duration.

        Piecewise-constant hourly rates: ``rate(h) = base * (1 + A*sin)``,
        peaking mid-day, dipping overnight.
        """
        config = self.config
        hours = int(math.ceil(config.duration_days * 24))
        base_per_hour = config.queries_per_day / 24.0
        hour_indices = np.arange(hours)
        modulation = 1.0 + config.diurnal_amplitude * np.sin(
            2.0 * np.pi * ((hour_indices % 24) / 24.0) - np.pi / 2.0
        )
        lambdas = base_per_hour * modulation
        counts = rng.poisson(lambdas)
        pieces: list[np.ndarray] = []
        end = config.duration_days * DAY
        for hour, count in enumerate(counts):
            if count == 0:
                continue
            start = hour * HOUR
            stop = min(start + HOUR, end)
            if stop <= start:
                continue
            pieces.append(rng.uniform(start, stop, size=count))
        if not pieces:
            return np.empty(0, dtype=np.float64)
        times = np.concatenate(pieces)
        times = times[times < end]
        times.sort()
        return times


def flash_crowd_schedule(
    catalog: dict[Name, list[Name]],
    start: float,
    duration: float,
    queries_per_minute: float,
    hot_zones: int,
    zipf_alpha: float,
    seed: int = 0,
) -> tuple[tuple[float, Name], ...]:
    """Deterministic flash-crowd arrivals: ``(time, qname)`` pairs.

    A flash crowd is a *legitimate* surge — a few suddenly-hot names
    (breaking news, a viral link) drawing Zipf-skewed traffic on top of
    the base trace.  Unlike the generator above this is a pure function
    of its arguments: arrivals are evenly spaced and the per-arrival
    name pick is a BLAKE2b draw (:func:`repro.simulation.faults
    .unit_hash`), so the adversary harness can rebuild the identical
    schedule in every worker without numpy RNG state.

    The hot set is the first host of each of the first ``hot_zones``
    zones (sorted by apex), so it is stable across runs of the same
    catalog.
    """
    if duration <= 0.0 or queries_per_minute <= 0.0:
        raise ValueError("duration and queries_per_minute must be positive")
    if hot_zones < 1 or zipf_alpha <= 0.0:
        raise ValueError("hot_zones and zipf_alpha must be positive")
    zones = sorted(name for name, hosts in catalog.items() if hosts)
    targets = [catalog[zone][0] for zone in zones[:hot_zones]]
    if not targets:
        raise ValueError("catalog has no queryable hosts")
    weights = [1.0 / (rank + 1) ** zipf_alpha for rank in range(len(targets))]
    total = sum(weights)
    cdf: list[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cdf.append(acc)
    interval = 60.0 / queries_per_minute
    count = int(duration / interval)
    arrivals: list[tuple[float, Name]] = []
    for index in range(count):
        draw = unit_hash(seed, "flash", "", index)
        pick = 0
        while pick < len(cdf) - 1 and draw > cdf[pick]:
            pick += 1
        arrivals.append((start + index * interval, targets[pick]))
    return tuple(arrivals)
