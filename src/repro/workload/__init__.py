"""Query workloads: trace format, synthetic generation, statistics.

The paper replays stub-resolver traces from five US universities (plus a
one-month trace).  Those traces are not public, so
:mod:`repro.workload.generator` synthesises workloads with the same
controlling statistics — client counts, request volumes, distinct
names/zones, Zipf zone popularity, diurnal load and per-client interest
locality — while :mod:`repro.workload.trace` defines a text format so
real traces can be dropped in instead.
"""

from repro.workload.generator import TraceGenerator, WorkloadConfig
from repro.workload.stats import TraceStatistics, compute_statistics
from repro.workload.trace import Trace, TraceQuery, read_trace, write_trace

__all__ = [
    "Trace",
    "TraceGenerator",
    "TraceQuery",
    "TraceStatistics",
    "WorkloadConfig",
    "compute_statistics",
    "read_trace",
    "write_trace",
]
