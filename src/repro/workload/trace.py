"""Trace representation and on-disk format.

A trace is a time-ordered sequence of stub-resolver queries.  The text
format (one query per line) exists so real packet-capture-derived traces
can replace the synthetic ones::

    # time_seconds client_id qname qtype
    0.0413 17 www.z42.com. A
    0.9021 3 mail.dns-provider0.com. A
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.dns.name import Name
from repro.dns.rrtypes import RRType


@dataclass(frozen=True, slots=True)
class TraceQuery:
    """One stub-resolver query."""

    time: float
    client_id: int
    qname: Name
    rrtype: RRType = RRType.A


@dataclass
class Trace:
    """A named, time-ordered query sequence."""

    name: str
    duration: float
    queries: list[TraceQuery] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"trace duration must be positive, got {self.duration}")

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[TraceQuery]:
        return iter(self.queries)

    def client_count(self) -> int:
        """Distinct stub resolvers appearing in the trace."""
        return len({query.client_id for query in self.queries})

    def distinct_names(self) -> int:
        """Distinct (qname) values (Table 1's "names")."""
        return len({query.qname for query in self.queries})

    def time_span(self) -> tuple[float, float]:
        """(first, last) query timestamps; (0, 0) for an empty trace."""
        if not self.queries:
            return (0.0, 0.0)
        return (self.queries[0].time, self.queries[-1].time)

    def validate_ordering(self) -> None:
        """Raise ValueError if queries are not time-sorted in [0, duration]."""
        previous = 0.0
        for query in self.queries:
            if query.time < previous:
                raise ValueError(
                    f"trace {self.name} not time-ordered at t={query.time}"
                )
            previous = query.time
        if self.queries and self.queries[-1].time > self.duration:
            raise ValueError(
                f"trace {self.name} has queries beyond its duration"
            )

    def slice_window(self, start: float, end: float) -> list[TraceQuery]:
        """Queries with start <= time < end."""
        return [query for query in self.queries if start <= query.time < end]


def write_trace(trace: Trace, path: Path | str) -> None:
    """Serialise a trace to the text format."""
    with open(path, "w", encoding="ascii") as handle:
        _write_stream(trace, handle)


def trace_to_text(trace: Trace) -> str:
    """The trace's text-format serialisation as a string."""
    buffer = io.StringIO()
    _write_stream(trace, buffer)
    return buffer.getvalue()


def _write_stream(trace: Trace, handle: IO[str]) -> None:
    handle.write(f"# trace {trace.name} duration {trace.duration}\n")
    handle.write("# time_seconds client_id qname qtype\n")
    for query in trace.queries:
        handle.write(
            f"{query.time:.4f} {query.client_id} {query.qname} "
            f"{query.rrtype.name}\n"
        )


def read_trace(path: Path | str, name: str | None = None) -> Trace:
    """Parse a text-format trace file.

    The header comment supplies the trace name and duration; both can be
    absent, in which case the filename and last timestamp are used.

    Raises:
        ValueError: for malformed lines.
    """
    with open(path, "r", encoding="ascii") as handle:
        lines = handle.readlines()
    return trace_from_lines(lines, default_name=name or Path(path).stem)


def trace_from_lines(lines: Iterable[str], default_name: str = "trace") -> Trace:
    """Parse text-format lines into a :class:`Trace`."""
    trace_name = default_name
    duration: float | None = None
    queries: list[TraceQuery] = []
    for line_number, raw_line in enumerate(lines, start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            tokens = line[1:].split()
            if len(tokens) >= 4 and tokens[0] == "trace" and tokens[2] == "duration":
                trace_name = tokens[1]
                duration = float(tokens[3])
            continue
        parts = line.split()
        if len(parts) not in (3, 4):
            raise ValueError(f"line {line_number}: expected 3-4 fields, got {line!r}")
        time = float(parts[0])
        client_id = int(parts[1])
        qname = Name.from_text(parts[2])
        rrtype = RRType[parts[3]] if len(parts) == 4 else RRType.A
        queries.append(TraceQuery(time, client_id, qname, rrtype))
    if duration is None:
        duration = queries[-1].time if queries else 1.0
    trace = Trace(name=trace_name, duration=max(duration, 1e-9), queries=queries)
    trace.validate_ordering()
    return trace
