"""The typed event bus behind the observability subsystem.

Simulation components emit :class:`Event` values describing what just
happened (a cache hit, a CS→AN query attempt, a renewal credit spend)
through an :class:`EventBus`.  Subscribers — the flight recorder and the
metric sinks — receive every event synchronously, in emission order.

Two properties carry the whole design:

* **Zero cost when disabled.**  No bus is constructed unless a replay
  asks for observation; instrumentation sites hold ``EventBus | None``
  and the hottest path (``DnsCache.get``) swaps in an instrumented
  method only when a bus attaches, so the disabled simulator executes
  the exact same bytecode it did before this subsystem existed.
* **Determinism.**  Event times come from the virtual clock only and
  the sequence number is a per-bus counter, so the same spec + seed
  yields a byte-identical event stream (the ``repro check`` invariants
  of DESIGN.md §9 extend to the event log).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Callable, Iterable


class EventKind(enum.Enum):
    """The closed taxonomy of simulation events (DESIGN.md §10)."""

    # Stub-resolver surface.
    STUB_QUERY = "stub.query"
    """A stub query arrived at the caching server."""

    STUB_OUTCOME = "stub.outcome"
    """The stub query completed (fields: ``outcome``, ``failed``)."""

    # CS → AN traffic.
    QUERY_ISSUED = "query.issued"
    """One query attempt left for an authoritative server."""

    QUERY_ANSWERED = "query.answered"
    """The attempt was answered (field ``latency``)."""

    QUERY_FAILED = "query.failed"
    """The attempt timed out / was blocked / hit a lame server."""

    QUERY_RETRY = "query.retry"
    """A retransmit to the same server (field ``attempt``, 1-based),
    driven by the resolver's :class:`~repro.core.config.RetryPolicy`."""

    SERVER_HOLDDOWN = "server.holddown"
    """A server crossed its consecutive-failure threshold and was
    sidelined until ``until`` (BIND-style dead-server hold-down)."""

    FAULT_DROP = "fault.drop"
    """The fault-injection layer swallowed a query (field ``reason``:
    ``attack`` / ``loss`` / ``flap``)."""

    FETCH_RETRY = "fetch.retry"
    """A zone's whole server set failed; the resolver climbs to the
    parent to reset the IRR (paper §4's recovery path)."""

    # Cache surface.
    CACHE_HIT = "cache.hit"
    CACHE_MISS = "cache.miss"
    CACHE_EXPIRED = "cache.expired"
    """A lookup found only a lapsed entry (the expiry observed)."""

    CACHE_EVICTED = "cache.evicted"
    """Capacity eviction (bounded caches only)."""

    # Renewal machinery.
    RENEWAL_SPEND = "renewal.spend"
    """One renewal credit was spent on a refetch attempt."""

    RENEWAL_RENEWED = "renewal.renewed"
    """The refetch succeeded; the zone's TTL countdown restarted."""

    RENEWAL_LAPSE = "renewal.lapse"
    """The zone's IRRs lapsed (no credit, or the refetch failed)."""

    # Attack schedule markers.
    ATTACK_START = "attack.start"
    ATTACK_END = "attack.end"

    # Adversary 2.0 (DESIGN.md §16).  Emitted only when the adversary or
    # a defense is armed, so pre-existing event logs keep their bytes.
    ATTACK_NXNS = "attack.nxns"
    """One NXNS attack query hit the resolver (fields: ``qname``,
    ``cs_queries`` — the upstream fan-out it triggered)."""

    CACHE_POISONED = "cache.poisoned"
    """A forged RRset won its race and was accepted by the cache."""

    DEFENSE_BUDGET_EXHAUSTED = "defense.budget_exhausted"
    """A work limit refused an upstream sub-resolution (field
    ``mechanism``: ``fetch-budget`` / ``nxns-cap``)."""

    # Renewal 2.0 (DESIGN.md §17).  Emitted only when the ``swr`` /
    # ``decoupled`` schemes are armed, so pre-existing event logs keep
    # their bytes.
    CACHE_SWR_REFRESH = "cache.swr_refresh"
    """A stale hit inside the SWR grace window scheduled one
    deduplicated background refetch (fields: ``qname``, ``rrtype``)."""

    CACHE_INVALIDATED = "cache.invalidated"
    """A churn invalidation evicted a zone's stranded NS/glue and
    queued a background re-learn (field ``zone``)."""

    # Engine timers.
    TIMER_FIRED = "engine.timer"
    """A scheduled virtual-time event fired."""


@dataclass(frozen=True, slots=True)
class Event:
    """One structured simulation event.

    ``data`` is a key-sorted tuple of pairs (not a dict) so events are
    hashable, picklable and serialise identically everywhere.
    """

    seq: int
    time: float
    kind: EventKind
    data: "tuple[tuple[str, str | int | float | bool | None], ...]" = ()

    def get(self, key: str) -> "str | int | float | bool | None":
        """The value for ``key``, or None when absent."""
        for name, value in self.data:
            if name == key:
                return value
        return None

    def to_json(self) -> str:
        """The canonical one-line JSON form (byte-stable across runs)."""
        payload: dict[str, object] = {
            "kind": self.kind.value,
            "seq": self.seq,
            "t": self.time,
        }
        for name, value in self.data:
            payload[name] = value
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


EventHandler = Callable[[Event], None]


class EventBus:
    """Synchronous fan-out of :class:`Event` values to subscribers.

    Every ``emit`` increments the bus-wide sequence number whether or
    not anyone listens for that kind, so the numbering a sink observes
    does not depend on which *other* sinks are attached.
    """

    __slots__ = ("_seq", "_all", "_by_kind")

    def __init__(self) -> None:
        self._seq = 0
        self._all: list[EventHandler] = []
        self._by_kind: dict[EventKind, list[EventHandler]] = {}

    def subscribe(
        self,
        handler: EventHandler,
        kinds: "Iterable[EventKind] | None" = None,
    ) -> None:
        """Deliver events to ``handler`` (all kinds, or only ``kinds``)."""
        if kinds is None:
            self._all.append(handler)
            return
        for kind in kinds:
            self._by_kind.setdefault(kind, []).append(handler)

    def emit(
        self,
        kind: EventKind,
        time: float,
        **data: "str | int | float | bool | None",
    ) -> "Event | None":
        """Publish one event; returns it, or None when nobody listened."""
        seq = self._seq
        self._seq = seq + 1
        targeted = self._by_kind.get(kind)
        if not self._all and not targeted:
            return None
        event = Event(
            seq=seq,
            time=time,
            kind=kind,
            data=tuple(sorted(data.items())),
        )
        for handler in self._all:
            handler(event)
        if targeted:
            for handler in targeted:
                handler(event)
        return event

    @property
    def emitted(self) -> int:
        """Events published so far (including unobserved ones)."""
        return self._seq
