"""The flight recorder: a bounded ring buffer of recent events.

Cheap enough to leave attached during long replays: the buffer holds
the last ``capacity`` events (older ones are evicted FIFO) while the
per-kind counters keep whole-run totals, so a post-mortem sees both the
tail of the story and its shape.
"""

from __future__ import annotations

from collections import Counter, deque

from repro.obs.events import Event, EventBus, EventKind


class FlightRecorder:
    """Ring buffer plus whole-run per-kind counters."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buffer: deque[Event] = deque(maxlen=capacity)
        self._counts: Counter[EventKind] = Counter()
        self.seen = 0

    def attach(self, bus: EventBus) -> "FlightRecorder":
        """Subscribe to every event on ``bus``; returns self."""
        bus.subscribe(self.on_event)
        return self

    def on_event(self, event: Event) -> None:
        self._buffer.append(event)
        self._counts[event.kind] += 1
        self.seen += 1

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (seen but no longer retained)."""
        return self.seen - len(self._buffer)

    def events(self) -> tuple[Event, ...]:
        """The retained events, oldest first."""
        return tuple(self._buffer)

    def last(self, count: int) -> tuple[Event, ...]:
        """The most recent ``count`` retained events, oldest first."""
        if count <= 0:
            return ()
        buffer = self._buffer
        if count >= len(buffer):
            return tuple(buffer)
        return tuple(list(buffer)[-count:])

    def count_of(self, kind: EventKind) -> int:
        """Whole-run total for one kind (includes evicted events)."""
        return self._counts[kind]

    def counts_by_kind(self) -> dict[str, int]:
        """Whole-run totals keyed by kind value, sorted by kind name."""
        return {
            kind.value: self._counts[kind]
            for kind in sorted(self._counts, key=lambda k: k.value)
        }
