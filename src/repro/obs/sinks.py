"""Pluggable metric sinks: where the event stream condenses into numbers.

Three sinks cover the use cases the experiments need:

* :class:`TimeSeriesSink` — per-kind counts in fixed-width virtual-time
  bins; the time-resolved generalisation of
  :class:`~repro.simulation.metrics.ReplayMetrics`' whole-run counters
  (what happened *during* the attack window, not just in total).
* :class:`JsonlSink` — streams every event as one canonical JSON line;
  byte-identical across runs of the same spec + seed.
* :class:`PrometheusSink` — whole-run counters rendered in the
  Prometheus text exposition format, for scraping-shaped tooling.

All sinks implement the tiny :class:`MetricSink` protocol (``on_event``
plus ``close``), so a replay wires any subset to one bus.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import IO, Protocol, runtime_checkable

from repro.obs.events import Event, EventBus, EventKind


@runtime_checkable
class MetricSink(Protocol):
    """What the observation context requires of a sink."""

    def on_event(self, event: Event) -> None: ...

    def close(self) -> None: ...


class TimeSeriesSink:
    """Per-kind event counts in fixed-width virtual-time bins."""

    def __init__(self, bin_width: float) -> None:
        if bin_width <= 0.0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        self.bin_width = bin_width
        self._bins: dict[EventKind, dict[int, int]] = {}

    def attach(self, bus: EventBus) -> "TimeSeriesSink":
        bus.subscribe(self.on_event)
        return self

    def on_event(self, event: Event) -> None:
        index = int(event.time // self.bin_width)
        per_kind = self._bins.get(event.kind)
        if per_kind is None:
            per_kind = {}
            self._bins[event.kind] = per_kind
        per_kind[index] = per_kind.get(index, 0) + 1

    def close(self) -> None:
        return None

    def series(self, kind: EventKind) -> list[tuple[float, int]]:
        """``(bin_start, count)`` pairs for ``kind``, in time order."""
        per_kind = self._bins.get(kind, {})
        return [
            (index * self.bin_width, per_kind[index])
            for index in sorted(per_kind)
        ]

    def total(self, kind: EventKind) -> int:
        """Whole-run count for ``kind``."""
        return sum(self._bins.get(kind, {}).values())

    def kinds(self) -> tuple[EventKind, ...]:
        """Kinds with at least one counted event, sorted by value."""
        return tuple(sorted(self._bins, key=lambda kind: kind.value))

    def as_dict(self) -> dict[str, list[tuple[float, int]]]:
        """Every series keyed by kind value (JSON-friendly)."""
        return {kind.value: self.series(kind) for kind in self.kinds()}


class JsonlSink:
    """Streams events as JSON lines to a file (or any text stream).

    The serialisation is canonical (sorted keys, fixed separators, floats
    via ``repr``), so the same spec + seed produces a byte-identical file
    at any worker count — the property the determinism gate asserts.
    """

    def __init__(
        self,
        path: "str | Path | None" = None,
        stream: "IO[str] | None" = None,
    ) -> None:
        if (path is None) == (stream is None):
            raise ValueError("pass exactly one of path or stream")
        self._path = Path(path) if path is not None else None
        self._stream = stream
        self._owns_stream = stream is None
        self.lines_written = 0

    def attach(self, bus: EventBus) -> "JsonlSink":
        bus.subscribe(self.on_event)
        return self

    def on_event(self, event: Event) -> None:
        stream = self._stream
        if stream is None:
            if self._path is None:
                raise ValueError("sink already closed")
            stream = self._path.open("w", encoding="utf-8", newline="\n")
            self._stream = stream
        stream.write(event.to_json())
        stream.write("\n")
        self.lines_written += 1

    def close(self) -> None:
        """Flush and (for path-backed sinks) close the file.

        A path-backed sink that saw no events still writes an empty
        file, so "ran with --events" always leaves an artifact.
        """
        if self._stream is None and self._path is not None:
            self._path.write_text("", encoding="utf-8")
            return
        if self._stream is not None:
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()
                self._stream = None


class PrometheusSink:
    """Whole-run counters in the Prometheus text exposition format."""

    #: What scrapers expect a text-format body to be served as; the
    #: ``repro serve`` metrics endpoint sends :meth:`render` under it.
    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._counts: Counter[EventKind] = Counter()
        self._last_time = 0.0

    def attach(self, bus: EventBus) -> "PrometheusSink":
        bus.subscribe(self.on_event)
        return self

    def on_event(self, event: Event) -> None:
        self._counts[event.kind] += 1
        if event.time > self._last_time:
            self._last_time = event.time

    def close(self) -> None:
        return None

    def render(self) -> str:
        """The full text dump (deterministically ordered)."""
        lines = [
            "# HELP repro_events_total Simulation events by kind.",
            "# TYPE repro_events_total counter",
        ]
        total = 0
        for kind in sorted(self._counts, key=lambda k: k.value):
            count = self._counts[kind]
            total += count
            lines.append(
                f'repro_events_total{{kind="{kind.value}"}} {count}'
            )
        lines.extend(
            [
                "# HELP repro_events_seen_total All simulation events.",
                "# TYPE repro_events_seen_total counter",
                f"repro_events_seen_total {total}",
                "# HELP repro_last_event_seconds Virtual time of the last event.",
                "# TYPE repro_last_event_seconds gauge",
                f"repro_last_event_seconds {self._last_time!r}",
            ]
        )
        return "\n".join(lines) + "\n"

    def write(self, path: "str | Path") -> None:
        Path(path).write_text(self.render(), encoding="utf-8")
