"""Observability subsystem: event bus, flight recorder, sinks, timers.

Zero-cost when disabled (no bus ⇒ the simulator runs its original
bytecode), deterministic when enabled (virtual-clock times + per-bus
sequence numbers ⇒ byte-identical JSONL for the same spec + seed).
See DESIGN.md §10.
"""

from repro.obs.events import Event, EventBus, EventHandler, EventKind
from repro.obs.recorder import FlightRecorder
from repro.obs.sinks import JsonlSink, MetricSink, PrometheusSink, TimeSeriesSink
from repro.obs.spec import (
    DEFAULT_BIN_WIDTH,
    DEFAULT_RING_SIZE,
    ObservationContext,
    ObservationSpec,
)
from repro.obs.timing import PhaseStats, StageTimings, maybe_stage

__all__ = [
    "DEFAULT_BIN_WIDTH",
    "DEFAULT_RING_SIZE",
    "Event",
    "EventBus",
    "EventHandler",
    "EventKind",
    "FlightRecorder",
    "JsonlSink",
    "MetricSink",
    "ObservationContext",
    "ObservationSpec",
    "PhaseStats",
    "PrometheusSink",
    "StageTimings",
    "TimeSeriesSink",
    "maybe_stage",
]
