"""Phase timers: per-stage wall/CPU accounting for experiment runs.

This is the one corner of the tree that intentionally reads the host
clock — the point *is* to measure real elapsed time, so the REP001
wall-clock rule is suppressed line-by-line.  Timings never feed back
into simulation state; they are reporting-only and therefore cannot
perturb determinism.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class PhaseStats:
    """Accumulated cost of one named stage."""

    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    count: int = 0

    def add(self, wall: float, cpu: float) -> None:
        self.wall_seconds += wall
        self.cpu_seconds += cpu
        self.count += 1


@dataclass
class StageTimings:
    """Named wall/CPU timers shared across an experiment run.

    One instance threads through ``run_replay`` / ``run_replays``; each
    ``with timings.stage("replay"):`` block accumulates into the stage's
    :class:`PhaseStats`, so repeated stages (one per spec in a fleet)
    sum naturally.
    """

    _stats: dict[str, PhaseStats] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        wall0 = time.perf_counter()  # repro: ignore[REP001]
        cpu0 = time.process_time()  # repro: ignore[REP001]
        try:
            yield
        finally:
            wall1 = time.perf_counter()  # repro: ignore[REP001]
            cpu1 = time.process_time()  # repro: ignore[REP001]
            self.add(name, wall1 - wall0, cpu1 - cpu0)

    def add(self, name: str, wall: float, cpu: float) -> None:
        stats = self._stats.get(name)
        if stats is None:
            stats = PhaseStats()
            self._stats[name] = stats
        stats.add(wall, cpu)

    def stats(self, name: str) -> PhaseStats:
        """The accumulated stats for ``name`` (zeros when never timed)."""
        return self._stats.get(name, PhaseStats())

    def stage_names(self) -> tuple[str, ...]:
        """Stages seen so far, in first-use order."""
        return tuple(self._stats)

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-friendly dump, suitable for ``BENCH_*.json`` payloads."""
        return {
            name: {
                "wall_seconds": stats.wall_seconds,
                "cpu_seconds": stats.cpu_seconds,
                "count": float(stats.count),
            }
            for name, stats in self._stats.items()
        }

    def render(self) -> str:
        """A small human-readable table (used by ``--timings``)."""
        lines = [f"{'stage':<12} {'wall (s)':>10} {'cpu (s)':>10} {'count':>6}"]
        for name in self._stats:
            stats = self._stats[name]
            lines.append(
                f"{name:<12} {stats.wall_seconds:>10.3f}"
                f" {stats.cpu_seconds:>10.3f} {stats.count:>6d}"
            )
        return "\n".join(lines)


@contextmanager
def maybe_stage(timings: "StageTimings | None", name: str) -> Iterator[None]:
    """``timings.stage(name)`` when timings exist, else a no-op block."""
    if timings is None:
        yield
    else:
        with timings.stage(name):
            yield
