"""Declarative observation setup: what to record and where to put it.

:class:`ObservationSpec` is a frozen, picklable description — it rides
inside :class:`repro.experiments.parallel.ReplaySpec`, so a worker
process can build its own bus, recorder and sinks locally and write its
own output files.  :class:`ObservationContext` is the live counterpart
a single replay wires into the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.events import EventBus
from repro.obs.recorder import FlightRecorder
from repro.obs.sinks import JsonlSink, PrometheusSink, TimeSeriesSink

DEFAULT_RING_SIZE = 512
DEFAULT_BIN_WIDTH = 3600.0


@dataclass(frozen=True)
class ObservationSpec:
    """Which observers to attach to a replay.

    The default spec (all fields falsy) still builds a live bus — use
    ``None`` for "no observation at all" at the ``run_replay`` surface.
    """

    events_path: "str | None" = None
    """Write every event as canonical JSONL to this path."""

    metrics_path: "str | None" = None
    """Write a Prometheus-style text dump to this path at finish."""

    ring_size: int = DEFAULT_RING_SIZE
    """Flight-recorder capacity; 0 disables the recorder."""

    bin_width: "float | None" = None
    """Fixed bin width (simulated seconds) for the time-series sink;
    None disables it."""

    def build(self) -> "ObservationContext":
        """Construct the live bus + subscribers this spec describes."""
        return ObservationContext(self)


class ObservationContext:
    """A live event bus with the spec's subscribers attached."""

    def __init__(self, spec: ObservationSpec) -> None:
        self.spec = spec
        self.bus = EventBus()
        self.recorder: "FlightRecorder | None" = None
        self.timeseries: "TimeSeriesSink | None" = None
        self.jsonl: "JsonlSink | None" = None
        self.prometheus: "PrometheusSink | None" = None
        if spec.ring_size > 0:
            self.recorder = FlightRecorder(spec.ring_size).attach(self.bus)
        if spec.bin_width is not None:
            self.timeseries = TimeSeriesSink(spec.bin_width).attach(self.bus)
        if spec.events_path is not None:
            self.jsonl = JsonlSink(path=spec.events_path).attach(self.bus)
        if spec.metrics_path is not None:
            self.prometheus = PrometheusSink().attach(self.bus)

    @property
    def event_count(self) -> int:
        """Events emitted on this context's bus so far."""
        return self.bus.emitted

    def finish(self) -> None:
        """Flush file-backed sinks (idempotent; call after the replay)."""
        if self.jsonl is not None:
            self.jsonl.close()
            self.jsonl = None
        if self.prometheus is not None and self.spec.metrics_path is not None:
            self.prometheus.write(self.spec.metrics_path)
