"""Empirical TTL distributions for infrastructure and data records.

The paper reports (§4, Long TTL): "current TTL values range from some
minutes to some days, most zones have a TTL value less or equal to 12
hours", and Figure 3 relies on IRR TTLs varying "greatly, from some
minutes to some days".  The default model reproduces that mixture.

Data (end-host) records skew much shorter — CDNs and load balancers pin
them to minutes — which is why the paper's schemes touch only IRRs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0


@dataclass(frozen=True)
class TtlBucket:
    """One component of a TTL mixture: uniform in [low, high]."""

    weight: float
    low: float
    high: float

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


_DEFAULT_IRR_BUCKETS = (
    TtlBucket(0.08, 5 * MINUTE, 30 * MINUTE),   # dynamic-DNS style zones
    TtlBucket(0.22, 30 * MINUTE, 2 * HOUR),
    TtlBucket(0.40, 2 * HOUR, 12 * HOUR),       # the bulk: <= 12 h
    TtlBucket(0.20, 12 * HOUR, 1 * DAY),
    TtlBucket(0.10, 1 * DAY, 3 * DAY),          # a long-TTL tail
)

_DEFAULT_DATA_BUCKETS = (
    TtlBucket(0.10, 1 * MINUTE, 5 * MINUTE),    # CDN / load-balanced hosts
    TtlBucket(0.30, 5 * MINUTE, 1 * HOUR),
    TtlBucket(0.40, 1 * HOUR, 4 * HOUR),        # e.g. www.ucla.edu at 4 h
    TtlBucket(0.20, 4 * HOUR, 1 * DAY),
)

_TLD_IRR_TTL = 2 * DAY  # zones right below the root carry long TTLs (paper §3.2)
_ROOT_IRR_TTL = 6 * DAY


@dataclass
class TtlModel:
    """Samples TTLs for the synthetic hierarchy.

    The mixture weights are normalised on construction, so callers may
    pass unnormalised weights.
    """

    irr_buckets: tuple[TtlBucket, ...] = _DEFAULT_IRR_BUCKETS
    data_buckets: tuple[TtlBucket, ...] = _DEFAULT_DATA_BUCKETS
    root_irr_ttl: float = _ROOT_IRR_TTL
    tld_irr_ttl: float = _TLD_IRR_TTL
    _irr_weights: list[float] = field(init=False, repr=False)
    _data_weights: list[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._irr_weights = [bucket.weight for bucket in self.irr_buckets]
        self._data_weights = [bucket.weight for bucket in self.data_buckets]

    def sample_irr_ttl(self, rng: random.Random, depth: int) -> float:
        """An IRR TTL for a zone at ``depth`` labels below the root.

        The root and TLD layers use fixed long TTLs, matching the paper's
        observation that zones directly below the root tend to have
        relatively long TTL values while many zones below the TLDs are
        shorter.
        """
        if depth == 0:
            return self.root_irr_ttl
        if depth == 1:
            return self.tld_irr_ttl
        bucket = rng.choices(self.irr_buckets, weights=self._irr_weights)[0]
        return round(bucket.sample(rng))

    def sample_data_ttl(self, rng: random.Random) -> float:
        """A TTL for an end-host (data) record."""
        bucket = rng.choices(self.data_buckets, weights=self._data_weights)[0]
        return round(bucket.sample(rng))
