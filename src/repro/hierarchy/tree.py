"""The zone tree: every zone, every server, and how they interconnect.

:class:`ZoneTree` is the simulator's model of "the DNS" — the structure a
caching server resolves against.  It indexes zones by apex name, servers
by hostname and by address, and knows which servers answer for which
zones (the mapping the DDoS attack model needs to take a zone offline).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.dns.name import Name, root_name
from repro.dns.records import InfrastructureRecordSet
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone


class ZoneTree:
    """All zones and authoritative servers in the simulated namespace."""

    def __init__(self) -> None:
        self._zones: dict[Name, Zone] = {}
        self._servers_by_name: dict[Name, AuthoritativeServer] = {}
        self._servers_by_address: dict[str, AuthoritativeServer] = {}
        self._zone_servers: dict[Name, list[AuthoritativeServer]] = {}

    # -- construction ------------------------------------------------------

    def add_server(self, server: AuthoritativeServer) -> None:
        """Register a server; hostnames and addresses must be unique."""
        if server.name in self._servers_by_name:
            raise ValueError(f"duplicate server name {server.name}")
        if server.address in self._servers_by_address:
            raise ValueError(f"duplicate server address {server.address}")
        self._servers_by_name[server.name] = server
        self._servers_by_address[server.address] = server

    def add_zone(self, zone: Zone, servers: Iterable[AuthoritativeServer]) -> None:
        """Register ``zone`` as served by ``servers``.

        Servers not yet known to the tree are added automatically.
        """
        if zone.name in self._zones:
            raise ValueError(f"duplicate zone {zone.name}")
        server_list = list(servers)
        if not server_list:
            raise ValueError(f"zone {zone.name} needs at least one server")
        self._zones[zone.name] = zone
        self._zone_servers[zone.name] = server_list
        for server in server_list:
            if server.name not in self._servers_by_name:
                self.add_server(server)
            server.serve_zone(zone)

    # -- lookups -------------------------------------------------------------

    def zone(self, name: Name) -> Zone:
        """The zone with apex ``name``.

        Raises:
            KeyError: when no such zone exists.
        """
        return self._zones[name]

    def has_zone(self, name: Name) -> bool:
        """Whether a zone with apex ``name`` exists."""
        return name in self._zones

    def zones(self) -> Iterator[Zone]:
        """All zones, in no particular order."""
        return iter(self._zones.values())

    def zone_names(self) -> tuple[Name, ...]:
        """All zone apex names."""
        return tuple(self._zones)

    def zone_count(self) -> int:
        return len(self._zones)

    def server_count(self) -> int:
        return len(self._servers_by_name)

    def server_by_address(self, address: str) -> AuthoritativeServer | None:
        """The server listening at ``address``, if any."""
        return self._servers_by_address.get(address)

    def server_by_name(self, name: Name) -> AuthoritativeServer | None:
        """The server with hostname ``name``, if any."""
        return self._servers_by_name.get(name)

    def servers_for_zone(self, zone_name: Name) -> list[AuthoritativeServer]:
        """The authoritative servers of ``zone_name`` (empty if unknown)."""
        return list(self._zone_servers.get(zone_name, ()))

    def addresses_for_zone(self, zone_name: Name) -> list[str]:
        """The server addresses of ``zone_name``."""
        return [server.address for server in self._zone_servers.get(zone_name, ())]

    def enclosing_zone(self, name: Name) -> Zone:
        """The deepest zone whose apex is an ancestor of ``name``.

        The root zone always matches, so this never fails on a tree that
        contains the root.
        """
        for ancestor in name.ancestors():
            zone = self._zones.get(ancestor)
            if zone is not None:
                return zone
        raise KeyError(f"tree has no root zone enclosing {name}")

    def parent_zone(self, zone_name: Name) -> Zone | None:
        """The zone delegating ``zone_name``, or None for the root."""
        if zone_name.is_root:
            return None
        return self.enclosing_zone(zone_name.parent())

    def root_hints(self) -> InfrastructureRecordSet:
        """The root zone's IRRs — what every caching server is primed with."""
        return self._zones[root_name()].infrastructure_records

    # -- structure queries ----------------------------------------------------

    def children_of(self, zone_name: Name) -> tuple[Name, ...]:
        """Apex names of the zones directly delegated by ``zone_name``."""
        return self._zones[zone_name].child_zone_names()

    def descendants_of(self, zone_name: Name) -> list[Name]:
        """Every zone strictly below ``zone_name`` (transitively)."""
        found: list[Name] = []
        frontier = list(self.children_of(zone_name))
        while frontier:
            current = frontier.pop()
            found.append(current)
            if current in self._zones:
                frontier.extend(self.children_of(current))
        return found

    def tld_names(self) -> list[Name]:
        """The zones directly below the root."""
        return list(self.children_of(root_name()))

    def total_record_count(self) -> int:
        """Total authoritative records across every zone."""
        return sum(zone.record_count() for zone in self._zones.values())

    # -- operator-side knobs ----------------------------------------------------

    def migrate_zone_servers(
        self,
        zone_name: Name,
        new_irrs: InfrastructureRecordSet,
        new_servers: list[AuthoritativeServer],
        decommission_old: bool = False,
    ) -> list[AuthoritativeServer]:
        """Move a zone onto a new server set (IRR churn).

        Models an operator changing name servers mid-trace (paper §4's
        long-TTL inconsistency discussion): the zone's apex IRRs and the
        parent's delegation copy are replaced, the new servers start
        answering, and the old ones either go *lame* for the zone
        (default — still running, answering REFUSED) or are
        *decommissioned* entirely (their addresses stop responding) when
        they serve nothing else.

        Returns the old server list.

        Raises:
            KeyError: when the zone is unknown.
        """
        zone = self._zones[zone_name]
        old_servers = self._zone_servers.get(zone_name, [])
        for server in old_servers:
            server.withdraw_zone(zone_name)

        zone.replace_infrastructure_records(new_irrs)
        parent = self.parent_zone(zone_name)
        if parent is not None:
            parent.replace_delegation(new_irrs)

        self._zone_servers[zone_name] = list(new_servers)
        for server in new_servers:
            if server.name not in self._servers_by_name:
                self.add_server(server)
            server.serve_zone(zone)

        if decommission_old:
            for server in old_servers:
                if not server.zones_served():
                    self._servers_by_name.pop(server.name, None)
                    self._servers_by_address.pop(server.address, None)
        return list(old_servers)

    def remove_zone(self, zone_name: Name) -> Zone:
        """Unregister a zone added by :meth:`add_zone` (undoing a graft).

        The zone's servers stop answering for it; servers left serving
        nothing are decommissioned entirely (same rule as
        :meth:`migrate_zone_servers`).  The parent's delegation is *not*
        touched — callers pair this with
        :meth:`~repro.dns.zone.Zone.remove_delegation`.

        Returns the removed zone.

        Raises:
            KeyError: when the zone is unknown.
        """
        zone = self._zones.pop(zone_name)
        servers = self._zone_servers.pop(zone_name, [])
        for server in servers:
            server.withdraw_zone(zone_name)
            if not server.zones_served():
                self._servers_by_name.pop(server.name, None)
                self._servers_by_address.pop(server.address, None)
        return zone

    def capture_irr_state(self) -> dict[Name, tuple]:
        """Snapshot every zone's IRR TTL state (for undoing long-TTL)."""
        return {name: zone.irr_snapshot() for name, zone in self._zones.items()}

    def restore_irr_state(self, state: dict[Name, tuple]) -> None:
        """Restore a snapshot taken with :meth:`capture_irr_state`."""
        for name, snapshot in state.items():
            zone = self._zones.get(name)
            if zone is not None:
                zone.restore_irr_snapshot(snapshot)

    def apply_long_ttl(
        self, ttl: float, zone_filter: Iterable[Name] | None = None
    ) -> int:
        """Raise IRR TTLs to ``ttl`` for the selected zones (default: all).

        Models the paper's long-TTL scheme: each selected zone re-stamps
        its own IRRs *and* its parent re-stamps its delegation copy, so
        both referral-learned and answer-learned IRRs carry the long TTL.
        Data records are untouched.

        Returns the number of zones changed.
        """
        selected = (
            set(zone_filter) if zone_filter is not None else set(self._zones)
        )
        changed = 0
        # Sorted so TTL re-stamping order (and thus any tie-breaking
        # downstream) is independent of set iteration order.
        for name in sorted(selected):
            zone = self._zones.get(name)
            if zone is None:
                continue
            zone.set_infrastructure_ttl(ttl)
            parent = self.parent_zone(name)
            if parent is not None:
                parent.set_delegation_ttl(name, ttl)
            changed += 1
        return changed

    def __repr__(self) -> str:
        return f"ZoneTree(zones={len(self._zones)}, servers={len(self._servers_by_name)})"
