"""Synthetic Internet-like DNS hierarchy generator.

Builds a delegation tree with the structural features the paper's
evaluation depends on:

* a root zone with 13 servers;
* a few hundred TLDs (a handful of huge gTLDs plus many ccTLDs), each
  with several servers and long IRR TTLs;
* many second-level zones (SLDs), distributed across TLDs by a Zipf law
  (com-like TLDs get most), each with 2–4 servers;
* **provider-hosted zones**: a fraction of SLDs outsource DNS to one of a
  small set of provider zones, so their NS names are out-of-bailiwick and
  resolving them requires the *provider's* zone to be reachable — this is
  the "leaf zone that is not a stub zone" effect from §3.2 of the paper;
* third-level zones under a fraction of SLDs (cs.ucla.edu-style), served
  either by their own in-bailiwick servers or their parent's servers;
* per-zone host catalogs (www/mail/host-N A records with short, data-TTL
  lifetimes) that the workload generator queries.

Everything is driven by a seeded :class:`random.Random`, so a given
(config, seed) pair always produces the same tree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dns.dnssec import sign_irrs
from repro.dns.errors import ZoneConfigError
from repro.dns.name import Name, root_name
from repro.dns.records import InfrastructureRecordSet, ResourceRecord, RRset
from repro.dns.rrtypes import RRType
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone, ZoneBuilder
from repro.hierarchy.tree import ZoneTree
from repro.hierarchy.ttlmodel import TtlModel

_GTLD_NAMES = ("com", "net", "org", "edu", "gov", "mil", "info", "biz")
_CCTLD_SYLLABLES = "abcdefghijklmnopqrstuvwxyz"
_COMMON_HOSTS = ("www", "mail", "ftp", "web", "smtp", "ns0host")


@dataclass(frozen=True)
class HierarchyConfig:
    """Knobs for the synthetic hierarchy.

    The defaults give a laptop-scale tree; experiments scale ``num_slds``
    and friends through :class:`repro.experiments.scenarios.Scale`.
    """

    num_tlds: int = 40
    num_slds: int = 1200
    num_providers: int = 8
    provider_hosted_fraction: float = 0.35
    third_level_fraction: float = 0.15
    third_level_own_servers_fraction: float = 0.5
    max_third_level_children: int = 3
    root_server_count: int = 13
    tld_server_range: tuple[int, int] = (4, 8)
    sld_server_range: tuple[int, int] = (2, 4)
    provider_server_range: tuple[int, int] = (4, 6)
    hosts_per_zone_range: tuple[int, int] = (3, 12)
    tld_zipf_exponent: float = 1.1
    dnssec_fraction: float = 0.0
    """Fraction of zones publishing DNSSEC IRRs (paper §6 extension);
    the root and TLDs are always signed when this is non-zero."""
    ttl_model: TtlModel = field(default_factory=TtlModel)

    def __post_init__(self) -> None:
        if self.num_tlds < 1:
            raise ValueError("need at least one TLD")
        if self.num_providers > self.num_slds:
            raise ValueError("more providers than SLD slots")
        if not 0.0 <= self.provider_hosted_fraction <= 1.0:
            raise ValueError("provider_hosted_fraction must be a fraction")
        if not 0.0 <= self.dnssec_fraction <= 1.0:
            raise ValueError("dnssec_fraction must be a fraction")


@dataclass
class BuiltHierarchy:
    """The builder's output: the tree plus workload-facing indexes."""

    tree: ZoneTree
    catalog: dict[Name, list[Name]]
    """Queryable host names per zone apex (the workload's name pool)."""

    provider_zones: list[Name]
    """Apexes of the DNS-provider zones (useful for targeted attacks)."""

    def leaf_zone_names(self) -> list[Name]:
        """Zones with no delegations of their own."""
        return [
            zone.name
            for zone in self.tree.zones()
            if not zone.child_zone_names()
        ]


class _AddressAllocator:
    """Hands out unique dotted-quad server addresses."""

    def __init__(self) -> None:
        self._next = 0

    def allocate(self) -> str:
        value = self._next
        self._next += 1
        if value >= 256**3:
            raise RuntimeError("address space exhausted")
        return (
            f"10.{(value >> 16) & 0xFF}.{(value >> 8) & 0xFF}.{value & 0xFF}"
        )


class HierarchyBuilder:
    """Builds a :class:`BuiltHierarchy` from a config and seed."""

    def __init__(self, config: HierarchyConfig | None = None, seed: int = 0) -> None:
        self.config = config or HierarchyConfig()
        self._rng = random.Random(seed)
        self._addresses = _AddressAllocator()
        self._tree = ZoneTree()
        self._catalog: dict[Name, list[Name]] = {}
        self._provider_irrs: list[InfrastructureRecordSet] = []
        self._provider_zone_names: list[Name] = []

    # -- public -----------------------------------------------------------

    def build(self) -> BuiltHierarchy:
        """Construct the whole tree.  Call once per builder instance."""
        tld_names = self._choose_tld_names()
        tld_irrs = {name: self._make_zone_irrs(name, *self.config.tld_server_range)
                    for name in tld_names}
        self._build_root(tld_irrs)

        # Pre-plan SLD distribution across TLDs (Zipf over TLD rank).
        weights = [
            1.0 / (rank + 1) ** self.config.tld_zipf_exponent
            for rank in range(len(tld_names))
        ]
        sld_parents = self._rng.choices(
            tld_names, weights=weights, k=self.config.num_slds
        )

        # Providers first: their zones must exist before customers can
        # reference their server names.
        provider_parents = sld_parents[: self.config.num_providers]
        tld_children: dict[Name, list[InfrastructureRecordSet]] = {
            name: [] for name in tld_names
        }
        for index, parent in enumerate(provider_parents):
            irrs = self._build_provider_zone(index, parent)
            tld_children[parent].append(irrs)

        for index, parent in enumerate(sld_parents[self.config.num_providers:]):
            irrs = self._build_sld_zone(index, parent)
            tld_children[parent].append(irrs)

        for tld_name in tld_names:
            self._build_tld_zone(tld_name, tld_irrs[tld_name], tld_children[tld_name])

        return BuiltHierarchy(
            tree=self._tree,
            catalog=self._catalog,
            provider_zones=list(self._provider_zone_names),
        )

    # -- layers ------------------------------------------------------------

    def _choose_tld_names(self) -> list[Name]:
        names = [Name.from_text(label) for label in _GTLD_NAMES[: self.config.num_tlds]]
        seen = {name.labels[0] for name in names}
        while len(names) < self.config.num_tlds:
            label = "".join(self._rng.choices(_CCTLD_SYLLABLES, k=2))
            if label in seen:
                continue
            seen.add(label)
            names.append(Name.from_text(label))
        return names

    def _build_root(self, tld_irrs: dict[Name, InfrastructureRecordSet]) -> None:
        root = root_name()
        ttl = self.config.ttl_model.root_irr_ttl
        builder = ZoneBuilder(root, default_ttl=ttl)
        servers: list[AuthoritativeServer] = []
        for index in range(self.config.root_server_count):
            letter = chr(ord("a") + index)
            server_name = Name.from_text(f"{letter}.root-servers.example")
            address = self._addresses.allocate()
            builder.add_ns(server_name, address, ttl=ttl)
            servers.append(AuthoritativeServer(server_name, address))
        for irrs in tld_irrs.values():
            builder.delegate(irrs)
        zone = builder.build()
        if self.config.dnssec_fraction > 0.0:
            zone.replace_infrastructure_records(
                sign_irrs(zone.infrastructure_records)
            )
        self._register(zone, servers)

    def _build_tld_zone(
        self,
        name: Name,
        irrs: InfrastructureRecordSet,
        children: list[InfrastructureRecordSet],
    ) -> None:
        builder = ZoneBuilder(name, default_ttl=irrs.ns.ttl)
        builder.set_soa(minimum=3600.0)
        servers = self._servers_from_irrs(builder, irrs)
        for child in children:
            builder.delegate(child)
        self._register(builder.build(), servers)

    def _build_provider_zone(self, index: int, parent: Name) -> InfrastructureRecordSet:
        """A DNS-hosting provider: its servers also answer for customers."""
        name = parent.child(f"dns-provider{index}")
        low, high = self.config.provider_server_range
        irrs = self._make_zone_irrs(name, low, high)
        builder = ZoneBuilder(name, default_ttl=irrs.ns.ttl)
        servers = self._servers_from_irrs(builder, irrs)
        self._add_hosts(builder, name)
        self._register(builder.build(), servers)
        self._provider_irrs.append(irrs)
        self._provider_zone_names.append(name)
        return irrs

    def _build_sld_zone(self, index: int, parent: Name) -> InfrastructureRecordSet:
        name = parent.child(f"z{index}")
        hosted = (
            self._provider_irrs
            and self._rng.random() < self.config.provider_hosted_fraction
        )
        if hosted:
            provider = self._rng.choice(self._provider_irrs)
            irrs = self._provider_hosted_irrs(name, provider)
            servers = [
                self._tree.server_by_name(server_name)
                for server_name in irrs.server_names()
            ]
            servers = [server for server in servers if server is not None]
        else:
            low, high = self.config.sld_server_range
            irrs = self._make_zone_irrs(name, low, high)
            servers = None  # created below from glue

        builder = ZoneBuilder(name, default_ttl=irrs.ns.ttl)
        if servers is None:
            servers = self._servers_from_irrs(builder, irrs)
        else:
            for record in irrs.ns:
                builder.add_ns_record(record)  # out-of-bailiwick, no glue
            builder.set_dnssec(irrs.dnssec)
        self._add_hosts(builder, name)

        third_level: list[InfrastructureRecordSet] = []
        if self._rng.random() < self.config.third_level_fraction:
            child_count = self._rng.randint(1, self.config.max_third_level_children)
            for child_index in range(child_count):
                third_level.append(
                    self._build_third_level_zone(name, child_index, irrs, servers)
                )
        for child in third_level:
            builder.delegate(child)
        self._register(builder.build(), servers)
        return irrs

    def _build_third_level_zone(
        self,
        parent: Name,
        index: int,
        parent_irrs: InfrastructureRecordSet,
        parent_servers: list[AuthoritativeServer],
    ) -> InfrastructureRecordSet:
        name = parent.child(f"dept{index}")
        own_servers = (
            self._rng.random() < self.config.third_level_own_servers_fraction
        )
        if own_servers:
            irrs = self._make_zone_irrs(name, 2, 3)
            builder = ZoneBuilder(name, default_ttl=irrs.ns.ttl)
            servers = self._servers_from_irrs(builder, irrs)
        else:
            # Served by the parent organisation's servers: NS names point
            # at the parent zone's servers (out-of-bailiwick for the child).
            ttl = self.config.ttl_model.sample_irr_ttl(self._rng, name.depth())
            ns_records = [
                ResourceRecord(name, RRType.NS, ttl, server_name)
                for server_name in parent_irrs.server_names()
            ]
            irrs = InfrastructureRecordSet(name, RRset.from_records(ns_records))
            builder = ZoneBuilder(name, default_ttl=ttl)
            for record in irrs.ns:
                builder.add_ns_record(record)
            builder.set_dnssec(irrs.dnssec)
            servers = list(parent_servers)
        self._add_hosts(builder, name)
        self._register(builder.build(), servers)
        return irrs

    # -- pieces ----------------------------------------------------------------

    def _make_zone_irrs(
        self, zone: Name, low: int, high: int
    ) -> InfrastructureRecordSet:
        """Fresh in-bailiwick NS + glue for ``zone``."""
        count = self._rng.randint(low, high)
        ttl = self.config.ttl_model.sample_irr_ttl(self._rng, zone.depth())
        ns_records = []
        glue_sets = []
        for index in range(count):
            server_name = zone.child(f"ns{index + 1}")
            address = self._addresses.allocate()
            ns_records.append(ResourceRecord(zone, RRType.NS, ttl, server_name))
            glue_sets.append(
                RRset.from_records(
                    [ResourceRecord(server_name, RRType.A, ttl, address)]
                )
            )
        irrs = InfrastructureRecordSet(
            zone, RRset.from_records(ns_records), tuple(glue_sets)
        )
        return self._maybe_sign(irrs)

    def _provider_hosted_irrs(
        self, zone: Name, provider: InfrastructureRecordSet
    ) -> InfrastructureRecordSet:
        """IRRs for a customer zone pointing at provider servers (no glue)."""
        ttl = self.config.ttl_model.sample_irr_ttl(self._rng, zone.depth())
        ns_records = [
            ResourceRecord(zone, RRType.NS, ttl, server_name)
            for server_name in provider.server_names()
        ]
        irrs = InfrastructureRecordSet(zone, RRset.from_records(ns_records))
        return self._maybe_sign(irrs)

    def _maybe_sign(self, irrs: InfrastructureRecordSet) -> InfrastructureRecordSet:
        """Sign a zone's IRRs per the configured DNSSEC deployment.

        TLDs (depth 1) are always signed when DNSSEC is enabled at all,
        mirroring real deployment order (root/TLDs signed first).
        """
        fraction = self.config.dnssec_fraction
        if fraction <= 0.0:
            return irrs
        if irrs.zone.depth() <= 1 or self._rng.random() < fraction:
            return sign_irrs(irrs)
        return irrs

    def _servers_from_irrs(
        self, builder: ZoneBuilder, irrs: InfrastructureRecordSet
    ) -> list[AuthoritativeServer]:
        """Declare NS+glue (and DNSSEC sets) on ``builder``; mint servers."""
        builder.set_dnssec(irrs.dnssec)
        servers = []
        for record in irrs.ns:
            server_name = record.data
            if not isinstance(server_name, Name):
                raise ZoneConfigError(
                    f"NS rdata {server_name!r} is not a name"
                )
            glue = irrs.glue_for(server_name)
            if glue is None:
                raise ZoneConfigError(
                    f"in-bailiwick server {server_name} without glue"
                )
            address = str(glue.records[0].data)
            builder.add_ns(server_name, address, ttl=irrs.ns.ttl)
            existing = self._tree.server_by_name(server_name)
            servers.append(existing or AuthoritativeServer(server_name, address))
        return servers

    def _add_hosts(self, builder: ZoneBuilder, zone: Name) -> None:
        builder.set_soa(minimum=float(self._rng.choice((300, 900, 3600))))
        low, high = self.config.hosts_per_zone_range
        count = self._rng.randint(low, high)
        hosts: list[Name] = []
        for index in range(count):
            if index < len(_COMMON_HOSTS):
                host = zone.child(_COMMON_HOSTS[index])
            else:
                host = zone.child(f"host{index}")
            ttl = self.config.ttl_model.sample_data_ttl(self._rng)
            builder.add_address(host, self._addresses.allocate(), ttl=ttl)
            hosts.append(host)
        self._catalog[zone] = hosts

    def _register(self, zone: Zone, servers: list[AuthoritativeServer]) -> None:
        self._tree.add_zone(zone, servers)


def build_hierarchy(
    config: HierarchyConfig | None = None, seed: int = 0
) -> BuiltHierarchy:
    """One-shot convenience wrapper around :class:`HierarchyBuilder`."""
    return HierarchyBuilder(config, seed).build()


# -- adversary zone grafts ----------------------------------------------------


@dataclass(frozen=True)
class AttackerZoneGraft:
    """Receipt for a grafted attacker zone; pass to the ungraft."""

    apex: Name
    parent: Name


#: TEST-NET-3 block: guaranteed disjoint from the builder's 10/8 space.
_ATTACKER_NET = "203.0.113."


def graft_attacker_zone(
    tree: ZoneTree,
    fan_out: int,
    delegations: int,
    ttl: float = 300.0,
) -> AttackerZoneGraft:
    """Register an NXNS-style attacker zone under the first TLD.

    The zone delegates ``delegations`` children, each naming ``fan_out``
    nonexistent out-of-bailiwick name servers spread across the victim
    SLDs already in the tree.  A resolver chasing such a referral must
    sub-resolve every server name — each one a full (failing) resolution
    against an innocent zone — reproducing the NXNSAttack query storm.

    Pair with :func:`ungraft_attacker_zone` (try/finally) so warm-pool
    trees are restored byte-for-byte.
    """
    if fan_out < 1 or delegations < 1:
        raise ValueError("fan_out and delegations must be positive")
    parent_name = sorted(tree.tld_names())[0]
    victims = sorted(
        name for name in tree.zone_names() if name.depth() == 2
    ) or [parent_name]
    apex = parent_name.child("nxns-attacker")

    address = ""
    for octet in range(1, 255):
        candidate = f"{_ATTACKER_NET}{octet}"
        if tree.server_by_address(candidate) is None:
            address = candidate
            break
    if not address:
        raise RuntimeError("attacker address space exhausted")
    builder = ZoneBuilder(apex, default_ttl=ttl)
    builder.set_soa(minimum=60.0)
    server_name = apex.child("ns1")
    builder.add_ns(server_name, address, ttl=ttl)
    for j in range(delegations):
        sub = apex.child(f"s{j}")
        ns_records = [
            ResourceRecord(
                sub,
                RRType.NS,
                ttl,
                victims[(j * fan_out + k) % len(victims)].child(f"nx{j}-{k}"),
            )
            for k in range(fan_out)
        ]
        builder.delegate(
            InfrastructureRecordSet(sub, RRset.from_records(ns_records))
        )
    zone = builder.build()
    tree.add_zone(zone, [AuthoritativeServer(server_name, address)])
    tree.zone(parent_name).add_delegation(zone.infrastructure_records)
    return AttackerZoneGraft(apex=apex, parent=parent_name)


def ungraft_attacker_zone(tree: ZoneTree, graft: AttackerZoneGraft) -> None:
    """Undo :func:`graft_attacker_zone` exactly.

    The attacker's delegation was appended last, so popping it preserves
    the parent's remaining delegation (and response-memo rebuild) order.
    """
    tree.zone(graft.parent).remove_delegation(graft.apex)
    tree.remove_zone(graft.apex)
