"""DNS delegation hierarchy: the zone tree and its synthetic builder.

The paper's simulator replays traces against "the part of the DNS tree
structure that was needed in order to resolve all the zones captured in
the traces", probed from the real DNS.  We cannot probe the 2006 DNS, so
:mod:`repro.hierarchy.builder` synthesises an Internet-like delegation
tree with the properties the evaluation depends on: realistic fan-out
(root -> a few hundred TLDs -> many SLDs), realistic NS-set sizes,
provider-hosted (out-of-bailiwick) name servers, and an empirical IRR TTL
distribution (minutes to days, mostly <= 12 h).
"""

from repro.hierarchy.builder import HierarchyBuilder, HierarchyConfig
from repro.hierarchy.tree import ZoneTree
from repro.hierarchy.ttlmodel import TtlModel

__all__ = ["HierarchyBuilder", "HierarchyConfig", "TtlModel", "ZoneTree"]
