"""IRR churn: zones changing their name-server sets mid-trace.

The paper's long-TTL discussion (§4) concedes one cost: "if the IRR
changes at the ANs, the cached copy will be out of date... The penalty
paid for querying an obsolete name-server is a longer resolution time."
This module makes that cost measurable: a :class:`ChurnSchedule` lists
zones that migrate to brand-new server sets at given virtual times, and
:func:`apply_churn_event` performs one migration on a live tree.

Old servers either go *lame* (still running, REFUSED — a quick penalty)
or are *decommissioned* (timeouts — the expensive case).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.dns.name import Name
from repro.dns.records import InfrastructureRecordSet, ResourceRecord, RRset
from repro.dns.rrtypes import RRType
from repro.dns.server import AuthoritativeServer
from repro.hierarchy.builder import BuiltHierarchy
from repro.hierarchy.tree import ZoneTree


@dataclass(frozen=True)
class ChurnEvent:
    """One migration: ``zone`` moves to a fresh server set at ``time``."""

    time: float
    zone: Name
    generation: int = 1


@dataclass
class ChurnSchedule:
    """Time-ordered migrations plus the policy for old servers."""

    events: list[ChurnEvent] = field(default_factory=list)
    decommission_old: bool = False

    def __post_init__(self) -> None:
        self.events.sort(key=lambda event: event.time)

    def __len__(self) -> int:
        return len(self.events)

    def zones(self) -> set[Name]:
        return {event.zone for event in self.events}


class _ChurnAddressAllocator:
    """Addresses for replacement servers, disjoint from the builder's 10/8."""

    def __init__(self) -> None:
        self._next = 0

    def allocate(self) -> str:
        value = self._next
        self._next += 1
        if value >= 256 * 250 * 250:
            raise RuntimeError("churn address space exhausted")
        return f"172.{16 + value // (250 * 250)}.{(value // 250) % 250}.{value % 250 + 1}"


_ALLOCATOR = _ChurnAddressAllocator()


def fresh_server_set(
    zone_name: Name,
    ttl: float,
    count: int,
    generation: int,
) -> tuple[InfrastructureRecordSet, list[AuthoritativeServer]]:
    """Mint a brand-new in-bailiwick NS+glue set and its server objects."""
    ns_records = []
    glue = []
    servers = []
    for index in range(count):
        server_name = zone_name.child(f"ns{index + 1}g{generation}")
        address = _ALLOCATOR.allocate()
        ns_records.append(ResourceRecord(zone_name, RRType.NS, ttl, server_name))
        glue.append(
            RRset.from_records(
                [ResourceRecord(server_name, RRType.A, ttl, address)]
            )
        )
        servers.append(AuthoritativeServer(server_name, address))
    irrs = InfrastructureRecordSet(
        zone_name, RRset.from_records(ns_records), tuple(glue)
    )
    return irrs, servers


InvalidationListener = Callable[[Name, float], None]
"""Called as ``listener(zone, time)`` after a migration lands — the
update/invalidation channel of the ``decoupled`` scheme (caching servers
subscribe :meth:`CachingServer.handle_invalidation`)."""


def apply_churn_event(
    tree: ZoneTree,
    event: ChurnEvent,
    decommission_old: bool = False,
    listeners: Iterable[InvalidationListener] = (),
) -> None:
    """Perform one migration on the live tree.

    The new set keeps the zone's current NS TTL and server count, so the
    only thing that changes is *which* servers are authoritative.  Each
    ``listener`` is notified after the tree mutates, in subscription
    order (deterministic).
    """
    zone = tree.zone(event.zone)
    current = zone.infrastructure_records
    irrs, servers = fresh_server_set(
        event.zone,
        ttl=current.ns.ttl,
        count=max(2, len(current.server_names())),
        generation=event.generation,
    )
    tree.migrate_zone_servers(
        event.zone, irrs, servers, decommission_old=decommission_old
    )
    for listener in listeners:
        listener(event.zone, event.time)


def generate_churn(
    built: BuiltHierarchy,
    start: float,
    end: float,
    zone_count: int,
    seed: int = 0,
    decommission_old: bool = False,
) -> ChurnSchedule:
    """Pick ``zone_count`` own-server SLD zones to migrate in [start, end).

    Provider-hosted zones are skipped (their churn is the provider's, a
    different phenomenon), as are zones whose servers also serve others.
    """
    if end <= start:
        raise ValueError("empty churn window")
    rng = random.Random(seed)
    candidates = []
    for zone in built.tree.zones():
        if zone.name.depth() != 2:
            continue
        servers = built.tree.servers_for_zone(zone.name)
        if not servers:
            continue
        exclusively_ours = all(
            server.zones_served() == (zone.name,) for server in servers
        )
        if exclusively_ours:
            candidates.append(zone.name)
    candidates.sort()
    chosen = rng.sample(candidates, min(zone_count, len(candidates)))
    events = [
        ChurnEvent(time=rng.uniform(start, end), zone=zone)
        for zone in chosen
    ]
    return ChurnSchedule(events=events, decommission_old=decommission_old)
