"""The caching server's RFC 2181-ranked TTL cache.

Semantics that matter for the paper:

* **Ranking** — data learned from a more trusted section may replace less
  trusted data (child-side IRRs replace parent-side referral copies);
  lower-ranked data never downgrades the cache.
* **The refresh switch** — when an equally-ranked copy with identical
  rdata arrives, a vanilla cache keeps the old countdown; with
  ``refresh=True`` the TTL restarts.  That single branch is the paper's
  "TTL refresh" scheme.
* **Expired entries are kept** (tombstones) so the simulator can measure
  Figure 3's expiry-to-next-use gaps and implement the serve-stale
  comparator; they are invisible to normal lookups.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.dns.name import Name, name_for_id
from repro.dns.ranking import Rank
from repro.dns.records import RRset
from repro.dns.rrtypes import RRTYPE_BITS, RRType
from repro.obs.events import EventKind

if TYPE_CHECKING:
    from repro.obs.events import EventBus

_TYPE_MASK = (1 << RRTYPE_BITS) - 1
_NS_CODE = int(RRType.NS)


def cache_key(name: Name, rrtype: RRType) -> int:
    """Pack ``(name, rrtype)`` into the int key the cache stores under.

    Names carry a dense intern id (:attr:`~repro.dns.name.Name.iid`);
    the rrtype fits in the low ``RRTYPE_BITS`` bits.  Int keys hash and
    compare at C speed, which matters because every cache operation on
    the replay hot path builds one.
    """
    return (name.iid << RRTYPE_BITS) | int(rrtype)


def split_key(key: int) -> tuple[Name, RRType]:
    """Unpack a packed int key back to ``(name, rrtype)``.

    The inverse of :func:`cache_key`; used by validation audits and
    diagnostics, never on the hot path.
    """
    return (name_for_id(key >> RRTYPE_BITS), RRType(key & _TYPE_MASK))


@dataclass(slots=True)
class CacheEntry:
    """One cached RRset with its countdown and provenance."""

    rrset: RRset
    rank: Rank
    stored_at: float
    expires_at: float
    published_ttl: float
    """The TTL the authority published (pre-cap), for gap normalisation."""

    # repro: memo(noop: field=noop_result,
    #   depends=[rrset, rank, stored_at, expires_at, published_ttl],
    #   invalidator=none)
    noop_result: "PutResult | None" = field(
        default=None, repr=False, compare=False
    )
    """Memoized not-stored :class:`PutResult` for identity re-offers.

    Zone response caching means the same RRset object is re-offered to
    the cache thousands of times while this entry is live; the no-op
    result is identical every time, so it is built once and cleared
    whenever the entry's expiry changes."""

    tainted: bool = field(default=False, compare=False)
    """Simulator ground truth: True when this entry came from a forged
    response (poison-dwell accounting; resolver behaviour never reads it)."""

    def is_live(self, now: float) -> bool:
        return now < self.expires_at

    def remaining(self, now: float) -> float:
        return max(0.0, self.expires_at - now)


@dataclass(frozen=True, slots=True)
class PutResult:
    """What a ``put`` did, so callers can react (gap tracking, timers)."""

    stored: bool
    """Whether the cache now holds the offered data (stored or refreshed)."""

    refreshed: bool
    """True when an existing live entry's TTL was restarted."""

    replaced_expired: bool
    """True when the put overwrote an entry that had already lapsed."""

    previous_expiry: float | None
    """Expiry of the overwritten entry (live or lapsed), if any."""

    previous_published_ttl: float | None
    """Published TTL of the overwritten entry, if any."""

    expires_at: float | None
    """The (possibly unchanged) expiry now in effect for the key."""


_NOT_STORED = PutResult(False, False, False, None, None, None)


class DnsCache:
    """TTL cache keyed by (owner name, rrtype).

    ``max_entries`` bounds capacity: when full, the least-recently-used
    *live* entry is evicted (expired tombstones go first).  None means
    unbounded, the paper's assumption — its §5.2.2 argues the absolute
    footprint is small enough that production caches never fill.
    """

    def __init__(
        self,
        max_effective_ttl: float | None = None,
        max_entries: int | None = None,
        harden_ranking: bool = False,
        protect_irrs: bool = False,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.harden_ranking = harden_ranking
        self.protect_irrs = protect_irrs
        # dict preserves insertion order; `_touch` re-inserts on use so
        # iteration order is LRU-first.  Keys are packed ints (see
        # `cache_key`), not (Name, RRType) tuples: the public API still
        # speaks Names, but storage and every hot lookup run on ints.
        self._entries: dict[int, CacheEntry] = {}
        self._negative: dict[int, float] = {}
        self.max_effective_ttl = max_effective_ttl
        self.max_entries = max_entries
        self.evictions = 0
        # Incremental occupancy accounting: the live entry/record/zone
        # counts are maintained on every put/remove, with expirations
        # applied lazily from a min-heap of (expires_at, token, key) as
        # the clock (monotone during a replay) moves forward.  `_counted`
        # maps each counted key to its (token, record_count) so stale
        # heap entries for overwritten keys are recognised and skipped.
        # The whole machinery stays off (`_counting=False`, zero put-path
        # cost) until the first occupancy query builds it from the store.
        self._counting = False
        self._counted: dict[int, tuple[int, int]] = {}
        self._expiry_heap: list[tuple[float, int, int]] = []
        self._tokens = itertools.count()
        self._count_horizon = float("-inf")
        self._live_entries = 0
        self._live_records = 0
        self._live_zones = 0
        # Poison-dwell accounting (DESIGN.md §16): key -> (taint time,
        # rank stored at, rank of the live untainted entry it displaced,
        # if any).  Stays empty — and every guard on it false — unless a
        # tainted put arrives, so the clean hot path is unchanged.
        self._tainted: dict[int, tuple[float, Rank, Rank | None]] = {}
        self.poison_stored = 0
        self.poison_cured = 0
        self.poison_dwells: list[float] = []
        self._obs: "EventBus | None" = None

    def attach_observer(self, bus: "EventBus") -> None:
        """Route lookup/eviction events onto the observability bus.

        ``get`` is the hottest call in a replay, so rather than pay an
        inline ``is None`` guard on every lookup, the instrumented
        variant is rebound onto *this instance* only when a bus
        attaches — an unobserved cache keeps the original bytecode.
        """
        self._obs = bus
        self.get = self._observed_get  # type: ignore[method-assign]

    def _touch(self, key: int) -> None:
        entry = self._entries.pop(key)
        self._entries[key] = entry

    # -- incremental occupancy bookkeeping ----------------------------------

    def _count_in(self, key: int, entry: CacheEntry, now: float) -> None:
        """Start counting ``entry`` as live (replacing any prior count)."""
        if not self._counting:
            return
        self._count_out(key)
        if entry.expires_at > now:
            token = next(self._tokens)
            nrecords = len(entry.rrset.records)
            self._counted[key] = (token, nrecords)
            self._live_entries += 1
            self._live_records += nrecords
            if key & _TYPE_MASK == _NS_CODE:
                self._live_zones += 1
            heapq.heappush(self._expiry_heap, (entry.expires_at, token, key))

    def _count_out(self, key: int) -> None:
        """Stop counting ``key`` if it is currently counted as live."""
        if not self._counting:
            return
        info = self._counted.pop(key, None)
        if info is not None:
            self._live_entries -= 1
            self._live_records -= info[1]
            if key & _TYPE_MASK == _NS_CODE:
                self._live_zones -= 1

    def _build_counts(self, now: float) -> None:
        """Switch counting on: census the store, then maintain incrementally."""
        self._counting = True
        self._counted.clear()
        heap = []
        entries = records = zones = 0
        for key, entry in self._entries.items():
            expires_at = entry.expires_at
            if expires_at <= now:
                continue
            token = next(self._tokens)
            nrecords = len(entry.rrset.records)
            self._counted[key] = (token, nrecords)
            heap.append((expires_at, token, key))
            entries += 1
            records += nrecords
            if key & _TYPE_MASK == _NS_CODE:
                zones += 1
        heapq.heapify(heap)
        self._expiry_heap = heap
        self._live_entries = entries
        self._live_records = records
        self._live_zones = zones
        self._count_horizon = now

    def _sync_counts(self, now: float) -> bool:
        """Apply every expiry up to ``now``; False when time ran backwards
        (the caller then falls back to an exact scan)."""
        if not self._counting:
            self._build_counts(now)
            return True
        if now < self._count_horizon:
            return False
        self._count_horizon = now
        heap = self._expiry_heap
        counted = self._counted
        while heap and heap[0][0] <= now:
            _, token, key = heapq.heappop(heap)
            info = counted.get(key)
            if info is not None and info[0] == token:
                del counted[key]
                self._live_entries -= 1
                self._live_records -= info[1]
                if key & _TYPE_MASK == _NS_CODE:
                    self._live_zones -= 1
        return True

    def _end_taint(self, key: int, end: float, cured: bool) -> None:
        """Close a tainted entry's dwell interval (if one is open)."""
        info = self._tainted.pop(key, None)
        if info is None:
            return
        self.poison_dwells.append(max(0.0, end - info[0]))
        if cured:
            self.poison_cured += 1

    def _make_room(self, now: float) -> None:
        """Evict until there is space for one more entry."""
        if self.max_entries is None or len(self._entries) < self.max_entries:
            return
        # Pass 1: drop expired tombstones (cheapest loss).
        doomed = [
            key for key, entry in self._entries.items()
            if not entry.is_live(now)
        ]
        obs = self._obs
        for key in doomed:
            if len(self._entries) < self.max_entries:
                break
            entry = self._entries.pop(key)
            self._count_out(key)
            if self._tainted:
                self._end_taint(key, min(now, entry.expires_at), cured=False)
            self.evictions += 1
            if obs is not None:
                name, rrtype = split_key(key)
                obs.emit(EventKind.CACHE_EVICTED, now,
                         name=str(name), rrtype=rrtype.name, live=False)
        # Pass 2: evict live entries, LRU first.  Under ``protect_irrs``
        # (budget-aware admission, the flash-crowd defense) live NS sets
        # are spared while any non-IRR entry remains: a request surge
        # then churns host records instead of the infrastructure records
        # the paper's schemes exist to preserve.
        while len(self._entries) >= self.max_entries:
            oldest_key = next(iter(self._entries))
            if self.protect_irrs and oldest_key & _TYPE_MASK == _NS_CODE:
                oldest_key = next(
                    (key for key in self._entries
                     if key & _TYPE_MASK != _NS_CODE),
                    oldest_key,
                )
            del self._entries[oldest_key]
            self._count_out(oldest_key)
            if self._tainted:
                self._end_taint(oldest_key, now, cured=False)
            self.evictions += 1
            if obs is not None:
                name, rrtype = split_key(oldest_key)
                obs.emit(EventKind.CACHE_EVICTED, now,
                         name=str(name), rrtype=rrtype.name, live=True)

    # -- positive entries ---------------------------------------------------

    def put(
        self,
        rrset: RRset,
        rank: Rank,
        now: float,
        refresh: bool = False,
        taint: bool = False,
    ) -> PutResult:
        """Offer an RRset to the cache under RFC 2181 ranking.

        Args:
            rrset: the data as heard (TTL = published TTL).
            rank: trust of the section it was heard in.
            now: virtual time.
            refresh: allow a same-rank same-rdata copy to restart the TTL
                (the paper's refresh scheme; only IRR puts pass True).
            taint: simulator ground truth — the data came from a forged
                response.  Ranking treats it identically (the resolver
                cannot know); the cache only *accounts* it, for
                poison-dwell measurement.
        """
        key = rrset._ikey
        existing = self._entries.get(key)
        if (
            existing is not None
            and existing.rrset is rrset
            and rank == existing.rank
            and existing.expires_at > now
        ):
            # Identity fast paths: zone responses are cached and
            # re-served, so the vast majority of puts re-offer the *same
            # object* at the same rank against a live entry.  same_data
            # is trivially true and equal rank always may_replace, which
            # pins down both slow-path outcomes exactly:
            if not refresh:
                # ...without refresh it is a no-op returning the same
                # not-stored result every time (memoized on the entry).
                result = existing.noop_result
                if result is None:
                    result = PutResult(False, False, False,
                                       existing.expires_at,
                                       existing.published_ttl,
                                       existing.expires_at)
                    existing.noop_result = result
                return result
            # ...with refresh the slow path would rebuild an identical
            # entry with a restarted countdown (published_ttl is
            # unchanged: it came from this very rrset object).  Restart
            # it in place instead of allocating.
            ttl = rrset.ttl
            cap = self.max_effective_ttl
            if cap is not None and ttl > cap:
                ttl = cap
            previous_expiry = existing.expires_at
            new_expiry = now + ttl
            if self.max_entries is not None:
                # Keep the pop-then-set MRU rule of the slow path.
                del self._entries[key]
                self._entries[key] = existing
            existing.stored_at = now
            existing.expires_at = new_expiry
            existing.noop_result = None
            if self._counting:
                self._count_in(key, existing, now)
            return PutResult(True, True, False, previous_expiry,
                             existing.published_ttl, new_expiry)
        ttl = rrset.ttl
        if self.max_effective_ttl is not None:
            ttl = min(ttl, self.max_effective_ttl)
        new_expiry = now + ttl

        if existing is None or not existing.is_live(now):
            replaced_expired = existing is not None
            if existing is None:
                self._make_room(now)
            elif self.max_entries is not None:
                # Pop-then-set so the overwrite lands at the MRU end of
                # the insertion-ordered dict; a plain `[key] =` keeps the
                # stale position and `_make_room` would evict the entry
                # we just rewrote before genuinely colder ones.
                del self._entries[key]
            entry = CacheEntry(
                rrset=rrset,
                rank=rank,
                stored_at=now,
                expires_at=new_expiry,
                published_ttl=rrset.ttl,
            )
            self._entries[key] = entry
            if taint or self._tainted:
                if existing is not None:
                    # A tainted tombstone's dwell ended at its expiry.
                    self._end_taint(key, existing.expires_at, cured=False)
                if taint:
                    entry.tainted = True
                    self._tainted[key] = (now, rank, None)
                    self.poison_stored += 1
            if self._counting:
                self._count_in(key, entry, now)
            return PutResult(
                stored=True,
                refreshed=False,
                replaced_expired=replaced_expired,
                previous_expiry=existing.expires_at if existing else None,
                previous_published_ttl=(
                    existing.published_ttl if existing else None
                ),
                expires_at=new_expiry,
            )

        if not rank.may_replace(existing.rank):
            return PutResult(False, False, False, existing.expires_at,
                             existing.published_ttl, existing.expires_at)

        same_data = existing.rrset.same_data(rrset)
        if self.harden_ranking and not same_data and rank == existing.rank:
            # Hardened ingestion (DESIGN.md §16): different rdata at
            # merely equal rank cannot displace a live entry, so an
            # off-path forgery cannot overwrite a cached answer before
            # it expires.  Applies to every put — the resolver cannot
            # know which responses are forged.
            return PutResult(False, False, False, existing.expires_at,
                             existing.published_ttl, existing.expires_at)
        if same_data and rank == existing.rank and not refresh:
            # Vanilla behaviour: an identical copy does NOT restart the
            # countdown.  This branch *is* the difference the paper's
            # refresh scheme removes.
            return PutResult(False, False, False, existing.expires_at,
                             existing.published_ttl, existing.expires_at)

        previous_expiry = existing.expires_at
        previous_ttl = existing.published_ttl
        if self.max_entries is not None:
            # Same pop-then-set recency rule for replace/refresh stores.
            del self._entries[key]
        entry = CacheEntry(
            rrset=rrset,
            rank=rank,
            stored_at=now,
            expires_at=new_expiry,
            published_ttl=rrset.ttl,
        )
        self._entries[key] = entry
        if taint or self._tainted:
            # Only a *different-data* overwrite of live untainted data
            # counts as displacement (a same-data forgery changes what a
            # client would see not at all).
            displaced = (
                None if existing.tainted or same_data else existing.rank
            )
            # Overwriting a live tainted entry ends its dwell; an
            # untainted overwrite is the cure.
            self._end_taint(key, now, cured=not taint)
            if taint:
                entry.tainted = True
                self._tainted[key] = (now, rank, displaced)
                self.poison_stored += 1
        if self._counting:
            self._count_in(key, entry, now)
        return PutResult(
            stored=True,
            refreshed=same_data,
            replaced_expired=False,
            previous_expiry=previous_expiry,
            previous_published_ttl=previous_ttl,
            expires_at=new_expiry,
        )

    def get(self, name: Name, rrtype: RRType, now: float) -> RRset | None:
        """The live RRset for (name, type), or None."""
        key = (name.iid << RRTYPE_BITS) | rrtype
        entry = self._entries.get(key)
        # `entry.is_live(now)` inlined: this is the hottest call in a
        # replay and the method dispatch is measurable.
        if entry is None or entry.expires_at <= now:
            return None
        if self.max_entries is not None:
            self._touch(key)
        return entry.rrset

    def _observed_get(self, name: Name, rrtype: RRType, now: float) -> RRset | None:
        """``get`` with event emission; bound in by :meth:`attach_observer`."""
        key = (name.iid << RRTYPE_BITS) | rrtype
        entry = self._entries.get(key)
        obs = self._obs
        if entry is None:
            if obs is not None:
                obs.emit(EventKind.CACHE_MISS, now,
                         name=str(name), rrtype=rrtype.name)
            return None
        if entry.expires_at <= now:
            if obs is not None:
                obs.emit(EventKind.CACHE_EXPIRED, now,
                         name=str(name), rrtype=rrtype.name,
                         expired_at=entry.expires_at)
            return None
        if obs is not None:
            obs.emit(EventKind.CACHE_HIT, now,
                     name=str(name), rrtype=rrtype.name,
                     remaining=entry.expires_at - now)
        if self.max_entries is not None:
            self._touch(key)
        return entry.rrset

    def get_stale(
        self,
        name: Name,
        rrtype: RRType,
        now: float,
        max_stale: float | None = None,
    ) -> RRset | None:
        """The RRset even if expired (serve-stale comparator); None if unknown.

        ``max_stale`` bounds how long past expiry an entry may still be
        served: entries that lapsed more than ``max_stale`` seconds before
        ``now`` are treated as unknown.  None (the default) serves
        arbitrarily stale data, the unbounded comparator from related
        work.
        """
        entry = self._entries.get(cache_key(name, rrtype))
        if entry is None:
            return None
        if max_stale is not None and now - entry.expires_at > max_stale:
            return None
        return entry.rrset

    def entry(self, name: Name, rrtype: RRType) -> CacheEntry | None:
        """Raw entry access (live or lapsed) for instrumentation."""
        return self._entries.get(cache_key(name, rrtype))

    def expires_at(self, name: Name, rrtype: RRType, now: float) -> float | None:
        """Expiry time of the live entry for (name, type), else None."""
        entry = self._entries.get(cache_key(name, rrtype))
        if entry is None or not entry.is_live(now):
            return None
        return entry.expires_at

    def remove(self, name: Name, rrtype: RRType) -> bool:
        """Drop an entry outright (used by delegation-change handling).

        Clears both the positive entry and any negative entry under the
        same key: after a delegation change the old NXDOMAIN/NODATA
        verdict is just as obsolete as the old data.
        """
        key = cache_key(name, rrtype)
        removed_negative = self._negative.pop(key, None) is not None
        if self._entries.pop(key, None) is None:
            return removed_negative
        self._count_out(key)
        if self._tainted and self._tainted.pop(key, None) is not None:
            # Removal has no timestamp, so no dwell sample — but the
            # poison is gone, which counts as a cure (delegation resets
            # evict the forged copy along with the stale IRRs).
            self.poison_cured += 1
        return True

    # -- negative entries ------------------------------------------------------

    def put_negative(self, name: Name, rrtype: RRType, now: float, ttl: float) -> None:
        """Cache an NXDOMAIN / NODATA outcome for ``ttl`` seconds."""
        self._negative[(name.iid << RRTYPE_BITS) | rrtype] = now + ttl

    def get_negative(self, name: Name, rrtype: RRType, now: float) -> bool:
        """Whether a live negative entry covers (name, type)."""
        expiry = self._negative.get((name.iid << RRTYPE_BITS) | rrtype)
        return expiry is not None and now < expiry

    # -- zone-oriented views -----------------------------------------------------

    def zone_ns_expiry(self, zone: Name, now: float) -> float | None:
        """When ``zone``'s cached NS set expires (None if absent/lapsed)."""
        return self.expires_at(zone, RRType.NS, now)

    def best_zone_for(
        self,
        qname: Name,
        now: float,
        exclude: frozenset[Name] | set[Name] = frozenset(),
        allow_stale: bool = False,
    ) -> Name | None:
        """The deepest ancestor zone of ``qname`` with usable cached NS.

        Returns None when nothing below the root is cached (the caller
        falls back to root hints).  ``allow_stale`` admits lapsed NS sets,
        for the serve-stale comparator.
        """
        entries = self._entries
        for ancestor, ns_key in qname.ns_chain():
            if ancestor in exclude:
                continue
            entry = entries.get(ns_key)
            if entry is None:
                continue
            if entry.expires_at > now or allow_stale:
                return ancestor
        return None

    def get_chain(
        self, keys: "tuple[int, ...] | list[int]", now: float
    ) -> list[RRset | None]:
        """Batch-resolve a whole ancestor path of packed keys in one call.

        One position per key: the live RRset, or None when absent or
        lapsed.  Replaces N separate ``get`` calls on referral-chain
        walks — one method dispatch, one clock comparison stream, and no
        per-key tuple construction.  Like ``best_zone_for`` (which is
        built on the same probe), this is a read-only scan: it neither
        touches LRU recency nor emits observer events.
        """
        entries = self._entries
        out: list[RRset | None] = []
        append = out.append
        for key in keys:
            entry = entries.get(key)
            if entry is not None and entry.expires_at > now:
                append(entry.rrset)
            else:
                append(None)
        return out

    # -- occupancy -----------------------------------------------------------------

    def live_entry_count(self, now: float) -> int:
        """Number of live RRset entries (O(expired) amortised, not O(n))."""
        if self._sync_counts(now):
            return self._live_entries
        return sum(1 for entry in self._entries.values() if entry.is_live(now))

    def live_record_count(self, now: float) -> int:
        """Number of live individual records (Figure 12's currency)."""
        if self._sync_counts(now):
            return self._live_records
        return sum(
            len(entry.rrset)
            for entry in self._entries.values()
            if entry.is_live(now)
        )

    def live_zone_count(self, now: float) -> int:
        """Zones whose NS set is currently live (Figure 12's zone series)."""
        if self._sync_counts(now):
            return self._live_zones
        return sum(
            1
            for key, entry in self._entries.items()
            if key & _TYPE_MASK == _NS_CODE and entry.is_live(now)
        )

    def poison_stats(self, now: float) -> tuple[int, int, list[float]]:
        """``(stored, cured, dwell samples)`` for poison accounting.

        Dwell samples include a provisional interval for every entry
        still tainted at ``now`` (clipped at the entry's expiry), so the
        statistics are complete at any observation point.  Non-mutating.
        """
        dwells = list(self.poison_dwells)
        for key, (taint_time, _rank, _displaced) in self._tainted.items():
            entry = self._entries.get(key)
            end = now if entry is None else min(now, entry.expires_at)
            dwells.append(max(0.0, end - taint_time))
        return self.poison_stored, self.poison_cured, dwells

    def tainted_entries(self) -> "dict[int, tuple[float, Rank, Rank | None]]":
        """The open taint registry (validation / diagnostics view)."""
        return dict(self._tainted)

    def total_entry_count(self) -> int:
        """All entries including tombstones and negative entries
        (memory-footprint accounting)."""
        return len(self._entries) + len(self._negative)

    def purge_expired(self, now: float, older_than: float = 0.0) -> int:
        """Drop tombstones that lapsed more than ``older_than`` seconds ago.

        The simulator keeps tombstones for gap measurement; long runs may
        call this periodically to bound memory.  Lapsed negative entries
        are purged under the same rule — they are useless once expired
        and would otherwise accumulate forever.  Returns entries removed
        (positive + negative).
        """
        doomed = [
            key
            for key, entry in self._entries.items()
            if entry.expires_at + older_than <= now
        ]
        for key in doomed:
            entry = self._entries.pop(key)
            self._count_out(key)
            if self._tainted:
                self._end_taint(key, min(now, entry.expires_at), cured=False)
        doomed_negative = [
            key
            for key, expiry in self._negative.items()
            if expiry + older_than <= now
        ]
        for key in doomed_negative:
            del self._negative[key]
        return len(doomed) + len(doomed_negative)
