"""The caching server's RFC 2181-ranked TTL cache.

Semantics that matter for the paper:

* **Ranking** — data learned from a more trusted section may replace less
  trusted data (child-side IRRs replace parent-side referral copies);
  lower-ranked data never downgrades the cache.
* **The refresh switch** — when an equally-ranked copy with identical
  rdata arrives, a vanilla cache keeps the old countdown; with
  ``refresh=True`` the TTL restarts.  That single branch is the paper's
  "TTL refresh" scheme.
* **Expired entries are kept** (tombstones) so the simulator can measure
  Figure 3's expiry-to-next-use gaps and implement the serve-stale
  comparator; they are invisible to normal lookups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.name import Name
from repro.dns.ranking import Rank
from repro.dns.records import RRset
from repro.dns.rrtypes import RRType


@dataclass(slots=True)
class CacheEntry:
    """One cached RRset with its countdown and provenance."""

    rrset: RRset
    rank: Rank
    stored_at: float
    expires_at: float
    published_ttl: float
    """The TTL the authority published (pre-cap), for gap normalisation."""

    def is_live(self, now: float) -> bool:
        return now < self.expires_at

    def remaining(self, now: float) -> float:
        return max(0.0, self.expires_at - now)


@dataclass(frozen=True, slots=True)
class PutResult:
    """What a ``put`` did, so callers can react (gap tracking, timers)."""

    stored: bool
    """Whether the cache now holds the offered data (stored or refreshed)."""

    refreshed: bool
    """True when an existing live entry's TTL was restarted."""

    replaced_expired: bool
    """True when the put overwrote an entry that had already lapsed."""

    previous_expiry: float | None
    """Expiry of the overwritten entry (live or lapsed), if any."""

    previous_published_ttl: float | None
    """Published TTL of the overwritten entry, if any."""

    expires_at: float | None
    """The (possibly unchanged) expiry now in effect for the key."""


_NOT_STORED = PutResult(False, False, False, None, None, None)


class DnsCache:
    """TTL cache keyed by (owner name, rrtype).

    ``max_entries`` bounds capacity: when full, the least-recently-used
    *live* entry is evicted (expired tombstones go first).  None means
    unbounded, the paper's assumption — its §5.2.2 argues the absolute
    footprint is small enough that production caches never fill.
    """

    def __init__(
        self,
        max_effective_ttl: float | None = None,
        max_entries: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        # dict preserves insertion order; `_touch` re-inserts on use so
        # iteration order is LRU-first.
        self._entries: dict[tuple[Name, RRType], CacheEntry] = {}
        self._negative: dict[tuple[Name, RRType], float] = {}
        self.max_effective_ttl = max_effective_ttl
        self.max_entries = max_entries
        self.evictions = 0

    def _touch(self, key: tuple[Name, RRType]) -> None:
        entry = self._entries.pop(key)
        self._entries[key] = entry

    def _make_room(self, now: float) -> None:
        """Evict until there is space for one more entry."""
        if self.max_entries is None or len(self._entries) < self.max_entries:
            return
        # Pass 1: drop expired tombstones (cheapest loss).
        doomed = [
            key for key, entry in self._entries.items()
            if not entry.is_live(now)
        ]
        for key in doomed:
            if len(self._entries) < self.max_entries:
                break
            del self._entries[key]
            self.evictions += 1
        # Pass 2: evict live entries, LRU first.
        while len(self._entries) >= self.max_entries:
            oldest_key = next(iter(self._entries))
            del self._entries[oldest_key]
            self.evictions += 1

    # -- positive entries ---------------------------------------------------

    def put(
        self, rrset: RRset, rank: Rank, now: float, refresh: bool = False
    ) -> PutResult:
        """Offer an RRset to the cache under RFC 2181 ranking.

        Args:
            rrset: the data as heard (TTL = published TTL).
            rank: trust of the section it was heard in.
            now: virtual time.
            refresh: allow a same-rank same-rdata copy to restart the TTL
                (the paper's refresh scheme; only IRR puts pass True).
        """
        key = rrset.key()
        ttl = rrset.ttl
        if self.max_effective_ttl is not None:
            ttl = min(ttl, self.max_effective_ttl)
        new_expiry = now + ttl
        existing = self._entries.get(key)

        if existing is None or not existing.is_live(now):
            replaced_expired = existing is not None
            if existing is None:
                self._make_room(now)
            self._entries[key] = CacheEntry(
                rrset=rrset,
                rank=rank,
                stored_at=now,
                expires_at=new_expiry,
                published_ttl=rrset.ttl,
            )
            return PutResult(
                stored=True,
                refreshed=False,
                replaced_expired=replaced_expired,
                previous_expiry=existing.expires_at if existing else None,
                previous_published_ttl=(
                    existing.published_ttl if existing else None
                ),
                expires_at=new_expiry,
            )

        if not rank.may_replace(existing.rank):
            return PutResult(False, False, False, existing.expires_at,
                             existing.published_ttl, existing.expires_at)

        same_data = existing.rrset.same_data(rrset)
        if same_data and rank == existing.rank and not refresh:
            # Vanilla behaviour: an identical copy does NOT restart the
            # countdown.  This branch *is* the difference the paper's
            # refresh scheme removes.
            return PutResult(False, False, False, existing.expires_at,
                             existing.published_ttl, existing.expires_at)

        previous_expiry = existing.expires_at
        previous_ttl = existing.published_ttl
        self._entries[key] = CacheEntry(
            rrset=rrset,
            rank=rank,
            stored_at=now,
            expires_at=new_expiry,
            published_ttl=rrset.ttl,
        )
        return PutResult(
            stored=True,
            refreshed=same_data,
            replaced_expired=False,
            previous_expiry=previous_expiry,
            previous_published_ttl=previous_ttl,
            expires_at=new_expiry,
        )

    def get(self, name: Name, rrtype: RRType, now: float) -> RRset | None:
        """The live RRset for (name, type), or None."""
        key = (name, rrtype)
        entry = self._entries.get(key)
        if entry is None or not entry.is_live(now):
            return None
        if self.max_entries is not None:
            self._touch(key)
        return entry.rrset

    def get_stale(self, name: Name, rrtype: RRType, now: float) -> RRset | None:
        """The RRset even if expired (serve-stale comparator); None if unknown."""
        entry = self._entries.get((name, rrtype))
        if entry is None:
            return None
        return entry.rrset

    def entry(self, name: Name, rrtype: RRType) -> CacheEntry | None:
        """Raw entry access (live or lapsed) for instrumentation."""
        return self._entries.get((name, rrtype))

    def expires_at(self, name: Name, rrtype: RRType, now: float) -> float | None:
        """Expiry time of the live entry for (name, type), else None."""
        entry = self._entries.get((name, rrtype))
        if entry is None or not entry.is_live(now):
            return None
        return entry.expires_at

    def remove(self, name: Name, rrtype: RRType) -> bool:
        """Drop an entry outright (used by delegation-change handling)."""
        return self._entries.pop((name, rrtype), None) is not None

    # -- negative entries ------------------------------------------------------

    def put_negative(self, name: Name, rrtype: RRType, now: float, ttl: float) -> None:
        """Cache an NXDOMAIN / NODATA outcome for ``ttl`` seconds."""
        self._negative[(name, rrtype)] = now + ttl

    def get_negative(self, name: Name, rrtype: RRType, now: float) -> bool:
        """Whether a live negative entry covers (name, type)."""
        expiry = self._negative.get((name, rrtype))
        return expiry is not None and now < expiry

    # -- zone-oriented views -----------------------------------------------------

    def zone_ns_expiry(self, zone: Name, now: float) -> float | None:
        """When ``zone``'s cached NS set expires (None if absent/lapsed)."""
        return self.expires_at(zone, RRType.NS, now)

    def best_zone_for(
        self,
        qname: Name,
        now: float,
        exclude: frozenset[Name] | set[Name] = frozenset(),
        allow_stale: bool = False,
    ) -> Name | None:
        """The deepest ancestor zone of ``qname`` with usable cached NS.

        Returns None when nothing below the root is cached (the caller
        falls back to root hints).  ``allow_stale`` admits lapsed NS sets,
        for the serve-stale comparator.
        """
        for ancestor in qname.ancestors():
            if ancestor.is_root:
                return None
            if ancestor in exclude:
                continue
            entry = self._entries.get((ancestor, RRType.NS))
            if entry is None:
                continue
            if entry.is_live(now) or allow_stale:
                return ancestor
        return None

    # -- occupancy -----------------------------------------------------------------

    def live_entry_count(self, now: float) -> int:
        """Number of live RRset entries."""
        return sum(1 for entry in self._entries.values() if entry.is_live(now))

    def live_record_count(self, now: float) -> int:
        """Number of live individual records (Figure 12's currency)."""
        return sum(
            len(entry.rrset)
            for entry in self._entries.values()
            if entry.is_live(now)
        )

    def live_zone_count(self, now: float) -> int:
        """Zones whose NS set is currently live (Figure 12's zone series)."""
        return sum(
            1
            for (name, rrtype), entry in self._entries.items()
            if rrtype == RRType.NS and entry.is_live(now)
        )

    def total_entry_count(self) -> int:
        """All entries including tombstones (memory-footprint accounting)."""
        return len(self._entries)

    def purge_expired(self, now: float, older_than: float = 0.0) -> int:
        """Drop tombstones that lapsed more than ``older_than`` seconds ago.

        The simulator keeps tombstones for gap measurement; long runs may
        call this periodically to bound memory.  Returns entries removed.
        """
        doomed = [
            key
            for key, entry in self._entries.items()
            if entry.expires_at + older_than <= now
        ]
        for key in doomed:
            del self._entries[key]
        return len(doomed)
