"""The caching server (CS): a full iterative resolver with the paper's
resilience schemes wired in.

One :class:`CachingServer` models the recursive resolver of an
organisation.  It is primed with the root zone's IRRs ("every CS is
hard-coded with the IRRs of the root zone"), resolves stub queries by
walking the delegation tree from the deepest cached zone, and — depending
on its :class:`~repro.core.config.ResilienceConfig` — refreshes IRR TTLs
from every authoritative response, renews expiring IRRs with credit
policies, and/or serves stale data when authorities are unreachable.

Metric conventions (matching the paper's evaluation):

* every stub query is recorded once, failed or not (Figures 4–11, upper
  graphs);
* every CS→AN query attempt is recorded, failed (blocked / lame) or
  answered (lower graphs; Table 1 "requests out"; Table 2 messages);
* renewal refetches are tagged separately so failure rates stay
  demand-driven while message overhead counts everything.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.budget import FetchBudget
from repro.core.cache import DnsCache
from repro.core.clock import Clock, as_clock
from repro.core.config import ResilienceConfig
from repro.core.renewal import RenewalManager
from repro.core.transport import Upstream
from repro.dns.errors import InvariantError
from repro.dns.message import Message, Question
from repro.dns.name import Name, root_name
from repro.dns.ranking import Rank
from repro.dns.records import InfrastructureRecordSet, RRset
from repro.dns.rrtypes import RRTYPE_BITS, RRType
from repro.obs.events import EventBus, EventKind
from repro.simulation.metrics import ReplayMetrics

if TYPE_CHECKING:
    from repro.simulation.engine import SimulationEngine

GapObserver = Callable[[Name, float, float], None]
"""Called as ``observer(zone, gap_seconds, published_ttl)`` when a zone's
IRRs are re-learned after having lapsed (Figure 3's measurement)."""


class ResolutionOutcome(enum.Enum):
    """How a stub query ended."""

    CACHE_HIT = "cache-hit"
    ANSWERED = "answered"
    NXDOMAIN = "nxdomain"
    NODATA = "nodata"
    STALE_HIT = "stale-hit"
    FAILURE = "failure"
    VALIDATION_FAILURE = "validation-failure"
    """The data was obtained but the DNSSEC chain could not be
    established (a SERVFAIL to the stub — counts as a failed lookup)."""

    @property
    def failed(self) -> bool:
        return self in (
            ResolutionOutcome.FAILURE,
            ResolutionOutcome.VALIDATION_FAILURE,
        )


@dataclass(frozen=True, slots=True)
class Resolution:
    """A stub query's result: outcome plus the answer set, if any."""

    outcome: ResolutionOutcome
    answer: RRset | None = None

    @property
    def failed(self) -> bool:
        return self.outcome.failed


# Internal fetch verdicts (subset of outcomes).
_ANSWERED = ResolutionOutcome.ANSWERED
_NXDOMAIN = ResolutionOutcome.NXDOMAIN
_NODATA = ResolutionOutcome.NODATA
_FAILURE = ResolutionOutcome.FAILURE


class CachingServer:
    """An iterative caching resolver with optional resilience schemes."""

    def __init__(
        self,
        root_hints: InfrastructureRecordSet,
        network: Upstream,
        clock: "Clock | SimulationEngine",
        config: ResilienceConfig | None = None,
        metrics: ReplayMetrics | None = None,
        gap_observer: GapObserver | None = None,
        max_servers_per_zone: int = 3,
        seed: int = 0,
        observer: EventBus | None = None,
        validation: bool = False,
    ) -> None:
        self.config = config or ResilienceConfig.vanilla()
        # The transport and the clock are both protocols (DESIGN §15):
        # replays pass the simulated Network and a SimulationEngine
        # (normalised to a VirtualClock); `repro serve` passes a real
        # UDP upstream and a WallClock.  The resolution logic below is
        # identical under either pair.
        self.network = network
        self.clock = as_clock(clock)
        self.metrics = metrics or ReplayMetrics()
        if validation:
            # Shadow every cache operation with the naive oracle model
            # (DESIGN.md §12).  Imported lazily: the validation package
            # depends on this module's sibling `cache`, and an unshadowed
            # server must not pay the import.
            from repro.validation.differential import DifferentialCache

            self.cache: DnsCache = DifferentialCache(
                max_effective_ttl=self.config.max_effective_ttl,
                max_entries=self.config.cache_capacity,
                harden_ranking=self.config.harden_ranking,
                protect_irrs=self.config.protect_irrs,
            )
        else:
            self.cache = DnsCache(
                max_effective_ttl=self.config.max_effective_ttl,
                max_entries=self.config.cache_capacity,
                harden_ranking=self.config.harden_ranking,
                protect_irrs=self.config.protect_irrs,
            )
        self.observer = observer
        if observer is not None:
            self.cache.attach_observer(observer)
        self.gap_observer = gap_observer
        self.max_servers_per_zone = max_servers_per_zone
        self._rng = random.Random(seed)

        self._root = root_name()
        self._hints = root_hints
        self._hint_addresses: dict[Name, str] = {}
        for server_name in root_hints.server_names():
            glue = root_hints.glue_for(server_name)
            if glue is None:
                raise ValueError(f"root hint {server_name} lacks glue")
            self._hint_addresses[server_name] = str(glue.records[0].data)

        # Owner names known to be authoritative-server hostnames; their
        # address RRsets count as IRRs for the refresh rule.
        self._known_server_names: set[Name] = set(self._hint_addresses)

        # Zones observed to publish DNSSEC IRRs (drives validation).
        # The root's keys come from the hints and act as trust anchors.
        self._signed_zones: set[Name] = set()
        self._root_signed = root_hints.is_signed

        self.renewal: RenewalManager | None = None
        policy = self.config.make_renewal_policy()
        if policy is not None:
            self.renewal = RenewalManager(
                policy=policy,
                clock=self.clock,
                cache=self.cache,
                refetch=self._renewal_refetch,
                jitter_fraction=self.config.renewal_jitter,
                rng=random.Random(seed + 0x5EED),
                observer=observer,
            )

        # Zone -> last time its IRRs were learned through its parent
        # (drives the optional delegation-recheck of paper §6).
        self._last_parent_learn: dict[Name, float] = {}

        # Packed (name, rrtype) keys with a background refetch already
        # queued — the SWR singleflight: concurrent stale hits collapse
        # onto one upstream fetch (the simulated analogue of the serve
        # front end's `_inflight` futures).
        self._refetch_pending: set[int] = set()

        # Work-limit defenses (None/0 keeps the pre-defense paths
        # byte-identical).  The fetch budget caps NS-address
        # sub-resolutions per top-level query; the NXNS cap bounds them
        # per referral step (see `_address_for`).
        self._fetch_budget: FetchBudget | None = (
            FetchBudget(self.config.fetch_budget)
            if self.config.fetch_budget is not None
            else None
        )
        self._nxns_spent = 0

        # Server-selection state: smoothed RTT per address, hold-down
        # deadlines for unresponsive servers, and (under a RetryPolicy)
        # the consecutive-failure counts driving the hold-down.  All
        # three are keyed by a dense per-server int id (`_addr_ids`)
        # rather than the address string — these maps are probed for
        # every candidate server of every referral step.
        self._addr_ids: dict[str, int] = {}
        self._srtt: dict[int, float] = {}
        self._held_down: dict[int, float] = {}
        self._consecutive_failures: dict[int, int] = {}

        # zone.iid -> (NS rrset, its server-name tuple): memoises the
        # per-query rebuild of the names tuple in `_zone_ns`; invalidated
        # by identity whenever the cached NS rrset object changes.
        self._ns_names: dict[int, tuple[RRset, tuple[Name, ...]]] = {}
        # The root's server set never changes during a replay.
        self._root_ns_info = (root_hints.server_names(), root_hints.ns.ttl)

        # Question objects are immutable and recur per (name, rrtype);
        # reusing them keeps their memoized wire size warm.
        self._questions: dict[int, Question] = {}

        # Demand contacts per zone (answered queries to its servers) —
        # the λ the analytical availability model consumes.
        self.zone_contact_counts: dict[Name, int] = {}

        # Diagnosis: how often each zone's entire server set failed us
        # (the zones an attack post-mortem would blame).
        self.failure_blame: dict[Name, int] = {}

    # ------------------------------------------------------------------
    # Stub-facing API
    # ------------------------------------------------------------------

    def _question_for(self, qname: Name, rrtype: RRType) -> Question:
        """The memoized Question for (qname, rrtype).

        Questions are frozen and recur for the whole replay; reusing one
        object per key keeps its memoized wire size warm and avoids the
        per-query allocation.
        """
        key = (qname.iid << RRTYPE_BITS) | rrtype
        question = self._questions.get(key)
        if question is None:
            question = Question(qname, rrtype)
            self._questions[key] = question
        return question

    def handle_stub_query(
        self, qname: Name, rrtype: RRType, now: float
    ) -> Resolution:
        """Resolve one stub-resolver query, recording SR metrics."""
        obs = self.observer
        if obs is not None:
            obs.emit(EventKind.STUB_QUERY, now,
                     name=str(qname), rrtype=rrtype.name)
        if self._fetch_budget is not None:
            self._fetch_budget.reset()
        question = self._question_for(qname, rrtype)
        resolution = self.resolve(question, now)
        if (
            self.config.dnssec_validation
            and not resolution.failed
            and resolution.outcome is not ResolutionOutcome.NXDOMAIN
            and not self._chain_keys_available(qname, now)
        ):
            resolution = Resolution(ResolutionOutcome.VALIDATION_FAILURE)
        self.metrics.record_sr_query(
            now,
            failed=resolution.failed,
            cache_hit=resolution.outcome is ResolutionOutcome.CACHE_HIT,
            nxdomain=resolution.outcome is ResolutionOutcome.NXDOMAIN,
            validation_failed=(
                resolution.outcome is ResolutionOutcome.VALIDATION_FAILURE
            ),
            stale=resolution.outcome is ResolutionOutcome.STALE_HIT,
        )
        if obs is not None:
            obs.emit(EventKind.STUB_OUTCOME, now,
                     name=str(qname), rrtype=rrtype.name,
                     outcome=resolution.outcome.value,
                     failed=resolution.failed)
        return resolution

    def handle_attack_query(
        self, qname: Name, rrtype: RRType, now: float
    ) -> Resolution:
        """Resolve one adversary-injected query (the NXNS attack stream).

        Mirrors :meth:`handle_stub_query` but books the work under the
        attack counters instead of the SR statistics: availability
        figures stay legitimate-traffic-only, and the CS-side queries
        each attack query provoked (the amplification) are attributed by
        differencing the demand counter around the resolution.
        """
        metrics = self.metrics
        if self._fetch_budget is not None:
            self._fetch_budget.reset()
        before = metrics.cs_demand_queries
        question = self._question_for(qname, rrtype)
        resolution = self.resolve(question, now)
        provoked = metrics.cs_demand_queries - before
        metrics.attack_stub_queries += 1
        metrics.attack_cs_queries += provoked
        if resolution.failed:
            metrics.attack_failures += 1
        if self.observer is not None:
            self.observer.emit(EventKind.ATTACK_NXNS, now,
                               qname=str(qname), cs_queries=provoked)
        return resolution

    def resolve(
        self,
        question: Question,
        now: float,
        depth: int = 0,
        stack: frozenset[Name] = frozenset(),
    ) -> Resolution:
        """Resolve ``question``, using the cache and the network.

        Does not record SR metrics (so NS-address sub-resolutions don't
        pollute end-user statistics); ``handle_stub_query`` does.
        """
        qname = question.name
        fetched = False
        for _ in range(self.config.max_cname_chain):
            cached = self.cache.get(qname, question.rrtype, now)
            if cached is not None:
                outcome = (
                    ResolutionOutcome.ANSWERED
                    if fetched
                    else ResolutionOutcome.CACHE_HIT
                )
                return Resolution(outcome, cached)
            if self.cache.get_negative(qname, question.rrtype, now):
                return Resolution(ResolutionOutcome.NXDOMAIN)
            if question.rrtype != RRType.CNAME:
                cname = self.cache.get(qname, RRType.CNAME, now)
                if cname is not None:
                    target = cname.records[0].data
                    if not isinstance(target, Name):
                        raise InvariantError(
                            f"cached CNAME rdata {target!r} is not a name"
                        )
                    qname = target
                    continue

            grace = self.config.swr_grace
            if grace is not None and not fetched:
                stale = self.cache.get_stale(
                    qname, question.rrtype, now, max_stale=grace
                )
                if stale is not None:
                    # Stale-while-revalidate: answer from the lapsed
                    # entry now, refresh it off the critical path.
                    if self._schedule_refetch(qname, question.rrtype, now):
                        self.metrics.swr_refreshes += 1
                        if self.observer is not None:
                            self.observer.emit(
                                EventKind.CACHE_SWR_REFRESH, now,
                                qname=str(qname),
                                rrtype=question.rrtype.name,
                            )
                    return Resolution(ResolutionOutcome.STALE_HIT, stale)

            fetch_question = (
                question if qname is question.name
                else self._question_for(qname, question.rrtype)
            )
            verdict = self._fetch(fetch_question, now, depth, stack)
            if verdict is _FAILURE and self.config.serve_stale:
                verdict = self._fetch(
                    fetch_question, now, depth, stack, stale=True
                )
                if verdict is _FAILURE:
                    stale = self.cache.get_stale(
                        qname, question.rrtype, now,
                        max_stale=self.config.serve_stale_max_age,
                    )
                    if stale is not None:
                        return Resolution(ResolutionOutcome.STALE_HIT, stale)
            if verdict is _FAILURE:
                return Resolution(ResolutionOutcome.FAILURE)
            if verdict is _NXDOMAIN:
                return Resolution(ResolutionOutcome.NXDOMAIN)
            if verdict is _NODATA:
                return Resolution(ResolutionOutcome.NODATA)
            fetched = True
            # ANSWERED: loop re-reads the cache; the answer may have been
            # a CNAME whose tail still needs chasing.
        return Resolution(ResolutionOutcome.FAILURE)

    # ------------------------------------------------------------------
    # Iterative fetch
    # ------------------------------------------------------------------

    def _fetch(
        self,
        question: Question,
        now: float,
        depth: int,
        stack: frozenset[Name],
        stale: bool = False,
        renewal: bool = False,
    ) -> ResolutionOutcome:
        """Walk the delegation tree until an authoritative verdict.

        ``renewal`` tags every query attempt as background traffic (the
        SWR refetch path), keeping demand-side failure and latency
        statistics clean.
        """
        if depth > self.config.max_fetch_depth:
            return _FAILURE
        failed_zones: set[Name] = set()
        visited: set[Name] = set()
        retried_after_failure: set[Name] = set()
        zone = self._starting_zone(question.name, now, failed_zones, stale)
        for _ in range(self.config.max_referrals):
            response = self._query_zone(
                zone, question, now, depth, stack,
                renewal=renewal, stale=stale,
            )
            if response is None:
                # Every usable server of this zone failed.  Paper §4: "in
                # the worst case ... the parent zone must be queried to
                # reset the IRR" — climb and retry from above.
                self.failure_blame[zone] = self.failure_blame.get(zone, 0) + 1
                if self.observer is not None:
                    self.observer.emit(
                        EventKind.FETCH_RETRY, now,
                        zone=str(zone), qname=str(question.name),
                        stale=stale,
                    )
                failed_zones.add(zone)
                if zone == self._root:
                    return _FAILURE
                zone = self._starting_zone(
                    zone.parent(), now, failed_zones, stale
                )
                if zone in failed_zones:
                    return _FAILURE
                continue

            self._ingest(response, now)
            if response.is_name_error():
                self.cache.put_negative(
                    question.name, question.rrtype, now,
                    self._negative_ttl(response),
                )
                return _NXDOMAIN
            if response.answer:
                return _ANSWERED
            if response.is_referral():
                child = response.referral_zone()
                if child is None:
                    raise InvariantError(
                        "referral response carries no child zone"
                    )
                no_progress = (
                    child == zone
                    or child in visited
                    or not question.name.is_subdomain_of(child)
                )
                if no_progress:
                    return _FAILURE
                if child in failed_zones:
                    # The cached (possibly obsolete) IRRs for this child
                    # all failed, but the parent just handed us a fresh
                    # delegation.  Ranking would keep the stale
                    # higher-trust copy, so drop it and take the parent's
                    # data: this "resets the IRR" exactly as §4 says.
                    # One retry per child guards against loops when the
                    # fresh copy is just as dead (e.g. under attack).
                    if child in retried_after_failure:
                        return _FAILURE
                    retried_after_failure.add(child)
                    self._reset_zone_irrs(child, response, now)
                    failed_zones.discard(child)
                visited.add(child)
                zone = child
                continue
            # Authoritative empty answer.
            self.cache.put_negative(
                question.name, question.rrtype, now,
                self._negative_ttl(response),
            )
            return _NODATA
        return _FAILURE

    def _negative_ttl(self, response: Message) -> float:
        """RFC 2308: negative TTL = min(SOA TTL, SOA minimum).

        Falls back to the configured default when the authority carries
        no SOA (legacy zones).
        """
        for rrset in response.authority:
            if rrset.rrtype != RRType.SOA:
                continue
            rdata = str(rrset.records[0].data)
            try:
                minimum = float(rdata.split()[-1])
            except ValueError:
                break
            return min(rrset.ttl, minimum)
        return self.config.negative_ttl

    def _starting_zone(
        self,
        qname: Name,
        now: float,
        exclude: set[Name],
        stale: bool,
    ) -> Name:
        """Deepest usable cached zone for ``qname`` (root as fallback)."""
        recheck = self.config.parent_recheck_interval
        excluded = set(exclude)
        while True:
            best = self.cache.best_zone_for(
                qname, now, exclude=excluded, allow_stale=stale
            )
            if best is None:
                return self._root
            if recheck is not None:
                learned = self._last_parent_learn.get(best)
                if learned is not None and now - learned > recheck:
                    # Deployment safeguard (paper §6): walk through the
                    # parent periodically so reclaimed delegations are
                    # noticed even under refresh/renewal.
                    excluded.add(best)
                    continue
            return best

    def _query_zone(
        self,
        zone: Name,
        question: Question,
        now: float,
        depth: int,
        stack: frozenset[Name],
        renewal: bool = False,
        stale: bool = False,
    ) -> Message | None:
        """Try the zone's servers in (rotated) order; None when all fail."""
        ns_info = self._zone_ns(zone, now, stale)
        if ns_info is None:
            return None
        server_names, published_ttl = ns_info
        if len(server_names) > 1:
            pivot = self._rng.randrange(len(server_names))
            order = server_names[pivot:] + server_names[:pivot]
        else:
            order = server_names
        addr_ids = self._addr_ids
        held_down_until = self._held_down
        candidates: list[tuple[str, int]] = []
        # The NXNS cap is scoped per referral step: each _query_zone
        # visit gets its own sub-resolution allowance.  Save/restore
        # because _address_for can re-enter this method (sub-resolving
        # an out-of-bailiwick server name walks the tree again).
        saved_nxns_spent = self._nxns_spent
        self._nxns_spent = 0
        for server_name in order:
            address = self._address_for(server_name, zone, now, depth, stack, stale)
            if address is None:
                continue
            aid = addr_ids.get(address)
            if aid is None:
                aid = addr_ids[address] = len(addr_ids)
            if held_down_until.get(aid, 0.0) > now:
                continue  # dead-server hold-down: don't even try
            candidates.append((address, aid))
        self._nxns_spent = saved_nxns_spent
        if self.config.prefer_fast_servers and len(candidates) > 1:
            # Untried servers sort first (give them a chance), then by
            # smoothed RTT — BIND-flavoured server selection.
            candidates.sort(
                key=lambda entry: self._srtt.get(entry[1], -1.0)
            )
        obs = self.observer
        retry = self.config.retry_policy
        max_tries = retry.max_tries if retry is not None else 1
        send = self.network.query
        record_exchange = self.metrics.record_exchange
        question_size = question.wire_size()
        for address, aid in candidates[: self.max_servers_per_zone]:
            for attempt in range(max_tries):
                if obs is not None:
                    if attempt == 0:
                        obs.emit(EventKind.QUERY_ISSUED, now,
                                 zone=str(zone), server=address,
                                 qname=str(question.name), renewal=renewal)
                    else:
                        obs.emit(EventKind.QUERY_RETRY, now,
                                 zone=str(zone), server=address,
                                 attempt=attempt, renewal=renewal)
                result = send(address, question, now)
                latency = result.latency
                message = result.message
                if message is None and result.timed_out and retry is not None:
                    # The timeout actually paid follows the retransmit
                    # schedule: try n waits try_timeout * backoff**n.
                    latency = retry.try_cost(self.network.query_timeout, attempt)
                # Renewal refetches run in the background; only demand
                # traffic sits on a lookup's critical path (latency is
                # ignored for renewal inside record_exchange).
                record_exchange(
                    now,
                    failed=message is None,
                    renewal=renewal,
                    bytes_out=question_size,
                    bytes_in=message.wire_size() if message is not None else 0,
                    latency=latency,
                )
                if message is not None:
                    if obs is not None:
                        obs.emit(EventKind.QUERY_ANSWERED, now,
                                 zone=str(zone), server=address,
                                 latency=latency, renewal=renewal)
                    previous = self._srtt.get(aid)
                    self._srtt[aid] = (
                        latency if previous is None
                        else 0.7 * previous + 0.3 * latency
                    )
                    self._held_down.pop(aid, None)
                    self._consecutive_failures.pop(aid, None)
                    if not renewal:
                        self._note_zone_use(zone, published_ttl, now)
                    return message
                if obs is not None:
                    obs.emit(EventKind.QUERY_FAILED, now,
                             zone=str(zone), server=address,
                             latency=latency, renewal=renewal)
                    if result.dropped_by is not None:
                        obs.emit(EventKind.FAULT_DROP, now,
                                 server=address, reason=result.dropped_by,
                                 renewal=renewal)
                held_down = self._note_server_failure(address, aid, latency, now)
                if held_down or not result.timed_out:
                    # Sidelined, or a fast negative (lame delegation):
                    # retransmitting to this server cannot help.
                    break
        return None

    def _note_server_failure(
        self, address: str, aid: int, cost: float, now: float
    ) -> bool:
        """Failure bookkeeping for one query attempt.

        Returns whether the address was just placed in hold-down.  With
        a :class:`RetryPolicy` the timeout paid also feeds the smoothed
        RTT, so lossy/flapping servers lose their selection preference
        under ``prefer_fast_servers``; without one, behaviour is exactly
        the legacy single-failure ``server_holddown`` rule.  ``aid`` is
        the address's dense id (`_addr_ids`); ``address`` is only for
        event payloads.
        """
        retry = self.config.retry_policy
        if retry is None:
            if self.config.server_holddown is not None:
                self._held_down[aid] = now + self.config.server_holddown
            return False
        previous = self._srtt.get(aid)
        self._srtt[aid] = (
            cost if previous is None else 0.7 * previous + 0.3 * cost
        )
        count = self._consecutive_failures.get(aid, 0) + 1
        self._consecutive_failures[aid] = count
        if retry.holddown is not None and count >= retry.holddown_failures:
            until = now + retry.holddown
            self._held_down[aid] = until
            # Restart the count so the server gets a clean slate when
            # the hold-down expires (one failure then re-arms it).
            self._consecutive_failures.pop(aid, None)
            if self.observer is not None:
                self.observer.emit(EventKind.SERVER_HOLDDOWN, now,
                                   server=address, until=until,
                                   failures=count)
            return True
        if self.config.server_holddown is not None:
            self._held_down[aid] = now + self.config.server_holddown
        return False

    def _zone_ns(
        self, zone: Name, now: float, stale: bool
    ) -> tuple[tuple[Name, ...], float] | None:
        """The zone's server names plus published NS TTL, if known."""
        if zone == self._root:
            return self._root_ns_info
        entry = self.cache.entry(zone, RRType.NS)
        if entry is None:
            return None
        if not entry.is_live(now) and not stale:
            return None
        rrset = entry.rrset
        cached = self._ns_names.get(zone.iid)
        if cached is not None and cached[0] is rrset:
            names = cached[1]
        else:
            names = tuple(
                record.data for record in rrset if isinstance(record.data, Name)
            )
            self._ns_names[zone.iid] = (rrset, names)
        if not names:
            return None
        return names, entry.published_ttl

    def _address_for(
        self,
        server_name: Name,
        zone: Name,
        now: float,
        depth: int,
        stack: frozenset[Name],
        stale: bool,
    ) -> str | None:
        """An address for a server, from hints, cache, or sub-resolution."""
        hint = self._hint_addresses.get(server_name)
        if hint is not None:
            return hint
        cached = self.cache.get(server_name, RRType.A, now)
        if cached is not None:
            return str(cached.records[0].data)
        if stale:
            stale_set = self.cache.get_stale(
                server_name, RRType.A, now,
                max_stale=self.config.serve_stale_max_age,
            )
            if stale_set is not None:
                return str(stale_set.records[0].data)
        if server_name in stack or depth >= self.config.max_fetch_depth:
            return None
        if server_name.is_subdomain_of(zone):
            # In-bailiwick name with no glue in cache: resolving it would
            # need the very zone we are trying to reach — a glue-less
            # cycle a real resolver also cannot break.
            return None
        # Work-limit defenses.  From here on an uncached server name
        # costs a full sub-resolution — exactly what NXNS amplification
        # farms.  The per-query fetch budget and the per-referral-step
        # NXNS cap both refuse gracefully (the candidate is skipped;
        # with no candidates left the lookup climbs and eventually
        # SERVFAILs) rather than recursing without bound.
        cap = self.config.nxns_cap
        if cap is not None and self._nxns_spent >= cap:
            self.metrics.nxns_capped += 1
            if self.observer is not None:
                self.observer.emit(EventKind.DEFENSE_BUDGET_EXHAUSTED, now,
                                   mechanism="nxns-cap",
                                   server=str(server_name))
            return None
        budget = self._fetch_budget
        if budget is not None and not budget.spend():
            self.metrics.budget_exhaustions += 1
            if self.observer is not None:
                self.observer.emit(EventKind.DEFENSE_BUDGET_EXHAUSTED, now,
                                   mechanism="fetch-budget",
                                   server=str(server_name))
            return None
        if cap is not None:
            self._nxns_spent += 1
        sub = self.resolve(
            self._question_for(server_name, RRType.A),
            now,
            depth + 1,
            stack | {server_name},
        )
        if sub.failed or sub.answer is None:
            return None
        address_records = [
            record for record in sub.answer if record.rrtype == RRType.A
        ]
        if not address_records:
            return None
        return str(address_records[0].data)

    # ------------------------------------------------------------------
    # Response ingestion (caching + refresh + renewal + gap hooks)
    # ------------------------------------------------------------------

    def _ingest(self, message: Message, now: float) -> None:
        """File every RRset of a response into the cache, ranked.

        NS targets are registered first so the additional section's glue
        is already recognisable as infrastructure data.  The section
        walk, ranks and static infrastructure flags are precomputed (and
        memoized) by the message; only the known-server-name check and
        the puts themselves run per ingest.
        """
        ns_targets, ranked = message.ingest_plan()
        known = self._known_server_names
        if ns_targets:
            known.update(ns_targets)
        ttl_refresh = self.config.ttl_refresh
        put = self.cache.put
        gap_observer = self.gap_observer
        renewal = self.renewal
        forged = message.forged
        for rrset, rank, is_ns, static_irr, is_addr, dnssec_key in ranked:
            refresh = ttl_refresh and (
                static_irr or (is_addr and rrset.name in known)
            )
            if forged:
                # Adversary-injected response: the put is identical
                # except for the ground-truth taint marker, so RFC 2181
                # ranking (not fiat) decides whether the poison sticks.
                result = put(rrset, rank, now, refresh, True)
                if result.stored and self.observer is not None:
                    self.observer.emit(EventKind.CACHE_POISONED, now,
                                       name=str(rrset.name),
                                       rrtype=rrset.rrtype.name,
                                       rank=rank.name)
            else:
                result = put(rrset, rank, now, refresh)
            if dnssec_key:
                self._signed_zones.add(rrset.name)
            if not is_ns:
                continue
            zone = rrset.name
            if (
                result.replaced_expired
                and gap_observer is not None
                and result.previous_expiry is not None
                and result.previous_published_ttl is not None
            ):
                gap = now - result.previous_expiry
                gap_observer(zone, gap, result.previous_published_ttl)
            if result.stored and result.expires_at is not None:
                if renewal is not None:
                    renewal.note_irrs_cached(zone, result.expires_at)
            if rank == Rank.NON_AUTH_AUTHORITY:
                self._last_parent_learn[zone] = now

    def _chain_keys_available(self, qname: Name, now: float) -> bool:
        """Whether every signed zone on ``qname``'s chain has a live key.

        Missing keys are refetched on demand (an extra lookup the stub
        pays for); the root's keys are the configured trust anchor and
        never need fetching.  This models the §6 DNSSEC extension: a
        validating resolver is only as available as its key chain.
        """
        for ancestor in qname.ancestors():
            if ancestor.is_root:
                return True
            if ancestor not in self._signed_zones:
                continue
            if self.cache.get(ancestor, RRType.DNSKEY, now) is not None:
                continue
            refetch = self.resolve(
                self._question_for(ancestor, RRType.DNSKEY), now, depth=1
            )
            if refetch.failed or refetch.answer is None:
                return False
            if self.cache.get(ancestor, RRType.DNSKEY, now) is None:
                return False
        return True

    def _reset_zone_irrs(self, zone: Name, referral: Message, now: float) -> None:
        """Replace a failed zone's cached IRRs with a fresh referral's.

        Evicts the stale NS set (and the addresses of the servers it
        named) so the lower-ranked parent-side copy can take effect.
        """
        stale_entry = self.cache.entry(zone, RRType.NS)
        if stale_entry is not None:
            for record in stale_entry.rrset:
                if isinstance(record.data, Name):
                    self.cache.remove(record.data, RRType.A)
            self.cache.remove(zone, RRType.NS)
        if self.renewal is not None:
            self.renewal.forget_zone(zone)
        self._ingest(referral, now)

    def _note_zone_use(self, zone: Name, published_ttl: float, now: float) -> None:
        self.zone_contact_counts[zone] = (
            self.zone_contact_counts.get(zone, 0) + 1
        )
        if self.renewal is not None and zone != self._root:
            self.renewal.note_zone_use(zone, published_ttl, now)

    # ------------------------------------------------------------------
    # Renewal refetch / SWR background refresh / invalidation channel
    # ------------------------------------------------------------------

    def _schedule_refetch(self, qname: Name, rrtype: RRType, now: float) -> bool:
        """Queue one background, renewal-tagged refetch of (qname, rrtype).

        Deduplicated on the packed cache key: while a refetch is
        pending, further stale hits (or invalidations) for the same key
        are answered without queueing another upstream walk — the
        singleflight collapse.  Returns whether a refetch was newly
        scheduled.
        """
        key = (qname.iid << RRTYPE_BITS) | rrtype
        if key in self._refetch_pending:
            return False
        self._refetch_pending.add(key)
        question = self._question_for(qname, rrtype)

        def refetch(at: float) -> None:
            try:
                if self._fetch_budget is not None:
                    # Background refreshes are their own work unit.
                    self._fetch_budget.reset()
                self._fetch(
                    question, at, depth=0, stack=frozenset(), renewal=True
                )
            finally:
                self._refetch_pending.discard(key)

        self.clock.schedule_at(now, refetch)
        return True

    def handle_invalidation(self, zone: Name, now: float) -> None:
        """Update-channel invalidation for a migrated zone (`decoupled`).

        No-op unless the config arms the channel, or when nothing about
        the zone is cached (clients hold no stranded state).  Otherwise
        evicts the zone's NS set and the glue of the servers it named —
        the same eviction shape as the §4 parent-side IRR reset — and
        queues one deduplicated background re-learn through the parent,
        so long effective TTLs never pin lookups to dead servers.
        """
        if not self.config.update_channel:
            return
        entry = self.cache.entry(zone, RRType.NS)
        if entry is None:
            return
        for record in entry.rrset:
            if isinstance(record.data, Name):
                self.cache.remove(record.data, RRType.A)
        self.cache.remove(zone, RRType.NS)
        if self.renewal is not None:
            self.renewal.forget_zone(zone)
        self.metrics.invalidations += 1
        if self.observer is not None:
            self.observer.emit(EventKind.CACHE_INVALIDATED, now,
                               zone=str(zone))
        self._schedule_refetch(zone, RRType.NS, now)

    def _renewal_refetch(self, zone: Name, now: float) -> bool:
        """Refetch a zone's IRRs from the zone's own servers.

        Fired by the renewal manager just before expiry; returns whether
        the refetch produced an authoritative NS answer (which, once
        ingested, restarts the TTL countdown).
        """
        question = self._question_for(zone, RRType.NS)
        if self._fetch_budget is not None:
            # Renewal refetches are their own top-level work unit.
            self._fetch_budget.reset()
        response = self._query_zone(
            zone, question, now, depth=0, stack=frozenset(), renewal=True
        )
        if response is None or not response.answer:
            return False
        self._ingest(response, now)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def srtt_of(self, address: str) -> float | None:
        """The smoothed RTT estimate for a server address, if any.

        The internal map is keyed by dense address ids; this decodes for
        tests and diagnostics.
        """
        aid = self._addr_ids.get(address)
        return None if aid is None else self._srtt.get(aid)

    def top_blamed_zones(self, count: int = 10) -> list[tuple[Name, int]]:
        """Zones whose server sets failed most often (attack diagnosis)."""
        ranked = sorted(
            self.failure_blame.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:count]

    def cached_zone_count(self, now: float) -> int:
        """Zones with live cached IRRs (Figure 12 series)."""
        return self.cache.live_zone_count(now)

    def cached_record_count(self, now: float) -> int:
        """Live cached records (Figure 12 series)."""
        return self.cache.live_record_count(now)
