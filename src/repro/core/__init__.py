"""The paper's contribution: resilience-enhanced DNS caching servers.

* :mod:`repro.core.config` -- :class:`ResilienceConfig`, the switchboard
  for the three schemes (TTL refresh, TTL renewal, long TTL) and their
  combinations.
* :mod:`repro.core.policies` -- the four credit-based renewal policies
  (LRU, LFU, A-LRU, A-LFU).
* :mod:`repro.core.cache` -- an RFC 2181-ranked TTL cache with the
  refresh rule and stale retention.
* :mod:`repro.core.renewal` -- expiry timers that refetch IRRs while a
  zone still has credit.
* :mod:`repro.core.caching_server` -- the full iterative resolver tying
  it all together.
"""

from repro.core.cache import DnsCache, PutResult
from repro.core.caching_server import CachingServer, Resolution, ResolutionOutcome
from repro.core.config import ResilienceConfig
from repro.core.policies import (
    AdaptiveLFUPolicy,
    AdaptiveLRUPolicy,
    LFUPolicy,
    LRUPolicy,
    RenewalPolicy,
    make_policy,
)
from repro.core.renewal import RenewalManager

__all__ = [
    "AdaptiveLFUPolicy",
    "AdaptiveLRUPolicy",
    "CachingServer",
    "DnsCache",
    "LFUPolicy",
    "LRUPolicy",
    "PutResult",
    "RenewalManager",
    "RenewalPolicy",
    "Resolution",
    "ResolutionOutcome",
    "ResilienceConfig",
    "make_policy",
]
