"""The Upstream protocol: how the resolution core reaches authorities.

:class:`~repro.core.caching_server.CachingServer` talks to
authoritative servers through exactly two members: ``query`` (send one
question to one address, get a :class:`QueryResult`) and
``query_timeout`` (the per-attempt timeout its retry policy charges).
:class:`Upstream` names that contract so the simulated
:class:`~repro.simulation.network.Network` and a real UDP socket
(:class:`repro.serve.upstream.UdpUpstream`) are interchangeable behind
one interface — the same resolver walks a modelled delegation tree in a
replay and the real Internet under ``repro serve``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.dns.message import Question
    from repro.simulation.network import QueryResult


@runtime_checkable
class Upstream(Protocol):
    """What the caching server requires of a transport."""

    @property
    def query_timeout(self) -> float:
        """Seconds one unanswered query attempt costs before giving up."""
        ...

    def query(
        self, address: str, question: "Question", now: float
    ) -> "QueryResult":
        """Send ``question`` to the server at ``address``.

        Returns an unanswered result (``message is None``) on timeout,
        drop or lame delegation; never raises for ordinary delivery
        failures.
        """
        ...
