"""Expiry-driven IRR renewal (paper §4, "TTL Renewal").

A :class:`RenewalManager` keeps one timer per zone whose IRRs are cached.
Just before the NS set expires the timer fires:

* if the cached expiry moved forward meanwhile (a refresh or a demand
  re-fetch happened), the timer simply rearms at the new expiry;
* otherwise, if the policy still has credit for the zone, one credit is
  spent and the IRRs are refetched **from the zone's own servers** — the
  double-headed arrow in the paper's Figure 2;
* with no credit (or a failed refetch, e.g. the zone is under attack),
  the records lapse and the zone's policy state is forgotten.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

from repro.core.cache import DnsCache
from repro.core.clock import Clock, as_clock
from repro.core.policies import RenewalPolicy
from repro.dns.name import Name
from repro.obs.events import EventBus, EventKind

if TYPE_CHECKING:
    from repro.simulation.engine import SimulationEngine

#: Seconds before expiry at which the refetch fires ("just before they
#: are ready to expire").
RENEWAL_LEAD = 1.0

#: Slack when deciding whether an expiry "moved forward" (avoids rearm
#: storms from float jitter).
_EPSILON = 1e-6

RefetchFn = Callable[[Name, float], bool]


class RenewalManager:
    """Schedules and executes credit-funded IRR refetches."""

    def __init__(
        self,
        policy: RenewalPolicy,
        clock: "Clock | SimulationEngine",
        cache: DnsCache,
        refetch: RefetchFn,
        jitter_fraction: float = 0.0,
        rng: "random.Random | None" = None,
        observer: "EventBus | None" = None,
    ) -> None:
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.observer = observer
        self.policy = policy
        # Timers run against the Clock protocol: a VirtualClock during
        # replays (bare engines are normalised for the pre-redesign call
        # shape), a WallClock under `repro serve`.  Expiry instants are
        # armed via schedule_at — an absolute time squeezed through a
        # relative delay is not float-exact, and the byte-identical
        # event-log guarantee rides on those exact fire times.
        self._clock = as_clock(clock)
        self._cache = cache
        self._refetch = refetch
        self._jitter_fraction = jitter_fraction
        self._rng = rng or random.Random(0)
        # Timer tokens from the clock (the engine's flat event queue
        # under a VirtualClock, DESIGN §13).
        self._timers: dict[Name, int] = {}
        self._armed_for: dict[Name, float] = {}
        self.renewals_attempted = 0
        self.renewals_succeeded = 0
        self.renewals_failed = 0
        self.lapses = 0

    # -- notifications from the caching server ------------------------------

    def note_zone_use(self, zone: Name, irr_ttl: float, now: float) -> None:
        """The CS contacted ``zone``'s servers: top up its credit."""
        self.policy.on_zone_use(zone, irr_ttl, now)

    def note_irrs_cached(self, zone: Name, expires_at: float) -> None:
        """The NS set for ``zone`` was stored/refreshed; (re)arm its timer."""
        armed_at = self._armed_for.get(zone)
        if armed_at is not None and abs(armed_at - expires_at) < _EPSILON:
            return
        existing = self._timers.get(zone)
        if existing is not None:
            self._clock.cancel(existing)
        fire_at = expires_at - RENEWAL_LEAD
        if self._jitter_fraction > 0.0:
            # Refetch a little early, by a random share of the remaining
            # lifetime: real caches learn/refresh zones at uncorrelated
            # moments, so their renewal phases are spread out.  Without
            # this a cold-start simulation renews every zone learned at
            # t=0 in lockstep, which manufactures synchronised mass
            # expiries (e.g. all TLD keys dying at the attack start).
            remaining = max(0.0, expires_at - self._clock.now())
            fire_at -= self._rng.uniform(0.0, self._jitter_fraction * remaining)
        fire_at = max(fire_at, self._clock.now())
        self._timers[zone] = self._clock.schedule_at(
            fire_at, lambda now, zone=zone: self._on_timer(zone, now)
        )
        self._armed_for[zone] = expires_at

    def forget_zone(self, zone: Name) -> None:
        """Drop timers and credit for a zone (delegation removed, etc.)."""
        token = self._timers.pop(zone, None)
        if token is not None:
            self._clock.cancel(token)
        self._armed_for.pop(zone, None)
        self.policy.forget(zone)

    # -- timer body -----------------------------------------------------------

    def _on_timer(self, zone: Name, now: float) -> None:
        self._timers.pop(zone, None)
        armed_expiry = self._armed_for.pop(zone, None)
        current_expiry = self._cache.zone_ns_expiry(zone, now)
        if current_expiry is None:
            # Already lapsed or evicted (e.g. removed by delegation-change
            # handling or capacity pressure); clean up the policy state
            # but do not count a lapse — nothing expired *under renewal*,
            # and counting evictions here inflates the metric.
            self._lapse(zone, now, count=False)
            return
        if armed_expiry is not None and current_expiry > armed_expiry + _EPSILON:
            # Something refreshed the IRRs since we armed; rearm silently.
            self.note_irrs_cached(zone, current_expiry)
            return
        if not self.policy.take_renewal_credit(zone):
            self._lapse(zone, now)
            return
        self.renewals_attempted += 1
        obs = self.observer
        if obs is not None:
            obs.emit(EventKind.RENEWAL_SPEND, now, zone=str(zone))
        if self._refetch(zone, now):
            self.renewals_succeeded += 1
            if obs is not None:
                obs.emit(EventKind.RENEWAL_RENEWED, now, zone=str(zone))
            # A successful refetch re-enters note_irrs_cached via the
            # caching server's ingest path; if it somehow did not (e.g.
            # equal-rank non-refresh edge), rearm from the cache state.
            # A refreshed expiry inside the renewal lead still gets a
            # timer (clamped to fire immediately by note_irrs_cached);
            # leaving it timerless would let the zone expire silently
            # with no lapse count and orphaned policy credit.
            if zone not in self._timers:
                refreshed_expiry = self._cache.zone_ns_expiry(zone, now)
                if refreshed_expiry is not None:
                    self.note_irrs_cached(zone, refreshed_expiry)
                else:
                    # The "successful" refetch stored nothing live
                    # (zero/elapsed TTL): account it as a lapse.
                    self._lapse(zone, now)
        else:
            # Refetch failed (zone under attack / unreachable): the
            # records lapse at their natural expiry.
            self.renewals_failed += 1
            self._lapse(zone, now)

    def _lapse(self, zone: Name, now: float, count: bool = True) -> None:
        if count:
            self.lapses += 1
            if self.observer is not None:
                self.observer.emit(EventKind.RENEWAL_LAPSE, now, zone=str(zone))
        self.policy.forget(zone)

    # -- introspection -----------------------------------------------------------

    def armed_timer_count(self) -> int:
        """Zones with a pending renewal timer."""
        return len(self._timers)

    def armed_zones(self) -> tuple[Name, ...]:
        """The zones with a pending renewal timer (for validation)."""
        return tuple(self._timers)
