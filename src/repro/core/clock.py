"""The Clock protocol: one timer API for virtual and wall time.

The resolution core (:class:`~repro.core.caching_server.CachingServer`,
:class:`~repro.core.renewal.RenewalManager`) needs exactly four things
from time: read it, arm a timer after a delay, arm a timer at an
absolute instant, and cancel a timer.  :class:`Clock` names that
contract; the two implementations are

* :class:`VirtualClock` — wraps a
  :class:`~repro.simulation.engine.SimulationEngine`; time is the
  replay's discrete-event clock and timers are queue entries.  This is
  the deterministic path every experiment runs on.
* :class:`repro.serve.clock.WallClock` — schedules on a live asyncio
  loop; time is ``time.monotonic()``.  This is the ``repro serve``
  path, where determinism is explicitly out of scope (DESIGN.md §15).

``schedule_at`` exists alongside ``schedule`` deliberately: renewal
timers are armed at *absolute* expiry instants, and round-tripping an
absolute time through a relative delay (``(fire_at - now) + now``) is
not float-exact — the byte-identical event-log guarantee would not
survive it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.simulation.engine import SimulationEngine

TimerAction = Callable[[float], None]
"""Timer callbacks receive the clock's time at the moment they fire."""


@runtime_checkable
class Clock(Protocol):
    """What the resolution core requires of a time source."""

    def now(self) -> float:
        """The current time, in seconds (virtual or monotonic wall)."""
        ...

    def schedule(self, delay: float, action: TimerAction) -> int:
        """Run ``action(fire_time)`` after ``delay`` seconds.

        Returns a token accepted by :meth:`cancel`.
        """
        ...

    def schedule_at(self, when: float, action: TimerAction) -> int:
        """Run ``action(fire_time)`` at the absolute instant ``when``.

        Instants in the past fire as soon as the clock next advances
        (virtual) or on the next loop tick (wall).  Returns a cancel
        token.
        """
        ...

    def cancel(self, token: int) -> bool:
        """Cancel a pending timer; True when it had not yet fired."""
        ...


class VirtualClock:
    """A :class:`Clock` over a :class:`SimulationEngine`'s event queue.

    Deliberately a thin veneer: tokens are the engine's own queue
    tokens, and ``now`` reads the engine attribute, so wrapping an
    engine mid-replay observes exactly the same timeline.
    """

    __slots__ = ("engine",)

    def __init__(self, engine: "SimulationEngine") -> None:
        self.engine = engine

    def now(self) -> float:
        return self.engine.now

    def schedule(self, delay: float, action: TimerAction) -> int:
        return self.engine.schedule_in(delay, action)

    def schedule_at(self, when: float, action: TimerAction) -> int:
        return self.engine.schedule(when, action)

    def cancel(self, token: int) -> bool:
        return self.engine.cancel(token)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self.engine.now!r})"


def as_clock(source: "Clock | SimulationEngine") -> Clock:
    """Normalise ``source`` to a :class:`Clock`.

    Accepts either a ready-made clock or a bare
    :class:`SimulationEngine` (wrapped in a :class:`VirtualClock`), so
    pre-redesign call sites that hand the engine straight to the
    resolution core keep working unchanged.
    """
    from repro.simulation.engine import SimulationEngine

    if isinstance(source, SimulationEngine):
        return VirtualClock(source)
    return source
