"""FetchBudget: the shared work-limit primitive behind the DoS defenses.

One counter with a ceiling.  The resolver arms one per stub query to
bound the upstream fan-out a single lookup may trigger (the NXNS
amplification defense, DESIGN.md §16); ``repro serve`` arms one per
client address to bound *concurrent* upstream work (there ``release``
returns capacity when a resolution finishes).  Both uses share this
class so the semantics — spend-or-refuse, exhaustions counted — are
defined exactly once.
"""

from __future__ import annotations


class FetchBudget:
    """A spend/release counter with a hard ceiling.

    ``spend`` consumes one unit and reports whether the caller may
    proceed; at the ceiling it refuses and counts the exhaustion
    instead.  ``reset`` (per-query use) returns the whole budget;
    ``release`` (concurrency use) returns one unit.
    """

    __slots__ = ("limit", "used", "exhaustions")

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"budget limit must be positive, got {limit}")
        self.limit = limit
        self.used = 0
        self.exhaustions = 0

    def spend(self) -> bool:
        """Consume one unit; False (and count it) when exhausted."""
        if self.used >= self.limit:
            self.exhaustions += 1
            return False
        self.used += 1
        return True

    def release(self) -> None:
        """Return one unit (for concurrent-use callers)."""
        if self.used > 0:
            self.used -= 1

    def reset(self) -> None:
        """Return the whole budget (for per-query callers)."""
        self.used = 0

    @property
    def remaining(self) -> int:
        return self.limit - self.used

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FetchBudget(limit={self.limit}, used={self.used}, "
            f"exhaustions={self.exhaustions})"
        )
