"""Credit-based IRR renewal policies (paper §4, "TTL Renewal").

Each zone carries a credit balance.  Every time the caching server uses
the zone (sends a query to its authoritative servers), the policy tops up
the credit; every time the zone's IRRs are about to expire, the renewal
manager spends one credit to refetch them.  A zone whose credit is
exhausted simply lapses from the cache.

The four policies differ only in the top-up rule:

* **LRU**     — ``credit = C`` (reset on every use; recently used zones
  survive, like an LRU eviction order).
* **LFU**     — ``credit += C`` capped at ``M`` (frequently used zones
  accumulate credit, like LFU).
* **A-LRU**   — ``credit = C * 86400 / TTL`` (adaptive: the extra cache
  time is ``C`` *days* regardless of the zone's TTL).
* **A-LFU**   — ``credit += C * 86400 / TTL`` capped at ``M``.

Credits are floats; a renewal spends one whole credit, so an adaptive
credit of 1.5 buys one renewal with 0.5 left to top up later.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.dns.name import Name, name_for_id

DAY = 86400.0


class RenewalPolicy(ABC):
    """Tracks per-zone renewal credit.

    Balances are keyed internally by the zone name's dense intern id
    (:attr:`~repro.dns.name.Name.iid`) — credit is topped up on every
    zone contact, so the table sits on the replay hot path.  The public
    API still speaks :class:`Name`; :meth:`balances` decodes.
    """

    #: Display name, e.g. ``"a-lfu(c=3)"``.
    name: str

    def __init__(self) -> None:
        self._credits: dict[int, float] = {}

    @abstractmethod
    def on_zone_use(self, zone: Name, irr_ttl: float, now: float) -> None:
        """Top up ``zone``'s credit after the CS queried its servers."""

    def take_renewal_credit(self, zone: Name) -> bool:
        """Spend one credit for a renewal refetch; False when broke."""
        balance = self._credits.get(zone.iid, 0.0)
        if balance < 1.0:
            return False
        self._credits[zone.iid] = balance - 1.0
        return True

    def credit_of(self, zone: Name) -> float:
        """Current balance (0 for unknown zones)."""
        return self._credits.get(zone.iid, 0.0)

    def forget(self, zone: Name) -> None:
        """Drop state for a zone that left the cache."""
        self._credits.pop(zone.iid, None)

    def tracked_zones(self) -> int:
        """How many zones hold state (memory accounting)."""
        return len(self._credits)

    def balances(self) -> dict[Name, float]:
        """A snapshot of every zone's credit balance (for validation)."""
        return {name_for_id(iid): value for iid, value in self._credits.items()}


class LRUPolicy(RenewalPolicy):
    """Reset-to-C on use: unused zones expire first."""

    def __init__(self, credit: float = 3.0) -> None:
        super().__init__()
        if credit < 0:
            raise ValueError("credit must be non-negative")
        self.credit = credit
        self.name = f"lru(c={credit:g})"

    def on_zone_use(self, zone: Name, irr_ttl: float, now: float) -> None:
        self._credits[zone.iid] = self.credit


class LFUPolicy(RenewalPolicy):
    """Accumulate-C on use, capped: rarely used zones expire first."""

    def __init__(self, credit: float = 3.0, max_credit: float | None = None) -> None:
        super().__init__()
        if credit < 0:
            raise ValueError("credit must be non-negative")
        self.credit = credit
        self.max_credit = 10.0 * credit if max_credit is None else max_credit
        if self.max_credit < credit:
            raise ValueError("max_credit must be at least the per-use credit")
        self.name = f"lfu(c={credit:g},m={self.max_credit:g})"

    def on_zone_use(self, zone: Name, irr_ttl: float, now: float) -> None:
        balance = self._credits.get(zone.iid, 0.0) + self.credit
        self._credits[zone.iid] = min(balance, self.max_credit)


class AdaptiveLRUPolicy(RenewalPolicy):
    """LRU with TTL-normalised credit: ~C extra *days* in cache for all zones."""

    def __init__(self, credit: float = 3.0) -> None:
        super().__init__()
        if credit < 0:
            raise ValueError("credit must be non-negative")
        self.credit = credit
        self.name = f"a-lru(c={credit:g})"

    def on_zone_use(self, zone: Name, irr_ttl: float, now: float) -> None:
        if irr_ttl <= 0:
            raise ValueError(f"non-positive IRR TTL {irr_ttl} for {zone}")
        self._credits[zone.iid] = self.credit * DAY / irr_ttl


class AdaptiveLFUPolicy(RenewalPolicy):
    """LFU with TTL-normalised credit, capped at ``max_credit`` renewals."""

    def __init__(self, credit: float = 3.0, max_credit: float | None = None) -> None:
        super().__init__()
        if credit < 0:
            raise ValueError("credit must be non-negative")
        self.credit = credit
        # The adaptive increment for a tiny-TTL zone can be huge (a
        # 5-minute zone earns 288*C per use); the cap is what keeps very
        # popular zones from accruing unbounded renewals (paper §4).
        self.max_credit = 30.0 * credit if max_credit is None else max_credit
        self.name = f"a-lfu(c={credit:g},m={self.max_credit:g})"

    def on_zone_use(self, zone: Name, irr_ttl: float, now: float) -> None:
        if irr_ttl <= 0:
            raise ValueError(f"non-positive IRR TTL {irr_ttl} for {zone}")
        balance = self._credits.get(zone.iid, 0.0) + self.credit * DAY / irr_ttl
        self._credits[zone.iid] = min(balance, self.max_credit)


_POLICY_KINDS = {
    "lru": LRUPolicy,
    "lfu": LFUPolicy,
    "a-lru": AdaptiveLRUPolicy,
    "a-lfu": AdaptiveLFUPolicy,
}


def make_policy(
    kind: str, credit: float = 3.0, max_credit: float | None = None
) -> RenewalPolicy:
    """Build a policy by name: ``lru`` / ``lfu`` / ``a-lru`` / ``a-lfu``.

    Raises:
        ValueError: for an unknown policy name.
    """
    try:
        cls = _POLICY_KINDS[kind.lower()]
    except KeyError:
        raise ValueError(
            f"unknown policy {kind!r}; expected one of {sorted(_POLICY_KINDS)}"
        ) from None
    if cls in (LFUPolicy, AdaptiveLFUPolicy):
        return cls(credit, max_credit)
    return cls(credit)


def policy_names() -> tuple[str, ...]:
    """The recognised policy kind strings."""
    return tuple(_POLICY_KINDS)
