"""The textual scheme syntax shared by the CLI and the experiment specs.

``vanilla``, ``refresh``, ``serve-stale``, ``combination``,
``<policy>:<credit>`` (e.g. ``a-lfu:5``) for refresh+renewal,
``long-ttl:<days>`` for refresh+long-TTL, ``swr[:<grace-seconds>]`` for
stale-while-revalidate, or ``decoupled[:<ttl-days>]`` for long TTLs
with the churn-invalidation update channel.

Lives in ``core`` (not ``cli``) so experiment spec dataclasses can carry
a scheme as a plain string and parse it at run time without importing
the CLI; :mod:`repro.cli` re-exports :func:`parse_scheme` for
backwards compatibility.
"""

from __future__ import annotations

import math

from repro.core.config import ResilienceConfig
from repro.core.policies import policy_names


def scheme_syntax() -> str:
    """One-line description of the accepted scheme spellings."""
    return (
        "vanilla, refresh, serve-stale, combination, long-ttl:<days>, "
        "swr[:<grace-seconds>], decoupled[:<ttl-days>], "
        + ", ".join(f"{p}:<credit>" for p in policy_names())
    )


def _parse_parameter(
    kind: str, parameter: str, text: str, positive: bool
) -> float:
    """Parse one numeric scheme parameter, rejecting nonsense values.

    NaN/inf floats parse but poison everything downstream (a ``nan``
    TTL never expires and never compares, an ``inf`` credit never
    drains), so reject anything non-finite; negative (or, for
    ``positive`` kinds, zero) parameters are equally meaningless.
    """
    try:
        value = float(parameter)
    except ValueError:
        raise ValueError(
            f"bad {kind} parameter {parameter!r} in scheme {text!r}"
        ) from None
    if not math.isfinite(value):
        raise ValueError(
            f"{kind} parameter must be finite, got {parameter!r} "
            f"in scheme {text!r}"
        )
    if positive and value <= 0.0:
        raise ValueError(
            f"{kind} parameter must be positive, got {parameter!r} "
            f"in scheme {text!r}"
        )
    if value < 0.0:
        raise ValueError(
            f"{kind} parameter must not be negative, got {parameter!r} "
            f"in scheme {text!r}"
        )
    return value


def parse_scheme(text: str) -> ResilienceConfig:
    """Parse the CLI scheme syntax into a :class:`ResilienceConfig`.

    Raises:
        ValueError: for unknown scheme names or malformed, non-finite or
            negative parameters.
    """
    lowered = text.strip().lower()
    if lowered == "vanilla":
        return ResilienceConfig.vanilla()
    if lowered == "refresh":
        return ResilienceConfig.refresh()
    if lowered == "serve-stale":
        return ResilienceConfig.stale_serving()
    if lowered == "combination":
        return ResilienceConfig.combination()
    if lowered == "swr":
        return ResilienceConfig.swr()
    if lowered == "decoupled":
        return ResilienceConfig.decoupled()
    if ":" in lowered:
        kind, _, parameter = lowered.partition(":")
        if kind == "long-ttl":
            value = _parse_parameter(kind, parameter, text, positive=True)
            return ResilienceConfig.refresh_long_ttl(value)
        if kind == "swr":
            value = _parse_parameter(kind, parameter, text, positive=True)
            return ResilienceConfig.swr(value)
        if kind == "decoupled":
            value = _parse_parameter(kind, parameter, text, positive=True)
            return ResilienceConfig.decoupled(value)
        if kind in policy_names():
            value = _parse_parameter(kind, parameter, text, positive=False)
            return ResilienceConfig.refresh_renew(kind, value)
    raise ValueError(
        f"unknown scheme {text!r}; expected vanilla, refresh, serve-stale, "
        f"combination, long-ttl:<days>, swr[:<grace-seconds>], "
        f"decoupled[:<ttl-days>], or one of "
        f"{'/'.join(policy_names())}:<credit>"
    )
