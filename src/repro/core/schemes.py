"""The textual scheme syntax shared by the CLI and the experiment specs.

``vanilla``, ``refresh``, ``serve-stale``, ``combination``,
``<policy>:<credit>`` (e.g. ``a-lfu:5``) for refresh+renewal, or
``long-ttl:<days>`` for refresh+long-TTL.

Lives in ``core`` (not ``cli``) so experiment spec dataclasses can carry
a scheme as a plain string and parse it at run time without importing
the CLI; :mod:`repro.cli` re-exports :func:`parse_scheme` for
backwards compatibility.
"""

from __future__ import annotations

from repro.core.config import ResilienceConfig
from repro.core.policies import policy_names


def scheme_syntax() -> str:
    """One-line description of the accepted scheme spellings."""
    return (
        "vanilla, refresh, serve-stale, combination, long-ttl:<days>, "
        + ", ".join(f"{p}:<credit>" for p in policy_names())
    )


def parse_scheme(text: str) -> ResilienceConfig:
    """Parse the CLI scheme syntax into a :class:`ResilienceConfig`.

    Raises:
        ValueError: for unknown scheme names or malformed parameters.
    """
    lowered = text.strip().lower()
    if lowered == "vanilla":
        return ResilienceConfig.vanilla()
    if lowered == "refresh":
        return ResilienceConfig.refresh()
    if lowered == "serve-stale":
        return ResilienceConfig.stale_serving()
    if lowered == "combination":
        return ResilienceConfig.combination()
    if ":" in lowered:
        kind, _, parameter = lowered.partition(":")
        try:
            value = float(parameter)
        except ValueError:
            raise ValueError(f"bad scheme parameter in {text!r}") from None
        if kind == "long-ttl":
            return ResilienceConfig.refresh_long_ttl(value)
        if kind in policy_names():
            return ResilienceConfig.refresh_renew(kind, value)
    raise ValueError(
        f"unknown scheme {text!r}; expected vanilla, refresh, serve-stale, "
        f"combination, long-ttl:<days>, or one of "
        f"{'/'.join(policy_names())}:<credit>"
    )
