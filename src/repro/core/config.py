"""Configuration for the resilience schemes a caching server runs.

The paper's evaluation compares seven system flavours; each is one
:class:`ResilienceConfig`, constructible through the named factories:

=====================================  =======================================
Paper system                           Factory
=====================================  =======================================
vanilla DNS                            ``ResilienceConfig.vanilla()``
TTL refresh                            ``ResilienceConfig.refresh()``
refresh + renewal (policy P, credit C) ``ResilienceConfig.refresh_renew(P, C)``
refresh + long TTL of N days           ``ResilienceConfig.refresh_long_ttl(N)``
refresh + renew + long TTL             ``ResilienceConfig.combination(...)``
=====================================  =======================================

``long_ttl`` is an *authoritative-side* change — the harness applies it to
the zone tree via :meth:`repro.hierarchy.tree.ZoneTree.apply_long_ttl` —
but it lives here so one object fully describes a scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.core.policies import RenewalPolicy, make_policy

DAY = 86400.0

PolicyFactory = Callable[[], RenewalPolicy]


@dataclass(frozen=True)
class RetryPolicy:
    """Resolver-side retransmit behaviour for one server (frozen, picklable).

    BIND-flavoured: up to ``max_tries`` transmissions per server per
    resolution attempt, each failed try costing ``try_timeout`` (or the
    network's timeout when None) scaled by ``backoff ** attempt`` — the
    real retransmit schedule, which latency accounting sums.  A server
    that fails ``holddown_failures`` consecutive times is sidelined for
    ``holddown`` seconds (the dead-server hold-down), after which it is
    eligible again.
    """

    max_tries: int = 2
    """Transmissions per server before moving to the next candidate."""

    try_timeout: Optional[float] = None
    """Per-try timeout in seconds; None uses the network latency
    model's timeout as the base."""

    backoff: float = 2.0
    """Exponential multiplier between successive tries (>= 1)."""

    holddown_failures: int = 3
    """Consecutive failures before the server is sidelined."""

    holddown: Optional[float] = 900.0
    """Sideline interval in seconds; None disables the hold-down."""

    def __post_init__(self) -> None:
        if self.max_tries < 1:
            raise ValueError(f"max_tries must be >= 1, got {self.max_tries}")
        if self.try_timeout is not None and self.try_timeout <= 0.0:
            raise ValueError(
                f"try_timeout must be positive, got {self.try_timeout}"
            )
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.holddown_failures < 1:
            raise ValueError(
                f"holddown_failures must be >= 1, got {self.holddown_failures}"
            )
        if self.holddown is not None and self.holddown <= 0.0:
            raise ValueError(f"holddown must be positive, got {self.holddown}")

    def try_cost(self, base_timeout: float, attempt: int) -> float:
        """The timeout paid for failed try number ``attempt`` (0-based)."""
        base = self.try_timeout if self.try_timeout is not None else base_timeout
        return base * self.backoff**attempt


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything that distinguishes one caching-server scheme from another."""

    ttl_refresh: bool = False
    """Reset cached IRR TTLs from the authority/additional sections of
    every authoritative response (paper §4, "TTL Refresh")."""

    renewal_policy: Optional[PolicyFactory] = None
    """Factory for a credit-based renewal policy, or None for no renewal."""

    long_ttl: Optional[float] = None
    """Authoritative-side IRR TTL override in seconds, or None."""

    max_effective_ttl: float = 7 * DAY
    """Cap on any cached TTL — caching servers "do not accept arbitrary
    large TTL values (more than 7 days)" (paper §6)."""

    negative_ttl: float = 3600.0
    """How long NXDOMAIN results are cached."""

    serve_stale: bool = False
    """Ballani-style comparator: keep expired records and fall back to
    them when authoritative servers are unreachable (related work §7)."""

    serve_stale_max_age: Optional[float] = None
    """Bound (seconds past expiry) on how stale a record may still be
    served under ``serve_stale``; None serves arbitrarily stale data,
    the related-work comparator's assumption."""

    swr_grace: Optional[float] = None
    """Stale-while-revalidate grace window in seconds: a lookup that
    misses but finds a record expired no more than this long ago serves
    the stale RRset immediately and enqueues one deduplicated background
    refetch (the renewal-tagged analogue of the serve front end's
    singleflight/stale memo); None disables SWR."""

    update_channel: bool = False
    """Decoupled-TTL update channel: zone migrations publish
    invalidations that evict the stranded NS/glue and trigger a
    background re-learn, so long effective TTLs no longer pin clients to
    decommissioned servers ("Decoupling DNS Update Timing from TTL
    Values", PAPERS.md)."""

    dnssec_validation: bool = False
    """Validate lookups against the (simulated) DNSSEC chain: every
    signed zone on the query's chain must have a live cached DNSKEY, or
    one must be fetchable.  Paper §6 extension — makes IRR caching
    matter even more, since broken key chains turn into SERVFAILs."""

    parent_recheck_interval: Optional[float] = None
    """Force a walk through the parent at least this often, so reclaimed
    delegations are noticed despite refresh/renewal (paper §6); None
    disables the recheck."""

    cache_capacity: Optional[int] = None
    """Maximum cached RRset entries (LRU eviction when full); None means
    unbounded, the paper's assumption.  The bounded-cache ablation
    studies how eviction pressure interacts with IRR renewal."""

    server_holddown: Optional[float] = None
    """After a server fails to respond, skip it for this many seconds
    (BIND-style dead-server hold-down).  Cuts repeated timeout storms
    during an attack; None disables (the paper's baseline behaviour)."""

    prefer_fast_servers: bool = False
    """Order a zone's servers by smoothed observed RTT instead of
    rotating through them (BIND-style server selection)."""

    retry_policy: Optional[RetryPolicy] = None
    """Retransmit schedule + consecutive-failure hold-down per server;
    None (the paper's baseline) sends exactly one query per server.
    When set, it supersedes ``server_holddown``'s single-failure rule
    and failed tries feed the smoothed-RTT estimate, so lossy servers
    lose their selection preference."""

    renewal_jitter: float = 0.05
    """Renewal refetches fire up to this fraction of the remaining TTL
    early (seeded, deterministic).  Desynchronises renewal phases the
    way real caches' uncorrelated learn times do; 0 disables."""

    max_cname_chain: int = 8
    max_referrals: int = 30
    max_fetch_depth: int = 6
    """Recursion limit for resolving out-of-bailiwick NS addresses."""

    fetch_budget: Optional[int] = None
    """Upper bound on NS-address sub-resolutions one stub query may
    trigger (the NXNS work limit, DESIGN.md §16).  When the budget runs
    out the remaining glue-less servers are skipped — the lookup
    degrades to SERVFAIL instead of amplifying; None disables."""

    nxns_cap: Optional[int] = None
    """Upper bound on NS-address sub-resolutions a *single referral
    step* may trigger (the per-delegation NXNS cap).  Tighter than
    ``fetch_budget``: a crafted delegation with a huge NS set is clamped
    even when the overall budget would still allow it; None disables."""

    harden_ranking: bool = False
    """Poisoning defense: a live cached RRset with different data may
    only be replaced by *strictly* higher-ranked data (RFC 2181 already
    forbids lower-ranked replacement; this also rejects equal-rank
    overwrites, so an off-path forgery cannot displace a cached answer
    before it expires)."""

    source_entropy_bits: int = 0
    """Poisoning defense: extra bits of source-port/ID entropy an
    off-path attacker must guess, halving the forgery success
    probability per bit (0 models the fixed-port resolver DNS-CPM
    assumes)."""

    protect_irrs: bool = False
    """Flash-crowd defense: budget-aware cache admission — when a
    bounded cache must evict, live NS RRsets (the IRRs the paper's
    schemes exist to preserve) are evicted only after every non-IRR
    entry is gone."""

    label: str = "vanilla"
    """Human-readable scheme name, used by reports and benches."""

    # -- factories ---------------------------------------------------------

    @classmethod
    def vanilla(cls) -> "ResilienceConfig":
        """Current DNS behaviour: no refresh, no renewal, zone TTLs as-is."""
        return cls(label="vanilla")

    @classmethod
    def refresh(cls) -> "ResilienceConfig":
        """TTL refresh only."""
        return cls(ttl_refresh=True, label="refresh")

    @classmethod
    def refresh_renew(
        cls, policy: str, credit: float, max_credit: float | None = None
    ) -> "ResilienceConfig":
        """TTL refresh plus a renewal policy.

        ``policy`` is one of ``"lru"``, ``"lfu"``, ``"a-lru"``, ``"a-lfu"``.
        """
        factory = _policy_factory(policy, credit, max_credit)
        return cls(
            ttl_refresh=True,
            renewal_policy=factory,
            label=f"refresh+{policy}{credit:g}",
        )

    @classmethod
    def refresh_long_ttl(cls, days: float) -> "ResilienceConfig":
        """TTL refresh plus zone operators raising IRR TTLs to ``days``."""
        return cls(
            ttl_refresh=True,
            long_ttl=days * DAY,
            label=f"refresh+ttl{days:g}d",
        )

    @classmethod
    def combination(
        cls,
        days: float = 3.0,
        policy: str = "a-lfu",
        credit: float = 3.0,
        max_credit: float | None = None,
    ) -> "ResilienceConfig":
        """The paper's hybrid: refresh + renewal + long TTL.

        Defaults match the paper's headline configuration (A-LFU renewal
        over 3-day IRR TTLs).
        """
        factory = _policy_factory(policy, credit, max_credit)
        return cls(
            ttl_refresh=True,
            renewal_policy=factory,
            long_ttl=days * DAY,
            label=f"combo+{policy}{credit:g}+ttl{days:g}d",
        )

    @classmethod
    def stale_serving(cls) -> "ResilienceConfig":
        """The Ballani & Francis comparator from related work."""
        return cls(serve_stale=True, label="serve-stale")

    @classmethod
    def swr(cls, grace: float = 3600.0) -> "ResilienceConfig":
        """Stale-while-revalidate: serve stale inside ``grace`` seconds
        past expiry while one renewal-tagged background refetch runs.

        Raises:
            ValueError: when ``grace`` is not positive.
        """
        if grace <= 0.0:
            raise ValueError(f"swr grace must be positive, got {grace}")
        return cls(
            ttl_refresh=True,
            swr_grace=grace,
            label=f"swr{grace:g}s",
        )

    @classmethod
    def decoupled(cls, days: float = 7.0) -> "ResilienceConfig":
        """Long effective TTLs decoupled from update timing: ``days``-day
        IRR TTLs plus the churn-event invalidation channel.

        Raises:
            ValueError: when ``days`` is not positive.
        """
        if days <= 0.0:
            raise ValueError(f"decoupled ttl days must be positive, got {days}")
        return cls(
            ttl_refresh=True,
            long_ttl=days * DAY,
            update_channel=True,
            label=f"decoupled{days:g}d",
        )

    def with_validation(self) -> "ResilienceConfig":
        """A copy with DNSSEC validation enabled (paper §6 extension)."""
        return replace(
            self, dnssec_validation=True, label=f"{self.label}+dnssec"
        )

    # -- helpers -------------------------------------------------------------

    def with_label(self, label: str) -> "ResilienceConfig":
        """A copy carrying a different display label."""
        return replace(self, label=label)

    def with_retries(self, policy: RetryPolicy) -> "ResilienceConfig":
        """A copy running ``policy``'s retransmit/hold-down machinery."""
        return replace(
            self, retry_policy=policy,
            label=f"{self.label}+retry{policy.max_tries}",
        )

    def with_defenses(
        self,
        fetch_budget: int | None = None,
        nxns_cap: int | None = None,
    ) -> "ResilienceConfig":
        """A copy with the NXNS work limits armed (None leaves one off).

        Raises:
            ValueError: when a supplied limit is not positive.
        """
        config = self
        if fetch_budget is not None:
            if fetch_budget < 1:
                raise ValueError(
                    f"fetch_budget must be positive, got {fetch_budget}"
                )
            config = replace(
                config, fetch_budget=fetch_budget,
                label=f"{config.label}+budget{fetch_budget}",
            )
        if nxns_cap is not None:
            if nxns_cap < 1:
                raise ValueError(f"nxns_cap must be positive, got {nxns_cap}")
            config = replace(
                config, nxns_cap=nxns_cap,
                label=f"{config.label}+cap{nxns_cap}",
            )
        return config

    def make_renewal_policy(self) -> RenewalPolicy | None:
        """Instantiate a fresh policy object (None when renewal is off)."""
        if self.renewal_policy is None:
            return None
        return self.renewal_policy()

    def describe(self) -> str:
        """One-line summary of the enabled mechanisms."""
        parts = []
        if self.ttl_refresh:
            parts.append("ttl-refresh")
        if self.renewal_policy is not None:
            parts.append(f"renewal({self.make_renewal_policy().name})")
        if self.long_ttl is not None:
            parts.append(f"long-ttl({self.long_ttl / DAY:g}d)")
        if self.serve_stale:
            parts.append("serve-stale")
        if self.swr_grace is not None:
            parts.append(f"swr({self.swr_grace:g}s)")
        if self.update_channel:
            parts.append("update-channel")
        if self.retry_policy is not None:
            parts.append(
                f"retries({self.retry_policy.max_tries}"
                f"x{self.retry_policy.backoff:g})"
            )
        if self.fetch_budget is not None:
            parts.append(f"fetch-budget({self.fetch_budget})")
        if self.nxns_cap is not None:
            parts.append(f"nxns-cap({self.nxns_cap})")
        if self.harden_ranking:
            parts.append("harden-ranking")
        if self.source_entropy_bits > 0:
            parts.append(f"entropy({self.source_entropy_bits}b)")
        if self.protect_irrs:
            parts.append("protect-irrs")
        if not parts:
            parts.append("vanilla")
        return " + ".join(parts)


@dataclass(frozen=True)
class _PolicyFactory:
    """A picklable renewal-policy factory.

    Configs cross process boundaries in the parallel replay runner, so
    the factory must be a plain data object rather than a closure.
    """

    policy: str
    credit: float
    max_credit: Optional[float] = None

    def __call__(self) -> RenewalPolicy:
        return make_policy(self.policy, self.credit, self.max_credit)


def _policy_factory(
    policy: str, credit: float, max_credit: float | None
) -> PolicyFactory:
    # Validate eagerly so a bad name fails at config time, not mid-replay.
    make_policy(policy, credit, max_credit)
    return _PolicyFactory(policy, credit, max_credit)
