"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``info``
    Library version, available scales, schemes and artifacts.
``replay``
    Replay one trace under one scheme (optionally under attack) and
    print the failure/overhead summary.
``figure N`` / ``table N``
    Regenerate one paper artifact and print it.
``trace generate`` / ``trace stats``
    Produce a synthetic trace file / summarise an existing one.
``churn`` / ``latency`` / ``dnssec`` / ``maxdamage`` / ``attack-grid`` /
``multiseed`` / ``degradation``
    Extension experiments.  These subcommands (and their flags) are
    generated from the ``repro.experiments.EXPERIMENTS`` registry: each
    spec-dataclass field becomes one ``--flag``.
``events``
    Replay a trace with the flight recorder attached and print the
    event counts plus the tail of the event stream.
``bench``
    Time a TINY sweep through the serial and parallel replay paths and
    print the speedup (smoke check for the batch runner).
``serve``
    Answer real DNS queries (UDP + TCP + a Prometheus endpoint) from
    the simulated hierarchy via an asyncio front end over the same
    caching-server core the replays use; ``--selftest`` drives it with
    a closed-loop client and prints qps/p50/p99.
``check``
    Run the determinism/static-analysis gate (custom AST lint rules
    REP001...; ``--strict`` adds mypy/ruff when installed).
``validate``
    Differential cache validation: the regression corpus, seeded
    op-sequence fuzzing, and a replay with the cache shadowed by the
    naive oracle (DESIGN.md §12).

Scheme syntax (for ``--scheme``): ``vanilla``, ``refresh``,
``serve-stale``, ``combination``, ``<policy>:<credit>`` (e.g.
``a-lfu:5``) for refresh+renewal, ``long-ttl:<days>`` for
refresh+long-TTL, ``swr[:<grace-seconds>]`` for stale-while-revalidate,
or ``decoupled[:<ttl-days>]`` for long TTLs with the churn-invalidation
update channel.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from dataclasses import field
from typing import Any, Callable, Sequence

from repro import __version__
from repro.analysis import export as csv_export
from repro.core.config import ResilienceConfig, RetryPolicy
from repro.core.schemes import parse_scheme, scheme_syntax
from repro.experiments import EXPERIMENTS, ExperimentDef, figures
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.registry import (
    CommandDef,
    Renderable,
    add_spec_arguments,
    resolve_scale,
    spec_from_args,
)
from repro.experiments.scenarios import Scale, make_scenario
from repro.obs import ObservationSpec, StageTimings
from repro.simulation.faults import FaultSpec
from repro.workload.generator import TraceGenerator, WorkloadConfig
from repro.workload.stats import compute_statistics
from repro.workload.trace import read_trace, write_trace

HOUR = 3600.0

_FIGURES: dict[int, Callable] = {
    3: figures.figure3,
    4: figures.figure4,
    5: figures.figure5,
    6: figures.figure6,
    7: figures.figure7,
    8: figures.figure8,
    9: figures.figure9,
    10: figures.figure10,
    11: figures.figure11,
    12: figures.figure12,
}

_TABLES: dict[int, Callable] = {
    1: figures.table1,
    2: figures.table2,
}


# Re-exported for compatibility: the parser lives in repro.core.schemes
# so registry modules can use it without importing the CLI.
__all__ = ["build_parser", "main", "parse_scheme"]


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in Scale],
        default=None,
        help="experiment scale (default: $REPRO_SCALE or tiny)",
    )


def _resolve_scale(args: argparse.Namespace) -> Scale:
    if args.scale:
        return Scale(args.scale)
    return Scale.from_env(default=Scale.TINY)


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} — DNS resilience reproduction (DSN 2007)")
    print(f"scales: {', '.join(scale.value for scale in Scale)}")
    print(f"schemes: {scheme_syntax()}")
    print(f"figures: {', '.join(str(n) for n in sorted(_FIGURES))}")
    print(f"tables: {', '.join(str(n) for n in sorted(_TABLES))}")
    print("experiments: " + ", ".join(
        f"{name} ({definition.help})"
        for name, definition in sorted(EXPERIMENTS.items())
    ))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    config = parse_scheme(args.scheme)
    if args.retries > 0:
        config = config.with_retries(RetryPolicy(max_tries=args.retries))
    if args.fetch_budget < 0 or args.nxns_cap < 0:
        raise ValueError("--fetch-budget and --nxns-cap must be >= 0")
    if args.fetch_budget > 0 or args.nxns_cap > 0:
        config = config.with_defenses(
            fetch_budget=args.fetch_budget if args.fetch_budget > 0 else None,
            nxns_cap=args.nxns_cap if args.nxns_cap > 0 else None,
        )
    scenario = make_scenario(_resolve_scale(args), seed=args.seed)
    if args.trace_file:
        trace = read_trace(args.trace_file)
    else:
        trace = scenario.trace(args.trace)
    attack = None
    if args.attack_hours > 0:
        attack = AttackSpec(start=scenario.attack_start,
                            duration=args.attack_hours * HOUR,
                            intensity=args.intensity)
    faults = FaultSpec(background_loss=args.loss) if args.loss > 0 else None
    observe = None
    if args.events or args.metrics:
        observe = ObservationSpec(events_path=args.events,
                                  metrics_path=args.metrics)
    timings = StageTimings() if args.timings else None
    result = run_replay(scenario.built, trace, config, attack=attack,
                        seed=args.seed, observe=observe, timings=timings,
                        faults=faults, validation=args.validate)
    metrics = result.metrics
    print(f"trace {trace.name}: {metrics.sr_queries:,} stub queries, "
          f"{metrics.total_outgoing:,} outgoing messages")
    print(f"scheme: {config.describe()}")
    print(f"cache hit rate: {metrics.sr_cache_hits / max(1, metrics.sr_queries):.1%}")
    print(f"mean wait per lookup: {metrics.mean_latency * 1000:.1f} ms")
    if attack is not None:
        print(f"attack ({args.attack_hours:g} h on root+TLDs):")
        print(f"  SR failures: {result.sr_attack_failure_rate:.2%}")
        print(f"  CS failures: {result.cs_attack_failure_rate:.2%}")
    else:
        print(f"overall SR failures: {metrics.sr_failure_rate:.2%}")
    if observe is not None:
        print(f"observability: {result.event_count:,} events emitted")
        if args.events:
            print(f"  event log written to {args.events}")
        if args.metrics:
            print(f"  metrics dump written to {args.metrics}")
    if timings is not None:
        print(timings.render())
    return 0


@dataclasses.dataclass(frozen=True)
class EventsSpec:
    """Flags for ``repro events`` (flight-recorder replay)."""

    scheme: str = field(default="vanilla", metadata={
        "help": "e.g. vanilla, refresh, a-lfu:5, long-ttl:7, swr, decoupled:7"})
    trace: str = field(default="TRC1", metadata={
        "help": "built-in trace name (TRC1..TRC6)"})
    attack_hours: float = field(default=6.0, metadata={
        "help": "root+TLD attack duration; 0 disables"})
    last: int = field(default=20, metadata={
        "help": "flight-recorder ring size / tail length"})
    out: str | None = field(default=None, metadata={
        "help": "also stream every event to this JSONL file"})
    seed: int = field(default=7, metadata={"help": "scenario seed"})
    scale: Scale | None = field(default=None, metadata={
        "help": "experiment scale (default: $REPRO_SCALE or tiny)"})


def _cmd_events(spec: EventsSpec) -> int:
    """Replay with the flight recorder on and show the event stream."""
    config = parse_scheme(spec.scheme)
    scenario = make_scenario(resolve_scale(spec.scale), seed=spec.seed)
    trace = scenario.trace(spec.trace)
    attack = None
    if spec.attack_hours > 0:
        attack = AttackSpec(start=scenario.attack_start,
                            duration=spec.attack_hours * HOUR)
    observe = ObservationSpec(events_path=spec.out, ring_size=spec.last)
    result = run_replay(scenario.built, trace, config, attack=attack,
                        seed=spec.seed, observe=observe)
    recorder = result.recorder
    if recorder is None:  # pragma: no cover - ring_size >= 1 is enforced
        print("error: flight recorder was not attached", file=sys.stderr)
        return 1
    print(f"trace {trace.name}: {result.event_count:,} events "
          f"({recorder.dropped:,} beyond the {spec.last}-event ring)")
    for kind_value, count in recorder.counts_by_kind().items():
        print(f"  {kind_value:<16} {count:,}")
    print(f"last {len(recorder.last(spec.last))} events:")
    for event in recorder.last(spec.last):
        print(f"  {event.to_json()}")
    if spec.out:
        print(f"event log written to {spec.out}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    try:
        func = _FIGURES[args.number]
    except KeyError:
        print(f"no figure {args.number}; choose from "
              f"{sorted(_FIGURES)}", file=sys.stderr)
        return 2
    scenario = make_scenario(_resolve_scale(args), seed=args.seed)
    kwargs: dict[str, Any] = {}
    if args.traces is not None and args.number != 12:
        kwargs["trace_limit"] = args.traces
    result = func(scenario, **kwargs)
    print(result.render())
    if args.csv:
        _export_figure_csv(args.number, result, args.csv)
        print(f"[csv written to {args.csv}]")
    return 0


def _export_figure_csv(number: int, result: Any, path: str) -> None:
    if number == 3:
        headers, rows = csv_export.cdf_rows(
            result.cdf_days, figures.GAP_DAY_POINTS
        )
    elif number == 12:
        headers, rows = csv_export.memory_series_rows(result.series)
    else:
        headers, rows = csv_export.failure_grid_rows(result)
    csv_export.write_csv(path, headers, rows)


def _cmd_table(args: argparse.Namespace) -> int:
    try:
        func = _TABLES[args.number]
    except KeyError:
        print(f"no table {args.number}; choose from {sorted(_TABLES)}",
              file=sys.stderr)
        return 2
    scenario = make_scenario(_resolve_scale(args), seed=args.seed)
    print(func(scenario).render())
    return 0


def _cmd_trace_generate(args: argparse.Namespace) -> int:
    scenario = make_scenario(_resolve_scale(args), seed=args.seed)
    config = WorkloadConfig(
        duration_days=args.days,
        queries_per_day=args.queries_per_day,
        num_clients=args.clients,
    )
    generator = TraceGenerator(scenario.built.catalog, config, seed=args.seed)
    trace = generator.generate(args.name, stream=args.stream)
    write_trace(trace, args.out)
    print(f"wrote {len(trace):,} queries ({args.days:g} days) to {args.out}")
    return 0


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    trace = read_trace(args.file)
    stats = compute_statistics(trace)
    print(f"trace {stats.name}: {stats.duration_days:g} days")
    print(f"  clients:        {stats.clients:,}")
    print(f"  requests in:    {stats.requests_in:,}")
    print(f"  distinct names: {stats.distinct_names:,}")
    print(f"  distinct zones: {stats.distinct_zones:,} (approximate)")
    return 0


def _experiment_command(
    definition: ExperimentDef,
) -> Callable[[argparse.Namespace], int]:
    """One CLI handler per registry entry: args -> spec -> run -> print."""

    def handler(args: argparse.Namespace) -> int:
        spec = spec_from_args(definition.spec_type, args)
        result = definition.run(spec)
        if isinstance(result, Renderable):
            print(result.render())
        else:  # pragma: no cover - all current experiments render
            print(result)
        return 0

    return handler


@dataclasses.dataclass(frozen=True)
class BenchSpec:
    """Flags for ``repro bench`` (serial-vs-parallel smoke check)."""

    profile: bool = field(default=False, metadata={
        "help": "cProfile the serial leg and print the top 20 functions "
                "by cumulative time (skips the parallel leg)"})
    profile_out: str | None = field(default=None, metadata={
        "help": "also dump pstats data to this path (implies --profile)"})
    workers: int = field(default=4, metadata={
        "help": "worker processes for the parallel leg"})
    seed: int = field(default=7, metadata={"help": "scenario seed"})


def _cmd_bench(spec: BenchSpec) -> int:
    """Smoke-check the parallel runner: serial vs fanned sweep, timed."""
    import time

    from repro.experiments.parallel import ReplaySpec, run_replays

    scenario = make_scenario(Scale.TINY, seed=spec.seed)
    attack = AttackSpec(start=scenario.attack_start, duration=6 * HOUR)
    schemes = (ResilienceConfig.vanilla(), ResilienceConfig.refresh())
    trace_names = ("TRC1", "TRC2")
    specs = [
        ReplaySpec.for_scenario(scenario, trace_name, config, attack=attack)
        for config in schemes
        for trace_name in trace_names
    ]
    total_queries = len(schemes) * sum(
        len(scenario.trace(trace_name)) for trace_name in trace_names
    )
    print(f"bench: {len(specs)} TINY replays "
          f"({total_queries:,} stub queries), {spec.workers} workers")

    if spec.profile or spec.profile_out:
        # Profile the serial leg only: it runs in-process, so cProfile
        # sees the replay hot path (worker processes would not be seen).
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        run_replays(specs, workers=1)
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(20)
        if spec.profile_out:
            stats.dump_stats(spec.profile_out)
            print(f"profile written to {spec.profile_out} "
                  f"(inspect with python -m pstats)")
        return 0

    started = time.perf_counter()  # repro: ignore[REP001] — benchmarking
    serial = run_replays(specs, workers=1)
    serial_seconds = time.perf_counter() - started  # repro: ignore[REP001]
    print(f"serial:   {serial_seconds:6.2f} s "
          f"({total_queries / serial_seconds:,.0f} queries/s)")

    started = time.perf_counter()  # repro: ignore[REP001] — benchmarking
    fanned = run_replays(specs, workers=spec.workers)
    parallel_seconds = time.perf_counter() - started  # repro: ignore[REP001]
    print(f"parallel: {parallel_seconds:6.2f} s "
          f"({total_queries / parallel_seconds:,.0f} queries/s)")

    print(f"speedup:  {serial_seconds / parallel_seconds:.2f}x")
    if fanned != serial:
        print("error: parallel results differ from serial", file=sys.stderr)
        return 1
    print("outputs:  bitwise-identical to serial")
    return 0


def _commands() -> "tuple[CommandDef, ...]":
    """Non-experiment subcommands, registered like experiments are.

    Imported lazily so ``repro events`` does not pay for the serve
    package (and vice versa) until the subcommand actually runs.
    """
    from repro.serve.cli import SERVE_COMMAND

    return (
        CommandDef(
            name="events",
            help="replay with the flight recorder and print the event stream",
            spec_type=EventsSpec,
            handler=_cmd_events,
        ),
        CommandDef(
            name="bench",
            help="time a TINY sweep serial vs parallel (smoke check)",
            spec_type=BenchSpec,
            handler=_cmd_bench,
        ),
        SERVE_COMMAND,
    )


def _command_handler(
    definition: CommandDef,
) -> Callable[[argparse.Namespace], int]:
    """One CLI handler per command entry: args -> spec -> run."""

    def handler(args: argparse.Namespace) -> int:
        spec = spec_from_args(definition.spec_type, args)
        return definition.run(spec)

    return handler


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__.split("\n")[0],
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="library capabilities")
    info.set_defaults(func=_cmd_info)

    replay = subparsers.add_parser("replay", help="replay a trace")
    replay.add_argument("--scheme", default="vanilla",
                        help=f"one of: {scheme_syntax()}")
    replay.add_argument("--trace", default="TRC1",
                        help="built-in trace name (TRC1..TRC6)")
    replay.add_argument("--trace-file", default=None,
                        help="replay a trace file instead of a built-in")
    replay.add_argument("--attack-hours", type=float, default=6.0,
                        help="root+TLD attack duration; 0 disables")
    replay.add_argument("--intensity", type=float, default=1.0,
                        help="attack drop probability (1.0 = blackout)")
    replay.add_argument("--loss", type=float, default=0.0,
                        help="background packet-loss probability")
    replay.add_argument("--retries", type=int, default=0,
                        help="retransmits per server (0 = no retry policy)")
    replay.add_argument("--fetch-budget", type=int, default=0,
                        help="per-query upstream fetch budget (0 = unlimited)")
    replay.add_argument("--nxns-cap", type=int, default=0,
                        help="per-zone NS sub-resolution cap (0 = off)")
    replay.add_argument("--events", default=None, metavar="PATH",
                        help="stream structured events to a JSONL file")
    replay.add_argument("--metrics", default=None, metavar="PATH",
                        help="write a Prometheus-style metrics dump")
    replay.add_argument("--timings", action="store_true",
                        help="report per-stage wall/CPU time")
    replay.add_argument("--validate", action="store_true",
                        help="shadow the cache with the naive oracle and "
                             "check invariants (slow; results unchanged)")
    replay.add_argument("--seed", type=int, default=7)
    _add_scale_argument(replay)
    replay.set_defaults(func=_cmd_replay)

    figure = subparsers.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int)
    figure.add_argument("--traces", type=int, default=None,
                        help="limit the number of traces (speed)")
    figure.add_argument("--seed", type=int, default=7)
    figure.add_argument("--csv", default=None,
                        help="also write the figure's data as CSV")
    _add_scale_argument(figure)
    figure.set_defaults(func=_cmd_figure)

    table = subparsers.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int)
    table.add_argument("--seed", type=int, default=7)
    _add_scale_argument(table)
    table.set_defaults(func=_cmd_table)

    trace = subparsers.add_parser("trace", help="trace utilities")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    generate = trace_sub.add_parser("generate", help="write a synthetic trace")
    generate.add_argument("--out", required=True)
    generate.add_argument("--name", default="TRC-CLI")
    generate.add_argument("--days", type=float, default=7.0)
    generate.add_argument("--queries-per-day", type=float, default=2000.0)
    generate.add_argument("--clients", type=int, default=50)
    generate.add_argument("--stream", type=int, default=99)
    generate.add_argument("--seed", type=int, default=7)
    _add_scale_argument(generate)
    generate.set_defaults(func=_cmd_trace_generate)
    stats = trace_sub.add_parser("stats", help="summarise a trace file")
    stats.add_argument("file")
    stats.set_defaults(func=_cmd_trace_stats)

    for name, definition in EXPERIMENTS.items():
        experiment = subparsers.add_parser(name, help=definition.help)
        add_spec_arguments(experiment, definition.spec_type)
        experiment.set_defaults(func=_experiment_command(definition))

    for command in _commands():
        sub = subparsers.add_parser(command.name, help=command.help)
        add_spec_arguments(sub, command.spec_type)
        sub.set_defaults(func=_command_handler(command))

    from repro.devtools.audit.cli import add_audit_parser
    from repro.devtools.cli import add_check_parser
    from repro.validation.cli import add_validate_parser

    add_check_parser(subparsers)
    add_audit_parser(subparsers)
    add_validate_parser(subparsers)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, FileNotFoundError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
