"""Time-gap measurement (Figure 3).

The paper: "we used these traces to measure the time duration between the
expiration of a zone's IRR and the time the next query was sent to the
zone.  The length of this time-gap is indicative of how well the proposed
schemes can work."

:class:`GapTracker` plugs into :class:`~repro.core.caching_server.
CachingServer` as its ``gap_observer``: the server calls it whenever a
zone's NS set is re-learned after having lapsed, with the elapsed gap and
the published TTL of the lapsed copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cdf import Cdf
from repro.dns.name import Name

DAY = 86400.0


@dataclass(frozen=True, slots=True)
class GapSample:
    """One expiry-to-next-use gap for one zone."""

    zone: Name
    gap_seconds: float
    published_ttl: float

    @property
    def gap_days(self) -> float:
        return self.gap_seconds / DAY

    @property
    def gap_as_ttl_fraction(self) -> float:
        """Gap normalised by the lapsed copy's TTL (Figure 3, lower plot)."""
        if self.published_ttl <= 0:
            return float("inf")
        return self.gap_seconds / self.published_ttl


@dataclass
class GapTracker:
    """Collects gap samples during a replay."""

    samples: list[GapSample] = field(default_factory=list)

    def __call__(self, zone: Name, gap_seconds: float, published_ttl: float) -> None:
        if gap_seconds < 0:
            raise ValueError(f"negative gap {gap_seconds} for {zone}")
        self.samples.append(GapSample(zone, gap_seconds, published_ttl))

    def __len__(self) -> int:
        return len(self.samples)

    def cdf_days(self) -> Cdf:
        """CDF of gaps in days (Figure 3, upper plot)."""
        return Cdf.from_samples(sample.gap_days for sample in self.samples)

    def cdf_ttl_fraction(self) -> Cdf:
        """CDF of gaps as a fraction of the TTL (Figure 3, lower plot)."""
        return Cdf.from_samples(
            sample.gap_as_ttl_fraction for sample in self.samples
        )

    def fraction_below_days(self, days: float) -> float:
        """Share of gaps shorter than ``days`` — the paper's "almost all
        gaps are less than 5 days" check."""
        return self.cdf_days().probability_at_or_below(days)
