"""CSV export of experiment artifacts.

Every result type the experiments produce can be flattened to CSV for
external plotting (gnuplot/matplotlib/R).  The text renderings in
:mod:`repro.analysis.report` are for reading; these are for plotting.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.analysis.cdf import Cdf
from repro.analysis.overhead import MemoryOverheadSeries

if TYPE_CHECKING:  # imported for annotations only: avoids a cycle with
    # repro.experiments, which imports this module for CSV export.
    from repro.experiments.attack_grid import FailureGrid


def write_csv(
    path: Path | str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    """Write rows to ``path`` with a header line."""
    with open(path, "w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def csv_text(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """The CSV as a string (for tests and stdout piping)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def failure_grid_rows(grid: "FailureGrid") -> tuple[tuple[str, ...], list[tuple]]:
    """Flatten a :class:`~repro.experiments.attack_grid.FailureGrid`.

    One row per (trace, column): trace, column, sr_rate, cs_rate.
    """
    headers = ("trace", "column", "sr_failure_rate", "cs_failure_rate")
    rows: list[tuple] = []
    for trace_name, cells in grid.sr.items():
        for column in grid.columns:
            if column not in cells:
                continue
            rows.append(
                (
                    trace_name,
                    column,
                    f"{cells[column]:.6f}",
                    f"{grid.cs[trace_name][column]:.6f}",
                )
            )
    return headers, rows


def cdf_rows(
    cdf: Cdf, points: Sequence[float]
) -> tuple[tuple[str, ...], list[tuple]]:
    """Flatten a CDF evaluated at ``points``."""
    headers = ("x", "cdf")
    rows = [(f"{x:g}", f"{y:.6f}") for x, y in cdf.evaluate(points)]
    return headers, rows


def memory_series_rows(
    series: dict[str, MemoryOverheadSeries]
) -> tuple[tuple[str, ...], list[tuple]]:
    """Flatten Figure 12's per-scheme occupancy time series."""
    headers = ("scheme", "time_days", "zones_cached", "records_cached")
    rows = []
    for label, entry in series.items():
        for sample in entry.samples:
            rows.append(
                (
                    label,
                    f"{sample.time / 86400.0:.4f}",
                    sample.zones_cached,
                    sample.records_cached,
                )
            )
    return headers, rows


def overhead_rows(mean_overhead: dict[str, float]) -> tuple[tuple[str, ...], list[tuple]]:
    """Flatten Table 2's per-scheme message overheads."""
    headers = ("scheme", "message_overhead")
    rows = [
        (label, f"{overhead:.6f}") for label, overhead in mean_overhead.items()
    ]
    return headers, rows
