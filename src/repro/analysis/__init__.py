"""Post-processing: CDFs, gap measurements, overheads, text reports."""

from repro.analysis.cdf import Cdf
from repro.analysis.gaps import GapSample, GapTracker
from repro.analysis.overhead import MemoryOverheadSeries, MessageOverheadTable
from repro.analysis.report import format_table, render_series

__all__ = [
    "Cdf",
    "GapSample",
    "GapTracker",
    "MemoryOverheadSeries",
    "MessageOverheadTable",
    "format_table",
    "render_series",
]
