"""Message and memory overhead accounting (Table 2 and Figure 12).

* :class:`MessageOverheadTable` compares each scheme's outgoing message
  count against the vanilla replay of the same trace (Table 2; negative
  values mean the scheme *reduces* DNS traffic).
* :class:`MemoryOverheadSeries` turns the replay's cache-size samples
  into the zones/records-over-time series of Figure 12, plus the
  "how many times vanilla" ratio the paper quotes (2–3x).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.metrics import MemorySample, ReplayMetrics

DAY = 86400.0

#: Rough per-record cache footprint, bytes.  Used only to express
#: Figure 12's "tens of MBytes" claim in absolute terms; the paper's own
#: estimate is equally coarse.
ESTIMATED_BYTES_PER_RECORD = 120


@dataclass
class MessageOverheadTable:
    """Per-scheme message overhead vs a shared vanilla baseline.

    ``baseline`` (and each recorded scheme) may be a full
    :class:`ReplayMetrics` or the parallel runner's ``ReplaySummary`` —
    anything exposing ``total_outgoing`` and ``message_overhead_vs``.
    """

    baseline: ReplayMetrics
    rows: dict[str, float] = field(default_factory=dict)

    def add_scheme(self, label: str, metrics: ReplayMetrics) -> float:
        """Record a scheme; returns its overhead (e.g. +0.76 = +76 %)."""
        overhead = metrics.message_overhead_vs(self.baseline)
        self.rows[label] = overhead
        return overhead

    def overhead_of(self, label: str) -> float:
        return self.rows[label]

    def as_rows(self) -> list[tuple[str, str]]:
        """(scheme, '+76.0 %') rows, insertion-ordered."""
        return [
            (label, f"{overhead * 100:+.1f} %")
            for label, overhead in self.rows.items()
        ]


@dataclass
class MemoryOverheadSeries:
    """Cache-occupancy time series for one scheme's replay."""

    label: str
    samples: list[MemorySample]

    def zones_series(self) -> list[tuple[float, int]]:
        """(time_days, zones_cached) pairs."""
        return [(s.time / DAY, s.zones_cached) for s in self.samples]

    def records_series(self) -> list[tuple[float, int]]:
        """(time_days, records_cached) pairs."""
        return [(s.time / DAY, s.records_cached) for s in self.samples]

    def peak_records(self) -> int:
        return max((s.records_cached for s in self.samples), default=0)

    def peak_zones(self) -> int:
        return max((s.zones_cached for s in self.samples), default=0)

    def steady_state_mean_records(self, after_days: float = 2.0) -> float:
        """Mean cached records once the cache has warmed up."""
        cutoff = after_days * DAY
        tail = [s.records_cached for s in self.samples if s.time >= cutoff]
        if not tail:
            return 0.0
        return sum(tail) / len(tail)

    def steady_state_mean_zones(self, after_days: float = 2.0) -> float:
        cutoff = after_days * DAY
        tail = [s.zones_cached for s in self.samples if s.time >= cutoff]
        if not tail:
            return 0.0
        return sum(tail) / len(tail)

    def estimated_peak_bytes(self) -> int:
        """Back-of-envelope memory footprint at peak occupancy."""
        return self.peak_records() * ESTIMATED_BYTES_PER_RECORD

    def occupancy_ratio_vs(self, baseline: "MemoryOverheadSeries",
                           after_days: float = 2.0) -> float:
        """Steady-state cached-records ratio vs ``baseline`` (paper: 2-3x)."""
        base = baseline.steady_state_mean_records(after_days)
        if base == 0:
            raise ValueError("baseline series has no steady-state samples")
        return self.steady_state_mean_records(after_days) / base
