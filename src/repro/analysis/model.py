"""Analytical model of IRR cache availability (renewal theory).

The paper evaluates its schemes purely by simulation; this module adds a
closed-form companion model and the machinery to validate it against the
simulator (``experiments.model_validation``).

Model a zone whose authoritative servers the caching server contacts as
a Poisson process with rate ``lam`` (contacts per second), and whose IRR
TTL is ``ttl``.  The probability that the zone's IRRs are cached at a
random instant:

* **vanilla** — the IRR countdown starts at a contact and is *not*
  refreshed; after expiry the next contact restarts it.  Classic
  alternating renewal process: cached fraction ``lam*ttl / (1 + lam*ttl)``.
* **refresh** — every contact restarts the countdown; the IRRs lapse only
  when an inter-contact gap exceeds the TTL.  The long-run uncached
  fraction equals ``E[(gap - ttl)+] / E[gap] = exp(-lam*ttl)`` for
  exponential gaps, so the cached fraction is ``1 - exp(-lam*ttl)``.
* **refresh + renewal with credit C** — each lapse is preceded by up to
  ``C`` funded refetches, extending the effective window to
  ``(1 + C) * ttl``: cached fraction ``1 - exp(-lam*(1+C)*ttl)``.
* **long TTL** — the refresh formula with the overridden TTL.

These are steady-state approximations: they assume Poisson contacts
(ignoring diurnal modulation) and ignore cold-start transients, which is
exactly what the validation experiment quantifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.dns.name import Name


def vanilla_cached_fraction(lam: float, ttl: float) -> float:
    """P(IRRs cached) without refresh: ``lam*ttl / (1 + lam*ttl)``."""
    _check(lam, ttl)
    if lam <= 0.0:
        return 0.0
    return (lam * ttl) / (1.0 + lam * ttl)


def refresh_cached_fraction(lam: float, ttl: float) -> float:
    """P(IRRs cached) with TTL refresh: ``1 - exp(-lam*ttl)``."""
    _check(lam, ttl)
    return 1.0 - math.exp(-lam * ttl)


def renewal_cached_fraction(lam: float, ttl: float, credit: float) -> float:
    """P(IRRs cached) with refresh + credit-C renewal."""
    _check(lam, ttl)
    if credit < 0:
        raise ValueError("credit must be non-negative")
    return 1.0 - math.exp(-lam * (1.0 + credit) * ttl)


def _check(lam: float, ttl: float) -> None:
    if lam < 0:
        raise ValueError("rate must be non-negative")
    if ttl <= 0:
        raise ValueError("ttl must be positive")


@dataclass(frozen=True)
class SchemeModel:
    """A scheme's closed-form cached-fraction predictor."""

    name: str
    kind: str  # "vanilla" | "refresh" | "renewal"
    credit: float = 0.0
    ttl_override: float | None = None

    def cached_fraction(self, lam: float, ttl: float) -> float:
        effective_ttl = self.ttl_override if self.ttl_override else ttl
        if self.kind == "vanilla":
            return vanilla_cached_fraction(lam, effective_ttl)
        if self.kind == "refresh":
            return refresh_cached_fraction(lam, effective_ttl)
        if self.kind == "renewal":
            return renewal_cached_fraction(lam, effective_ttl, self.credit)
        raise ValueError(f"unknown model kind {self.kind!r}")


def predict_cached_zone_count(
    model: SchemeModel,
    contact_rates: Mapping[Name, float],
    irr_ttls: Mapping[Name, float],
) -> float:
    """Expected number of zones with live IRRs at a random instant.

    Sums per-zone probabilities; zones without a known TTL are skipped.
    """
    expected = 0.0
    for zone, lam in contact_rates.items():
        ttl = irr_ttls.get(zone)
        if ttl is None or ttl <= 0:
            continue
        expected += model.cached_fraction(lam, ttl)
    return expected


def predict_zone_survival(
    model: SchemeModel, lam: float, ttl: float
) -> float:
    """Alias for one zone's cached probability (readability helper)."""
    return model.cached_fraction(lam, ttl)
