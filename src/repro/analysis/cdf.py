"""Empirical cumulative distribution functions (Figure 3's plots)."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF over a sample set."""

    sorted_values: tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Cdf":
        return cls(tuple(sorted(samples)))

    def __len__(self) -> int:
        return len(self.sorted_values)

    def probability_at_or_below(self, value: float) -> float:
        """P(X <= value), in [0, 1]; 0 for an empty sample set."""
        if not self.sorted_values:
            return 0.0
        return bisect_right(self.sorted_values, value) / len(self.sorted_values)

    def percentile(self, fraction: float) -> float:
        """The ``fraction``-quantile (nearest-rank).

        Raises:
            ValueError: for an empty CDF or fraction outside [0, 1].
        """
        if not self.sorted_values:
            raise ValueError("empty CDF has no percentiles")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        if fraction <= 0.0:
            return self.sorted_values[0]
        rank = max(0, min(len(self.sorted_values) - 1,
                          int(round(fraction * len(self.sorted_values))) - 1))
        return self.sorted_values[rank]

    def evaluate(self, points: Sequence[float]) -> list[tuple[float, float]]:
        """(x, P(X <= x)) pairs for plotting/printing a figure's series."""
        return [(point, self.probability_at_or_below(point)) for point in points]

    def mean(self) -> float:
        """Sample mean (0 for an empty set)."""
        if not self.sorted_values:
            return 0.0
        return sum(self.sorted_values) / len(self.sorted_values)
