"""Plain-text rendering of tables and figure series.

Benches print their artifacts through these helpers so every reproduced
table/figure has one consistent, diff-able text form (captured in
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """A fixed-width text table.

    Column widths adapt to content; all values are str()-ed.
    """
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(list(headers)))
    lines.append(fmt_line(["-" * width for width in widths]))
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def render_series(
    label: str,
    points: Iterable[tuple[float, float]],
    x_name: str = "x",
    y_name: str = "y",
    y_scale: float = 1.0,
    precision: int = 3,
) -> str:
    """One figure series as '(x, y)' text, e.g. a CDF or a failure curve."""
    parts = [f"{label} [{x_name} -> {y_name}]:"]
    for x, y in points:
        parts.append(f"  ({x:g}, {y * y_scale:.{precision}f})")
    return "\n".join(parts)


def format_percent(value: float, precision: int = 1) -> str:
    """0.0316 -> '3.2 %'."""
    return f"{value * 100:.{precision}f} %"


def render_failure_block(
    title: str,
    rows: dict[str, dict[str, float]],
    column_order: Sequence[str],
) -> str:
    """A figure 4-11 style block: traces as rows, schemes/durations as columns.

    ``rows`` maps trace name -> {column label -> failure fraction}.
    """
    headers = ["trace", *column_order]
    body = []
    for trace_name, cells in rows.items():
        body.append(
            [trace_name]
            + [format_percent(cells.get(column, 0.0)) for column in column_order]
        )
    return format_table(headers, body, title=title)
