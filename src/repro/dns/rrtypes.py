"""Resource-record types and classes.

Only the types the paper's evaluation touches are modelled, plus a few
common ones so realistic zone files can be expressed (MX / TXT / CNAME /
SOA appear in real traces even though the simulator mostly moves A and NS
records around).
"""

from __future__ import annotations

import enum


class RRType(enum.IntEnum):
    """DNS RR TYPE values (RFC 1035 / 3596)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    # DNSSEC types, recognised so the Section-6 "deployment issues"
    # extension (classifying DNSSEC records as infrastructure records)
    # can be expressed.
    DS = 43
    RRSIG = 46
    DNSKEY = 48

    def is_address(self) -> bool:
        """True for types that carry a host address (A / AAAA)."""
        return self in (RRType.A, RRType.AAAA)

    def is_infrastructure_candidate(self) -> bool:
        """True for types that may form part of a zone's IRR set.

        NS records always do; A/AAAA do when they name an authoritative
        server (glue); DS/DNSKEY do under the DNSSEC extension (paper §6).
        """
        return self in (
            RRType.NS,
            RRType.A,
            RRType.AAAA,
            RRType.DS,
            RRType.DNSKEY,
        )


#: Bits reserved for the rrtype in a packed ``(name.iid << RRTYPE_BITS) |
#: rrtype`` cache key.  Every modelled type must fit; the assertion below
#: keeps a future type addition from silently corrupting packed keys.
RRTYPE_BITS = 6

for _rrtype in RRType:
    if int(_rrtype) >= (1 << RRTYPE_BITS):  # pragma: no cover - layout guard
        raise ImportError(
            f"RRType.{_rrtype.name} exceeds RRTYPE_BITS; "
            f"widen the packed-key layout"
        )
del _rrtype


class RRClass(enum.IntEnum):
    """DNS CLASS values.  Everything in this project is IN."""

    IN = 1
    CH = 3
