"""Domain names as immutable, case-insensitive label sequences.

A :class:`Name` stores its labels most-significant-last, exactly like the
textual form reads: ``Name.from_text("www.ucla.edu")`` has labels
``("www", "ucla", "edu")``.  The root name has no labels.

Names are value objects: hashable, totally ordered by canonical DNS
ordering (reversed label comparison), and interned per-process so that the
simulator's hot paths can compare and hash them cheaply.
"""

from __future__ import annotations

from repro.dns.errors import NameParseError
from repro.dns.rrtypes import RRTYPE_BITS, RRType

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255

_LABEL_OK = frozenset("abcdefghijklmnopqrstuvwxyz0123456789-_")

# Process-wide intern table.  Names are tiny and the simulator re-creates
# the same handful of thousands of names millions of times; interning keeps
# both memory and equality checks cheap.
_INTERN: dict[tuple[str, ...], "Name"] = {}

# Dense id registry: `_BY_ID[name.iid] is name`.  Ids are handed out at
# intern time, so they are deterministic whenever the build order is —
# zone construction and trace generation intern every name in a fixed
# order before the replay hot path runs, which is what lets caches key on
# the id instead of the object (DESIGN.md §13).
_BY_ID: list["Name"] = []

_NS_CODE = int(RRType.NS)


class Name:
    """An immutable domain name.

    Use :meth:`from_text` or :func:`root_name` to construct instances;
    the raw constructor assumes already-validated lowercase labels.
    """

    __slots__ = ("labels", "iid", "_hash", "_ancestors", "_wire_length",
                 "_ns_chain")

    # Fill-only memos on an interned immutable class; `repro audit`
    # (REP010) proves nothing outside __new__ writes the label data
    # they are derived from.
    # repro: memo(ancestors: field=_ancestors, depends=[labels],
    #   invalidator=none)
    # repro: memo(ns_chain: field=_ns_chain, depends=[labels, iid],
    #   invalidator=none)
    # repro: memo(wire_length: field=_wire_length, depends=[labels],
    #   invalidator=none)

    labels: tuple[str, ...]
    iid: int
    """Dense intern id; stable for the life of the process and
    deterministic given a deterministic build order."""

    def __new__(cls, labels: tuple[str, ...]) -> "Name":
        cached = _INTERN.get(labels)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "iid", len(_BY_ID))
        object.__setattr__(self, "_hash", hash(labels))
        object.__setattr__(self, "_ancestors", None)
        object.__setattr__(self, "_ns_chain", None)
        object.__setattr__(
            self, "_wire_length", sum(len(label) + 1 for label in labels) + 1
        )
        _BY_ID.append(self)
        _INTERN[labels] = self
        return self

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Name is immutable")

    # -- construction --------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse a textual domain name.

        Accepts both absolute (``"ucla.edu."``) and relative-looking
        (``"ucla.edu"``) forms; all names are treated as fully qualified.
        ``""`` and ``"."`` denote the root.

        Raises:
            NameParseError: if a label is empty, too long, or contains a
                character outside ``[a-z0-9-_]`` (case-insensitive).
        """
        if text in ("", "."):
            return _ROOT
        stripped = text[:-1] if text.endswith(".") else text
        labels = []
        for raw_label in stripped.split("."):
            label = raw_label.lower()
            if not label:
                raise NameParseError(f"empty label in {text!r}")
            if len(label) > MAX_LABEL_LENGTH:
                raise NameParseError(
                    f"label {label!r} exceeds {MAX_LABEL_LENGTH} octets"
                )
            if not set(label) <= _LABEL_OK:
                raise NameParseError(f"bad character in label {label!r}")
            labels.append(label)
        name = cls(tuple(labels))
        if name.wire_length() > MAX_NAME_LENGTH:
            raise NameParseError(f"name {text!r} exceeds {MAX_NAME_LENGTH} octets")
        return name

    # -- structure -----------------------------------------------------

    @property
    def is_root(self) -> bool:
        """True for the DNS root name."""
        return not self.labels

    def parent(self) -> "Name":
        """The name with the leftmost label removed.

        Raises:
            ValueError: when called on the root, which has no parent.
        """
        if self.is_root:
            raise ValueError("the root name has no parent")
        return Name(self.labels[1:])

    def child(self, label: str) -> "Name":
        """Prepend ``label``, producing a direct child of this name."""
        label = label.lower()
        if not label or len(label) > MAX_LABEL_LENGTH or not set(label) <= _LABEL_OK:
            raise NameParseError(f"bad label {label!r}")
        return Name((label,) + self.labels)

    def is_subdomain_of(self, other: "Name") -> bool:
        """True when this name equals ``other`` or lies beneath it."""
        n_other = len(other.labels)
        if n_other > len(self.labels):
            return False
        return n_other == 0 or self.labels[-n_other:] == other.labels

    def ancestors(self) -> tuple["Name", ...]:
        """Every ancestor from this name itself up to the root, as a tuple.

        ``Name.from_text("www.ucla.edu").ancestors()`` returns
        ``(www.ucla.edu, ucla.edu, edu, .)`` in that order.  The chain is
        computed once per interned name and reused — resolver hot paths
        (``best_zone_for``, DNSSEC chain walks) call this per query.
        """
        chain = self._ancestors
        if chain is None:
            labels = self.labels
            chain = tuple(
                Name(labels[index:]) for index in range(len(labels) + 1)
            )
            # Memoised fill of a slot derived purely from the immutable
            # labels; safe under interning.
            object.__setattr__(self, "_ancestors", chain)  # repro: ignore[REP006]
        return chain

    def ns_chain(self) -> tuple[tuple["Name", int], ...]:
        """``(ancestor, packed NS cache key)`` pairs, deepest first.

        Covers every non-root ancestor including the name itself; the
        packed key is ``(ancestor.iid << RRTYPE_BITS) | RRType.NS``, i.e.
        exactly what :class:`~repro.core.cache.DnsCache` stores NS entries
        under.  Precomputing the pairs turns ``best_zone_for`` — run once
        or more per query — into a flat walk over an interned tuple with
        no per-call key construction.
        """
        chain = self._ns_chain
        if chain is None:
            chain = tuple(
                (ancestor, (ancestor.iid << RRTYPE_BITS) | _NS_CODE)
                for ancestor in self.ancestors()
                if ancestor.labels
            )
            object.__setattr__(self, "_ns_chain", chain)  # repro: ignore[REP006]
        return chain

    def common_ancestor(self, other: "Name") -> "Name":
        """The deepest name that is an ancestor of both names."""
        shared: list[str] = []
        for mine, theirs in zip(reversed(self.labels), reversed(other.labels)):
            if mine != theirs:
                break
            shared.append(mine)
        shared.reverse()
        return Name(tuple(shared))

    def depth(self) -> int:
        """Number of labels (0 for the root, 1 for a TLD, ...)."""
        return len(self.labels)

    def wire_length(self) -> int:
        """Length of the RFC 1035 wire encoding in octets.

        Each label costs len+1 (length octet), plus the terminating zero;
        precomputed at intern time since message sizing sums this for
        every record of every response.
        """
        return self._wire_length

    # -- value semantics -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        # Interning makes identity equality; fall back for robustness
        # against unpickled instances.
        if self is other:
            return True
        if not isinstance(other, Name):
            return NotImplemented
        return self.labels == other.labels

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return tuple(reversed(self.labels)) < tuple(reversed(other.labels))

    def __le__(self, other: "Name") -> bool:
        return self == other or self < other

    def __gt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return other < self

    def __ge__(self, other: "Name") -> bool:
        return self == other or other < self

    def __str__(self) -> str:
        if self.is_root:
            return "."
        return ".".join(self.labels) + "."

    def __repr__(self) -> str:
        return f"Name({str(self)!r})"

    def __reduce__(
        self,
    ) -> "tuple[type[Name], tuple[tuple[str, ...]]]":  # pragma: no cover
        return (Name, (self.labels,))


_ROOT = Name(())


def root_name() -> Name:
    """The DNS root name (zero labels)."""
    return _ROOT


def name_for_id(iid: int) -> Name:
    """The interned :class:`Name` carrying ``iid``.

    Raises:
        IndexError: for an id no name has been assigned yet.
    """
    return _BY_ID[iid]


def intern_count() -> int:
    """How many distinct names this process has interned."""
    return len(_BY_ID)
