"""DNS substrate: names, resource records, messages, zones and servers.

This package implements, from scratch, the minimal-but-faithful slice of
the DNS data model and server behaviour that the paper's trace-driven
simulator needs:

* :mod:`repro.dns.name` -- domain names as immutable label sequences.
* :mod:`repro.dns.rrtypes` -- record types and classes.
* :mod:`repro.dns.records` -- resource records, RRsets and infrastructure
  record (IRR) bundles.
* :mod:`repro.dns.message` -- queries and responses with answer /
  authority / additional sections and response codes.
* :mod:`repro.dns.zone` -- authoritative zone data with delegations and
  glue.
* :mod:`repro.dns.server` -- the authoritative name-server lookup
  algorithm (answers, referrals, NXDOMAIN).
* :mod:`repro.dns.ranking` -- RFC 2181 trust ranking used by caches to
  decide whether newly learned data may replace cached data.
"""

from repro.dns.errors import (
    DnsError,
    LameDelegationError,
    NameParseError,
    ZoneConfigError,
)
from repro.dns.message import Message, Question, Rcode
from repro.dns.name import Name, root_name
from repro.dns.ranking import Rank
from repro.dns.records import InfrastructureRecordSet, ResourceRecord, RRset
from repro.dns.rrtypes import RRClass, RRType
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone, ZoneBuilder

__all__ = [
    "AuthoritativeServer",
    "DnsError",
    "InfrastructureRecordSet",
    "LameDelegationError",
    "Message",
    "Name",
    "NameParseError",
    "Question",
    "Rank",
    "Rcode",
    "ResourceRecord",
    "RRClass",
    "RRset",
    "RRType",
    "Zone",
    "ZoneBuilder",
    "ZoneConfigError",
    "root_name",
]
