"""Exception hierarchy for the DNS substrate."""


class DnsError(Exception):
    """Base class for all errors raised by :mod:`repro.dns`."""


class NameParseError(DnsError, ValueError):
    """A textual domain name could not be parsed.

    Raised for empty labels (``"a..b"``), oversized labels (> 63 octets),
    oversized names (> 255 octets) and labels with forbidden characters.
    """


class ZoneConfigError(DnsError, ValueError):
    """A zone was built with inconsistent data.

    Examples: records outside the zone's bailiwick, a delegation at the
    apex, or missing NS records for the apex.
    """


class LameDelegationError(DnsError):
    """A server was asked about a zone it is not authoritative for."""


class InvariantError(DnsError, RuntimeError):
    """An internal consistency guarantee was broken.

    Raised where the code used to ``assert``: unlike asserts, these
    checks survive ``python -O``, so corrupted state (a CNAME whose
    rdata is not a name, a referral without a child zone) fails loudly
    instead of silently skewing figures.
    """
