"""Simulated DNSSEC material (paper §6, deployment issues).

The paper notes that DNSSEC "introduces a number of new records for
authentication.  Some of them can be classified as new infrastructure
resource records.  Thus under a DNSSEC deployment we extend the refresh,
renewal and long-TTL techniques to accommodate these new IRRs."

This module provides exactly the slice of DNSSEC the simulator needs:
DNSKEY and DS RRsets whose *rdata are opaque tokens*, not real
cryptographic material.  What the evaluation measures is cache/TTL
behaviour of the records and the availability consequences of a broken
chain — neither depends on actual signatures, so none are computed
(documented substitution, see DESIGN.md).

Simplification: a signed zone's IRR bundle carries both its DNSKEY set
and its DS set (canonically the DS lives only at the parent).  Both ride
the same referral/answer sections either way, so cache dynamics are
unchanged.
"""

from __future__ import annotations

from repro.dns.name import Name
from repro.dns.records import InfrastructureRecordSet, ResourceRecord, RRset
from repro.dns.rrtypes import RRType


def make_dnskey_rrset(zone: Name, ttl: float, generation: int = 0) -> RRset:
    """The zone's (simulated) key set: one KSK and one ZSK token."""
    return RRset.from_records(
        [
            ResourceRecord(zone, RRType.DNSKEY, ttl,
                           f"ksk-{zone}-g{generation}"),
            ResourceRecord(zone, RRType.DNSKEY, ttl,
                           f"zsk-{zone}-g{generation}"),
        ]
    )


def make_ds_rrset(zone: Name, ttl: float, generation: int = 0) -> RRset:
    """The delegation-signer digest the parent publishes for ``zone``."""
    return RRset.from_records(
        [ResourceRecord(zone, RRType.DS, ttl, f"ds-{zone}-g{generation}")]
    )


def sign_irrs(
    irrs: InfrastructureRecordSet, generation: int = 0
) -> InfrastructureRecordSet:
    """Attach DNSKEY + DS infrastructure sets to a zone's IRRs.

    TTLs follow the NS set, so the long-TTL override covers them too.
    """
    ttl = irrs.ns.ttl
    return irrs.with_dnssec(
        (
            make_dnskey_rrset(irrs.zone, ttl, generation),
            make_ds_rrset(irrs.zone, ttl, generation),
        )
    )


def chain_is_verifiable(
    cached_dnskey_zones: set[Name], qname: Name, signed_zones: set[Name]
) -> bool:
    """Whether every signed zone on ``qname``'s chain has a live key.

    Used by the resolver's validation mode: a lookup in a signed
    namespace is only as available as the keys of every signed ancestor.
    """
    for ancestor in qname.ancestors():
        if ancestor in signed_zones and ancestor not in cached_dnskey_zones:
            return False
    return True
