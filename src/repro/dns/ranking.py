"""RFC 2181 §5.4.1 trust ranking for cached data.

When a caching server hears the same RRset from several places — glue in a
parent's referral, the authority section of a child's answer, the answer
section itself — it must decide which copy to keep.  The paper leans on
this rule: "the CS ought to replace the cached IRRs that come from the
parent with the IRRs that come from the child zone" [RFC 2181].

Higher enum values outrank lower ones; equal-rank data may refresh the
cached copy (that is exactly the paper's TTL-refresh switch).
"""

from __future__ import annotations

import enum


class Rank(enum.IntEnum):
    """Trust levels, lowest to highest."""

    ADDITIONAL = 1
    """Glue / additional-section data from a non-authoritative referral."""

    NON_AUTH_AUTHORITY = 2
    """Authority-section NS data in a referral (parent-side copy)."""

    AUTH_AUTHORITY = 3
    """Authority/additional data in an authoritative answer (child-side)."""

    AUTH_ANSWER = 4
    """Answer-section data from an authoritative response."""

    def may_replace(self, incumbent: "Rank") -> bool:
        """Whether data of this rank may overwrite data of ``incumbent``."""
        return self >= incumbent


def section_rank(section: str, authoritative: bool) -> Rank:
    """Rank for a record heard in ``section`` of a response.

    Args:
        section: one of ``"answer"``, ``"authority"``, ``"additional"``.
        authoritative: the response's AA bit.

    Raises:
        ValueError: for an unknown section label.
    """
    if section == "answer":
        return Rank.AUTH_ANSWER if authoritative else Rank.NON_AUTH_AUTHORITY
    if section == "authority":
        return Rank.AUTH_AUTHORITY if authoritative else Rank.NON_AUTH_AUTHORITY
    if section == "additional":
        return Rank.AUTH_AUTHORITY if authoritative else Rank.ADDITIONAL
    raise ValueError(f"unknown message section {section!r}")
