"""Resource records, RRsets and infrastructure record (IRR) bundles.

The paper's central object is the *infrastructure resource record set* of
a zone: the NS records naming the zone's authoritative servers together
with the address (A) records of those servers.
:class:`InfrastructureRecordSet` packages exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.dns.name import Name
from repro.dns.rrtypes import RRTYPE_BITS, RRClass, RRType


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """A single DNS resource record.

    ``data`` is a :class:`~repro.dns.name.Name` for name-valued types
    (NS, CNAME, PTR, SRV targets) and a string for everything else
    (dotted-quad text for A, arbitrary text for TXT...).

    ``ttl`` is the record's time-to-live in seconds as published by the
    authoritative zone; caches track the remaining lifetime separately.
    """

    name: Name
    rrtype: RRType
    ttl: float
    data: Name | str
    rrclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ValueError(f"negative TTL {self.ttl} on {self.name}")
        name_valued = self.rrtype in (RRType.NS, RRType.CNAME, RRType.PTR)
        if name_valued and not isinstance(self.data, Name):
            raise TypeError(f"{self.rrtype.name} rdata must be a Name")

    def with_ttl(self, ttl: float) -> "ResourceRecord":
        """A copy of this record carrying a different TTL."""
        return replace(self, ttl=ttl)

    def wire_size(self) -> int:
        """Approximate RFC 1035 wire encoding size in octets.

        Owner name + TYPE/CLASS/TTL/RDLENGTH (10) + rdata.  Name-valued
        rdata uses the name's wire length; A/AAAA their fixed sizes; text
        rdata its byte length.  No compression is modelled (the counts
        feed traffic *ratios*, where the constant factor cancels).
        """
        if isinstance(self.data, Name):
            rdata = self.data.wire_length()
        elif self.rrtype == RRType.A:
            rdata = 4
        elif self.rrtype == RRType.AAAA:
            rdata = 16
        else:
            rdata = len(str(self.data))
        return self.name.wire_length() + 10 + rdata

    def key(self) -> tuple[Name, RRType]:
        """The (owner name, type) cache key this record files under."""
        return (self.name, self.rrtype)

    def __str__(self) -> str:
        return f"{self.name} {int(self.ttl)} {self.rrclass.name} {self.rrtype.name} {self.data}"


@dataclass(frozen=True, slots=True)
class RRset:
    """All records sharing one owner name and type.

    DNS caches operate on RRsets, not individual records (RFC 2181 §5):
    an answer either replaces the whole set or none of it.  All member
    records must agree on name, type and TTL.
    """

    name: Name
    rrtype: RRType
    ttl: float
    records: tuple[ResourceRecord, ...]
    _data_key: tuple = field(init=False, repr=False, compare=False, hash=False)
    _key: tuple = field(init=False, repr=False, compare=False, hash=False)
    _ikey: int = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("an RRset must contain at least one record")
        for record in self.records:
            if record.name != self.name or record.rrtype != self.rrtype:
                raise ValueError(
                    f"record {record} does not belong in RRset "
                    f"({self.name}, {self.rrtype.name})"
                )
        # Precomputed so the cache's hot same-data comparison is O(1)-ish
        # and ``key()`` allocates no tuple on the put path.
        object.__setattr__(
            self, "_data_key", tuple(record.data for record in self.records)
        )
        object.__setattr__(self, "_key", (self.name, self.rrtype))
        object.__setattr__(
            self, "_ikey", (self.name.iid << RRTYPE_BITS) | int(self.rrtype)
        )

    @classmethod
    def from_records(cls, records: Iterable[ResourceRecord]) -> "RRset":
        """Bundle records into an RRset, normalising TTLs to the minimum.

        RFC 2181 §5.2: records of one RRset should share a TTL; when they
        do not, resolvers treat the set as having the lowest.
        """
        record_list = sorted(records, key=lambda r: str(r.data))
        if not record_list:
            raise ValueError("cannot build an RRset from no records")
        ttl = min(record.ttl for record in record_list)
        name = record_list[0].name
        rrtype = record_list[0].rrtype
        normalised = tuple(record.with_ttl(ttl) for record in record_list)
        return cls(name=name, rrtype=rrtype, ttl=ttl, records=normalised)

    def with_ttl(self, ttl: float) -> "RRset":
        """A copy of this RRset (and every member) with a new TTL."""
        return RRset(
            name=self.name,
            rrtype=self.rrtype,
            ttl=ttl,
            records=tuple(record.with_ttl(ttl) for record in self.records),
        )

    def data_values(self) -> tuple[Name | str, ...]:
        """The rdata values, in canonical order."""
        return self._data_key

    def same_data(self, other: "RRset") -> bool:
        """True when both sets carry identical rdata (TTL ignored)."""
        return (
            self.name == other.name
            and self.rrtype == other.rrtype
            and self._data_key == other._data_key
        )

    def key(self) -> tuple[Name, RRType]:
        """The (owner name, type) cache key (precomputed)."""
        return self._key

    def ikey(self) -> int:
        """The packed intern-id cache key (precomputed).

        Layout matches :func:`repro.core.cache.cache_key`:
        ``(name.iid << RRTYPE_BITS) | rrtype``.
        """
        return self._ikey

    def __iter__(self) -> Iterator[ResourceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


_DNSSEC_IRR_TYPES = (RRType.DNSKEY, RRType.DS, RRType.RRSIG)


@dataclass(frozen=True, slots=True)
class InfrastructureRecordSet:
    """The IRRs of one zone: its NS RRset plus server address RRsets.

    This is the unit the paper's refresh / renewal / long-TTL schemes act
    on.  ``glue`` holds the A RRsets for the in-bailiwick server names
    (out-of-bailiwick server addresses live in their own zones and are
    resolved separately).

    ``dnssec`` carries the zone's DNSSEC infrastructure records (DNSKEY /
    DS) for signed zones — paper §6 classifies these as new IRRs that the
    refresh/renewal/long-TTL techniques must also cover.
    """

    zone: Name
    ns: RRset
    glue: tuple[RRset, ...] = field(default=())
    dnssec: tuple[RRset, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.ns.rrtype != RRType.NS:
            raise ValueError("IRR set requires an NS RRset")
        if self.ns.name != self.zone:
            raise ValueError(
                f"NS RRset owner {self.ns.name} does not match zone {self.zone}"
            )
        for rrset in self.glue:
            if not rrset.rrtype.is_address():
                raise ValueError(f"glue RRset {rrset.name} is not an address set")
        for rrset in self.dnssec:
            if rrset.rrtype not in _DNSSEC_IRR_TYPES:
                raise ValueError(
                    f"{rrset.rrtype.name} RRset is not DNSSEC infrastructure"
                )

    @property
    def is_signed(self) -> bool:
        """Whether the zone publishes DNSSEC infrastructure records."""
        return bool(self.dnssec)

    def server_names(self) -> tuple[Name, ...]:
        """The authoritative server names listed in the NS RRset."""
        return tuple(record.data for record in self.ns)  # type: ignore[misc]

    def glue_for(self, server: Name) -> RRset | None:
        """The glue address RRset for ``server``, if carried."""
        for rrset in self.glue:
            if rrset.name == server:
                return rrset
        return None

    def all_rrsets(self) -> tuple[RRset, ...]:
        """NS, glue and DNSSEC sets — everything a cache stores."""
        return (self.ns, *self.glue, *self.dnssec)

    def record_count(self) -> int:
        """Total individual records across NS, glue and DNSSEC sets."""
        return sum(len(rrset) for rrset in self.all_rrsets())

    def min_ttl(self) -> float:
        """The smallest TTL across the IRR sets (governs cache lifetime)."""
        return min(rrset.ttl for rrset in self.all_rrsets())

    def with_ttl(self, ttl: float) -> "InfrastructureRecordSet":
        """A copy with every member RRset re-stamped to ``ttl``.

        This is the zone-operator "long TTL" knob from the paper: only
        infrastructure records are touched (DNSSEC IRRs included, per the
        §6 extension).
        """
        return InfrastructureRecordSet(
            zone=self.zone,
            ns=self.ns.with_ttl(ttl),
            glue=tuple(rrset.with_ttl(ttl) for rrset in self.glue),
            dnssec=tuple(rrset.with_ttl(ttl) for rrset in self.dnssec),
        )

    def with_dnssec(self, dnssec: tuple[RRset, ...]) -> "InfrastructureRecordSet":
        """A copy carrying the given DNSSEC infrastructure sets."""
        return InfrastructureRecordSet(
            zone=self.zone, ns=self.ns, glue=self.glue, dnssec=dnssec
        )
