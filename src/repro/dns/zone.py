"""Authoritative zone data: apex records, in-zone data, delegations, glue.

A :class:`Zone` owns the records for every name from its apex down to (but
not across) its delegation cuts.  It knows three kinds of things:

* its **apex IRRs** — its own NS RRset plus glue addresses for its
  in-bailiwick server names (the child-side copy of the zone's
  infrastructure records);
* **authoritative data** — every other RRset inside the zone;
* **delegations** — for each child zone, the parent-side copy of the
  child's IRRs (NS plus whatever glue the parent carries).

Build zones through :class:`ZoneBuilder`, which validates bailiwick and
delegation invariants before the zone is used.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.annotations import invalidates
from repro.dns.errors import ZoneConfigError
from repro.dns.name import Name
from repro.dns.records import InfrastructureRecordSet, ResourceRecord, RRset
from repro.dns.rrtypes import RRType

if TYPE_CHECKING:
    from repro.dns.message import Message


class Zone:
    """One DNS zone's authoritative content.

    Instances are produced by :class:`ZoneBuilder`; treat them as
    read-mostly.  The only sanctioned mutation is
    :meth:`set_infrastructure_ttl`, which models the zone operator
    raising the TTL of the zone's own IRRs (the paper's "long TTL" knob).
    """

    # The audited memo contract (enforced by `repro audit`, REP010):
    # every method that mutates a dependency field must reach the
    # declared invalidator, or the memoized responses go stale.
    # repro: memo(response: field=_response_cache,
    #   depends=[_apex_irrs, _rrsets, _delegations, _existing_names,
    #   soa_minimum], invalidator=_invalidate_response_cache)
    # repro: memo(irr_sections: field=_irr_sections,
    #   depends=[_apex_irrs], invalidator=_invalidate_response_cache)

    def __init__(
        self,
        name: Name,
        apex_irrs: InfrastructureRecordSet,
        rrsets: dict[tuple[Name, RRType], RRset],
        delegations: dict[Name, InfrastructureRecordSet],
        soa_minimum: float | None = None,
    ) -> None:
        self.name = name
        self._apex_irrs = apex_irrs
        self._rrsets = rrsets
        self._delegations = delegations
        self._irr_sections: tuple[tuple[RRset, ...], tuple[RRset, ...]] | None = None
        # Memoized responses keyed by packed (qname iid, rrtype) question
        # key.  Zone content only changes through the operator-action
        # methods below, each of which clears this; replay traffic asks
        # the same few questions millions of times, so answering from
        # here turns the whole answering algorithm into one dict hit.
        self._response_cache: dict[int, Message] = {}
        #: RFC 2308 negative-caching TTL; None when the zone has no SOA.
        self.soa_minimum = soa_minimum
        # Every name that exists in the zone (for NXDOMAIN decisions),
        # including empty non-terminals and delegation points.
        self._existing_names: set[Name] = {name}
        for owner, _ in rrsets:
            self._add_existing(owner)
        for child in delegations:
            self._add_existing(child)
        for rrset in apex_irrs.glue:
            self._add_existing(rrset.name)

    def _add_existing(self, owner: Name) -> None:
        for ancestor in owner.ancestors():
            if not ancestor.is_subdomain_of(self.name):
                break
            if ancestor == self.name:
                break
            self._existing_names.add(ancestor)
        self._existing_names.add(self.name)
        # Memoized NXDOMAIN answers key off name existence; a name
        # appearing after the fact (new glue) must drop them.  During
        # __init__ the cache is empty, so the clear is a no-op there.
        self._invalidate_response_cache()

    @invalidates("response", "irr_sections")
    def _invalidate_response_cache(self) -> None:
        """Drop every memoized view of zone content.

        The single funnel all operator actions go through; `repro audit`
        proves each dependency-field mutator reaches it.
        """
        self._irr_sections = None
        self._response_cache.clear()

    # -- reads -----------------------------------------------------------

    @property
    def infrastructure_records(self) -> InfrastructureRecordSet:
        """The zone's own (child-side) IRR set."""
        return self._apex_irrs

    def soa_rrset(self) -> RRset | None:
        """The apex SOA RRset, if the zone has one."""
        return self._rrsets.get((self.name, RRType.SOA))

    def infrastructure_sections(self) -> tuple[tuple[RRset, ...], tuple[RRset, ...]]:
        """The apex IRRs as (authority, additional) response sections.

        Cached because every authoritative answer carries them.
        """
        if self._irr_sections is None:
            irrs = self._apex_irrs
            # DNSSEC IRRs (paper §6) ride the additional section so the
            # refresh/renewal machinery sees them with every answer.
            self._irr_sections = ((irrs.ns,), irrs.glue + irrs.dnssec)
        return self._irr_sections

    def cached_response(self, question_key: int) -> Message | None:
        """A memoized response for a packed question key, if one is stored."""
        return self._response_cache.get(question_key)

    def store_response(self, question_key: int, message: Message) -> None:
        """Memoize the response for a question against this zone's content."""
        self._response_cache[question_key] = message

    def lookup(self, name: Name, rrtype: RRType) -> RRset | None:
        """The authoritative RRset for (name, type), if present.

        Apex NS and glue lookups are served from the IRR set so there is a
        single source of truth for infrastructure data.
        """
        if name == self.name and rrtype == RRType.NS:
            return self._apex_irrs.ns
        if name == self.name and rrtype in (RRType.DNSKEY, RRType.DS):
            for rrset in self._apex_irrs.dnssec:
                if rrset.rrtype == rrtype:
                    return rrset
            return None
        if rrtype.is_address():
            glue = self._apex_irrs.glue_for(name)
            if glue is not None and glue.rrtype == rrtype:
                return glue
        return self._rrsets.get((name, rrtype))

    def name_exists(self, name: Name) -> bool:
        """Whether ``name`` exists in this zone (any type, or non-terminal)."""
        return name in self._existing_names

    def delegation_covering(self, name: Name) -> InfrastructureRecordSet | None:
        """The delegation whose subtree contains ``name``, if any.

        Returns the parent-side IRRs for the deepest child cut that is an
        ancestor of (or equals) ``name``.
        """
        # Walk from name upward to (exclusive) the apex.
        current = name
        while current != self.name:
            child = self._delegations.get(current)
            if child is not None:
                return child
            if current.is_root:
                break
            current = current.parent()
        return None

    def delegations(self) -> Iterator[InfrastructureRecordSet]:
        """All child delegations (parent-side IRR copies)."""
        return iter(self._delegations.values())

    def child_zone_names(self) -> tuple[Name, ...]:
        """Names of all directly delegated child zones."""
        return tuple(self._delegations)

    def rrsets(self) -> Iterator[RRset]:
        """All non-infrastructure authoritative RRsets."""
        return iter(self._rrsets.values())

    def record_count(self) -> int:
        """Total records: apex IRRs + data + delegation copies."""
        total = self._apex_irrs.record_count()
        total += sum(len(rrset) for rrset in self._rrsets.values())
        total += sum(irrs.record_count() for irrs in self._delegations.values())
        return total

    # -- operator actions --------------------------------------------------

    def set_infrastructure_ttl(self, ttl: float) -> None:
        """Raise/replace the TTL on this zone's own IRRs (long-TTL scheme).

        Only infrastructure records change; data records keep their TTLs,
        so CDN-style short-TTL host records are unaffected (paper §4).
        """
        self._apex_irrs = self._apex_irrs.with_ttl(ttl)
        self._invalidate_response_cache()

    def replace_infrastructure_records(self, irrs: InfrastructureRecordSet) -> None:
        """Swap the zone's own IRR set (operator changed name servers).

        Raises:
            ZoneConfigError: when the new set belongs to a different zone.
        """
        if irrs.zone != self.name:
            raise ZoneConfigError(
                f"IRRs for {irrs.zone} cannot serve zone {self.name}"
            )
        self._apex_irrs = irrs
        self._invalidate_response_cache()
        for rrset in irrs.glue:
            self._add_existing(rrset.name)

    def set_delegation_ttl(self, child: Name, ttl: float) -> None:
        """Re-stamp the parent-side copy of ``child``'s IRRs.

        Raises:
            KeyError: when ``child`` is not delegated from this zone.
        """
        self._delegations[child] = self._delegations[child].with_ttl(ttl)
        self._invalidate_response_cache()

    def irr_snapshot(self) -> tuple:
        """Opaque snapshot of apex IRRs and delegation copies.

        Pair with :meth:`restore_irr_snapshot`; lets experiment harnesses
        apply the long-TTL override and undo it afterwards so schemes can
        share one built hierarchy.
        """
        return (self._apex_irrs, dict(self._delegations))

    def restore_irr_snapshot(self, snapshot: tuple) -> None:
        """Undo TTL overrides applied since :meth:`irr_snapshot`."""
        apex, delegations = snapshot
        self._apex_irrs = apex
        self._delegations = delegations
        self._invalidate_response_cache()

    def replace_delegation(self, irrs: InfrastructureRecordSet) -> None:
        """Point an existing delegation at a new server set.

        Models the parent reclaiming/transferring a delegation (paper §6
        deployment discussion).

        Raises:
            KeyError: when the zone has no delegation for ``irrs.zone``.
        """
        if irrs.zone not in self._delegations:
            raise KeyError(f"{self.name} does not delegate {irrs.zone}")
        self._delegations[irrs.zone] = irrs
        self._invalidate_response_cache()

    def add_delegation(self, irrs: InfrastructureRecordSet) -> None:
        """Delegate a new child zone after the fact (zone graft).

        Models a registrant registering a fresh name under this zone —
        the entry point the NXNS adversary uses to plant its zone.

        Raises:
            ZoneConfigError: when the child is not a direct child of the
                apex, or is already delegated.
        """
        child = irrs.zone
        if child.parent() != self.name:
            raise ZoneConfigError(
                f"{child} is not a direct child of {self.name}"
            )
        if child in self._delegations:
            raise ZoneConfigError(f"{self.name} already delegates {child}")
        self._delegations[child] = irrs
        self._add_existing(child)

    def remove_delegation(self, child: Name) -> InfrastructureRecordSet:
        """Withdraw a delegation added by :meth:`add_delegation`.

        Returns the removed parent-side IRRs (so a graft can be undone
        symmetrically).

        Raises:
            KeyError: when ``child`` is not delegated from this zone.
        """
        if child not in self._delegations:
            raise KeyError(f"{self.name} does not delegate {child}")
        irrs = self._delegations.pop(child)
        self._existing_names.discard(child)
        self._invalidate_response_cache()
        return irrs

    def __repr__(self) -> str:
        return (
            f"Zone({self.name}, rrsets={len(self._rrsets)}, "
            f"delegations={len(self._delegations)})"
        )


class ZoneBuilder:
    """Incrementally assemble and validate a :class:`Zone`.

    Usage::

        builder = ZoneBuilder(Name.from_text("ucla.edu"))
        builder.add_ns("ns1.ucla.edu", "164.67.128.1", ttl=86400)
        builder.add_record(ResourceRecord(...))
        builder.delegate(child_irrs)
        zone = builder.build()
    """

    def __init__(self, name: Name, default_ttl: float = 3600.0) -> None:
        self.name = name
        self.default_ttl = default_ttl
        self._ns_records: list[ResourceRecord] = []
        self._glue: dict[Name, list[ResourceRecord]] = {}
        self._records: dict[tuple[Name, RRType], list[ResourceRecord]] = {}
        self._delegations: dict[Name, InfrastructureRecordSet] = {}
        self._dnssec: tuple[RRset, ...] = ()
        self._soa_minimum: float | None = None

    def set_dnssec(self, rrsets: tuple[RRset, ...]) -> "ZoneBuilder":
        """Attach DNSSEC infrastructure sets to the zone's apex IRRs."""
        self._dnssec = rrsets
        return self

    def set_soa(
        self,
        mname: Name | str | None = None,
        rname: str = "hostmaster",
        serial: int = 1,
        minimum: float = 3600.0,
        ttl: float | None = None,
    ) -> "ZoneBuilder":
        """Give the zone an SOA record (drives RFC 2308 negative TTLs).

        ``minimum`` is the negative-caching TTL resolvers honour for
        NXDOMAIN/NODATA answers from this zone.
        """
        if minimum <= 0:
            raise ZoneConfigError("SOA minimum must be positive")
        primary = (
            Name.from_text(mname) if isinstance(mname, str)
            else mname or self.name.child("ns1")
        )
        ttl_value = self.default_ttl if ttl is None else ttl
        rdata = f"{primary} {rname}.{self.name} {serial} {int(minimum)}"
        record = ResourceRecord(self.name, RRType.SOA, ttl_value, rdata)
        self._records[(self.name, RRType.SOA)] = [record]
        self._soa_minimum = minimum
        return self

    def add_ns(
        self,
        server: Name | str,
        address: str | None = None,
        ttl: float | None = None,
    ) -> "ZoneBuilder":
        """Declare an authoritative server for this zone's apex.

        ``address`` must be given when the server name is in-bailiwick
        (glue is then mandatory); out-of-bailiwick servers may omit it.
        """
        server_name = Name.from_text(server) if isinstance(server, str) else server
        ttl_value = self.default_ttl if ttl is None else ttl
        self._ns_records.append(
            ResourceRecord(self.name, RRType.NS, ttl_value, server_name)
        )
        in_bailiwick = server_name.is_subdomain_of(self.name)
        if address is not None:
            self._glue.setdefault(server_name, []).append(
                ResourceRecord(server_name, RRType.A, ttl_value, address)
            )
        elif in_bailiwick:
            raise ZoneConfigError(
                f"in-bailiwick server {server_name} of {self.name} needs glue"
            )
        return self

    def add_ns_record(self, record: ResourceRecord) -> "ZoneBuilder":
        """Add a pre-built apex NS record (for out-of-bailiwick servers).

        No glue is required or recorded; resolvers must chase the server
        name through its own zone.
        """
        if record.rrtype != RRType.NS or record.name != self.name:
            raise ZoneConfigError(
                f"add_ns_record needs an apex NS record, got {record}"
            )
        self._ns_records.append(record)
        return self

    def add_record(self, record: ResourceRecord) -> "ZoneBuilder":
        """Add an authoritative data record (must be in-bailiwick)."""
        if not record.name.is_subdomain_of(self.name):
            raise ZoneConfigError(
                f"{record.name} is outside zone {self.name}"
            )
        self._records.setdefault(record.key(), []).append(record)
        return self

    def add_address(
        self, name: Name | str, address: str, ttl: float | None = None
    ) -> "ZoneBuilder":
        """Convenience: add an A record for a host in this zone."""
        owner = Name.from_text(name) if isinstance(name, str) else name
        ttl_value = self.default_ttl if ttl is None else ttl
        return self.add_record(ResourceRecord(owner, RRType.A, ttl_value, address))

    def delegate(self, child_irrs: InfrastructureRecordSet) -> "ZoneBuilder":
        """Record a delegation: the parent-side copy of a child's IRRs."""
        child = child_irrs.zone
        if child == self.name:
            raise ZoneConfigError("a zone cannot delegate its own apex")
        if not child.is_subdomain_of(self.name):
            raise ZoneConfigError(f"{child} is not under {self.name}")
        if child in self._delegations:
            raise ZoneConfigError(f"duplicate delegation for {child}")
        self._delegations[child] = child_irrs
        return self

    def build(self) -> Zone:
        """Validate and produce the zone.

        Raises:
            ZoneConfigError: when the apex has no NS records, or a data
                record falls inside a delegated subtree.
        """
        if not self._ns_records:
            raise ZoneConfigError(f"zone {self.name} has no apex NS records")
        ns_rrset = RRset.from_records(self._ns_records)
        glue_rrsets = tuple(
            RRset.from_records(records) for records in self._glue.values()
        )
        apex = InfrastructureRecordSet(self.name, ns_rrset, glue_rrsets,
                                       self._dnssec)

        rrsets: dict[tuple[Name, RRType], RRset] = {}
        for key, records in self._records.items():
            owner, _ = key
            for child in self._delegations:
                if owner.is_subdomain_of(child):
                    raise ZoneConfigError(
                        f"record {owner} lies inside delegated subtree {child}"
                    )
            rrsets[key] = RRset.from_records(records)
        return Zone(self.name, apex, rrsets, dict(self._delegations),
                    soa_minimum=self._soa_minimum)
