"""RFC 1035-style text zone files: parsing and serialisation.

Lets zones move in and out of the simulator as ordinary master files, so
real-world zone data can seed experiments and synthetic zones can be
inspected with standard tools.  The supported dialect is the practical
core of the master-file format:

* ``$ORIGIN`` and ``$TTL`` directives;
* relative and absolute owner names, ``@`` for the origin;
* blank owner fields inheriting the previous owner;
* ``;`` comments and blank lines;
* record types A, AAAA, NS, CNAME, MX, TXT, PTR, DS, DNSKEY.

Unsupported (rejected, never silently mangled): parenthesised multi-line
records, ``$INCLUDE``, class fields other than IN, and escapes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.dns.errors import ZoneConfigError
from repro.dns.name import Name
from repro.dns.records import InfrastructureRecordSet, ResourceRecord, RRset
from repro.dns.rrtypes import RRType
from repro.dns.zone import Zone, ZoneBuilder

_NAME_VALUED = (RRType.NS, RRType.CNAME, RRType.PTR)
_SUPPORTED = frozenset(
    ["A", "AAAA", "NS", "CNAME", "MX", "TXT", "PTR", "DS", "DNSKEY", "SOA"]
)


class ZoneFileError(ZoneConfigError):
    """A zone file could not be parsed."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def parse_zone_text(
    text: str, origin: Name | str | None = None, default_ttl: float = 3600.0
) -> list[ResourceRecord]:
    """Parse master-file text into resource records.

    ``origin`` seeds ``$ORIGIN``; a file-level ``$ORIGIN`` directive
    overrides it.  Raises :class:`ZoneFileError` on malformed input.
    """
    if isinstance(origin, str):
        origin = Name.from_text(origin)
    current_ttl = default_ttl
    previous_owner: Name | None = None
    records: list[ResourceRecord] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        if "(" in line or ")" in line:
            raise ZoneFileError(line_number, "multi-line records unsupported")

        if line.startswith("$"):
            origin, current_ttl = _apply_directive(
                line, line_number, origin, current_ttl
            )
            continue

        owner_is_blank = line[0] in " \t"
        fields = line.split()
        if owner_is_blank:
            if previous_owner is None:
                raise ZoneFileError(line_number, "no previous owner to inherit")
            owner = previous_owner
        else:
            owner = _resolve_name(fields.pop(0), origin, line_number)
            previous_owner = owner

        ttl, fields = _take_ttl(fields, current_ttl, line_number)
        fields = _drop_class(fields, line_number)
        if not fields:
            raise ZoneFileError(line_number, "missing record type")
        type_token = fields.pop(0).upper()
        if type_token not in _SUPPORTED:
            raise ZoneFileError(line_number, f"unsupported type {type_token}")
        rrtype = RRType[type_token]
        records.append(
            _build_record(owner, rrtype, ttl, fields, origin, line_number)
        )
    return records


def _apply_directive(
    line: str, line_number: int, origin: Name | None, current_ttl: float
) -> tuple[Name | None, float]:
    fields = line.split()
    directive = fields[0].upper()
    if directive == "$ORIGIN":
        if len(fields) != 2:
            raise ZoneFileError(line_number, "$ORIGIN needs one argument")
        return Name.from_text(fields[1]), current_ttl
    if directive == "$TTL":
        if len(fields) != 2:
            raise ZoneFileError(line_number, "$TTL needs one argument")
        try:
            return origin, float(fields[1])
        except ValueError:
            raise ZoneFileError(line_number, f"bad TTL {fields[1]!r}") from None
    raise ZoneFileError(line_number, f"unsupported directive {directive}")


def _resolve_name(token: str, origin: Name | None, line_number: int) -> Name:
    if token == "@":
        if origin is None:
            raise ZoneFileError(line_number, "@ used without $ORIGIN")
        return origin
    if token.endswith("."):
        return Name.from_text(token)
    if origin is None:
        raise ZoneFileError(
            line_number, f"relative name {token!r} without $ORIGIN"
        )
    name = origin
    for label in reversed(token.split(".")):
        name = name.child(label)
    return name


def _take_ttl(
    fields: list[str], default: float, line_number: int
) -> tuple[float, list[str]]:
    if fields and fields[0].isdigit():
        return float(fields[0]), fields[1:]
    return default, fields


def _drop_class(fields: list[str], line_number: int) -> list[str]:
    if fields and fields[0].upper() in ("IN", "CH"):
        if fields[0].upper() != "IN":
            raise ZoneFileError(line_number, "only class IN is supported")
        return fields[1:]
    return fields


def _build_record(
    owner: Name,
    rrtype: RRType,
    ttl: float,
    fields: list[str],
    origin: Name | None,
    line_number: int,
) -> ResourceRecord:
    if rrtype in _NAME_VALUED:
        if len(fields) != 1:
            raise ZoneFileError(line_number, f"{rrtype.name} needs one target")
        return ResourceRecord(
            owner, rrtype, ttl, _resolve_name(fields[0], origin, line_number)
        )
    if rrtype == RRType.MX:
        if len(fields) != 2 or not fields[0].isdigit():
            raise ZoneFileError(line_number, "MX needs 'priority target'")
        return ResourceRecord(owner, rrtype, ttl, f"{fields[0]} {fields[1]}")
    if not fields:
        raise ZoneFileError(line_number, f"{rrtype.name} needs rdata")
    return ResourceRecord(owner, rrtype, ttl, " ".join(fields))


def load_zone(
    text: str, origin: Name | str, default_ttl: float = 3600.0
) -> Zone:
    """Parse master-file text into a served :class:`Zone`.

    Apex NS records become the zone's IRRs (with any A records for the
    named servers as glue); NS records for names *below* the apex become
    delegations; DNSKEY/DS records at the apex become DNSSEC IRRs.
    """
    origin_name = Name.from_text(origin) if isinstance(origin, str) else origin
    records = parse_zone_text(text, origin=origin_name, default_ttl=default_ttl)
    builder = ZoneBuilder(origin_name, default_ttl=default_ttl)

    by_key: dict[tuple[Name, RRType], list[ResourceRecord]] = {}
    for record in records:
        by_key.setdefault(record.key(), []).append(record)

    apex_ns = by_key.pop((origin_name, RRType.NS), None)
    if apex_ns is None:
        raise ZoneConfigError(f"zone {origin_name} has no apex NS records")
    glue_owners = set()
    for record in apex_ns:
        server = record.data
        if not isinstance(server, Name):
            raise ZoneConfigError(f"NS rdata {server!r} is not a name")
        glue = by_key.get((server, RRType.A))
        if glue is not None and server.is_subdomain_of(origin_name):
            glue_owners.add(server)
            builder.add_ns(server, str(glue[0].data), ttl=record.ttl)
        else:
            builder.add_ns_record(record)

    dnssec_sets = []
    for rrtype in (RRType.DNSKEY, RRType.DS):
        sets = by_key.pop((origin_name, rrtype), None)
        if sets:
            dnssec_sets.append(RRset.from_records(sets))
    if dnssec_sets:
        builder.set_dnssec(tuple(dnssec_sets))

    # Delegations: NS sets below the apex, with their glue.
    delegation_names = [
        owner for (owner, rrtype) in by_key
        if rrtype == RRType.NS and owner != origin_name
    ]
    for child in delegation_names:
        ns_records = by_key.pop((child, RRType.NS))
        glue_sets = []
        for record in ns_records:
            server = record.data
            if not isinstance(server, Name):
                raise ZoneConfigError(f"NS rdata {server!r} is not a name")
            if not server.is_subdomain_of(child):
                # Not glue: the server's address belongs to the enclosing
                # zone (or another zone entirely), not to the delegation.
                continue
            glue = by_key.pop((server, RRType.A), None)
            if glue is not None:
                glue_owners.add(server)
                glue_sets.append(RRset.from_records(glue))
        builder.delegate(
            InfrastructureRecordSet(
                child, RRset.from_records(ns_records), tuple(glue_sets)
            )
        )

    for (owner, rrtype), group in by_key.items():
        if rrtype == RRType.A and owner in glue_owners:
            continue  # already filed as glue
        for record in group:
            builder.add_record(record)
    return builder.build()


def load_zone_file(
    path: Path | str, origin: Name | str, default_ttl: float = 3600.0
) -> Zone:
    """Load a zone from a master file on disk."""
    with open(path, "r", encoding="ascii") as handle:
        return load_zone(handle.read(), origin, default_ttl)


def dump_zone(zone: Zone) -> str:
    """Serialise a zone back to master-file text (round-trippable)."""
    lines = [f"$ORIGIN {zone.name}", "$TTL 3600"]
    irrs = zone.infrastructure_records
    for record in irrs.ns:
        lines.append(_format_record(record))
    for rrset in irrs.glue:
        for record in rrset:
            lines.append(_format_record(record))
    for rrset in irrs.dnssec:
        for record in rrset:
            lines.append(_format_record(record))
    for rrset in sorted(zone.rrsets(), key=lambda r: (r.name, r.rrtype)):
        for record in rrset:
            lines.append(_format_record(record))
    for delegation in sorted(zone.delegations(), key=lambda d: d.zone):
        for record in delegation.ns:
            lines.append(_format_record(record))
        for rrset in delegation.glue:
            for record in rrset:
                lines.append(_format_record(record))
    return "\n".join(lines) + "\n"


def _format_record(record: ResourceRecord) -> str:
    return (
        f"{record.name} {int(record.ttl)} IN {record.rrtype.name} {record.data}"
    )


def records_to_text(records: Iterable[ResourceRecord]) -> str:
    """Serialise loose records (no zone structure) to master-file lines."""
    return "\n".join(_format_record(record) for record in records) + "\n"
