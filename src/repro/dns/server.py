"""The authoritative name-server answering algorithm.

A single :class:`AuthoritativeServer` may serve many zones (exactly like
production servers host thousands).  Given a question it picks the deepest
zone it is authoritative for, then produces one of:

* an **authoritative answer** — AA set, requested RRsets in the answer
  section, and, crucially for the paper, the zone's own IRRs in the
  authority + additional sections (this is what TTL-refresh feeds on);
* a **referral** — no answer, the child zone's NS in authority and glue in
  additional, AA clear;
* **NXDOMAIN** / **NODATA** for names/types that do not exist.

CNAMEs are chased while the target stays inside the same zone.
"""

from __future__ import annotations

from typing import Iterable

from repro.dns.errors import LameDelegationError, ZoneConfigError
from repro.dns.message import Message, Question, Rcode
from repro.dns.name import Name
from repro.dns.records import InfrastructureRecordSet, RRset
from repro.dns.rrtypes import RRTYPE_BITS, RRClass, RRType
from repro.dns.zone import Zone

_MAX_CNAME_CHAIN = 8


class AuthoritativeServer:
    """A name server authoritative for one or more zones."""

    def __init__(self, name: Name, address: str) -> None:
        self.name = name
        self.address = address
        self._zones: dict[Name, Zone] = {}
        # qname iid -> deepest hosted zone (or None); cleared whenever the
        # served-zone set changes.  The ancestor walk is short but sits on
        # the hot path of every single answered query.
        # repro: memo(deepest: field=_deepest, depends=[_zones],
        #   invalidator=none)
        self._deepest: dict[int, Zone | None] = {}

    def serve_zone(self, zone: Zone) -> None:
        """Register this server as authoritative for ``zone``."""
        self._zones[zone.name] = zone
        self._deepest.clear()

    def withdraw_zone(self, zone_name: Name) -> bool:
        """Stop answering for a zone (delegation moved elsewhere).

        Afterwards queries for that namespace raise
        :class:`LameDelegationError` — the server has gone lame for it,
        exactly like a decommissioned-but-running production server.
        Returns whether the zone was being served.
        """
        self._deepest.clear()
        return self._zones.pop(zone_name, None) is not None

    def zones_served(self) -> tuple[Name, ...]:
        """Apex names of every zone this server answers for."""
        return tuple(self._zones)

    def is_authoritative_for(self, zone_name: Name) -> bool:
        """Whether this server hosts the zone with apex ``zone_name``."""
        return zone_name in self._zones

    def deepest_zone_for(self, qname: Name) -> Zone | None:
        """The most specific hosted zone whose bailiwick contains ``qname``."""
        memo = self._deepest
        iid = qname.iid
        if iid in memo:
            return memo[iid]
        found: Zone | None = None
        zones = self._zones
        for ancestor in qname.ancestors():
            zone = zones.get(ancestor)
            if zone is not None:
                found = zone
                break
        memo[iid] = found
        return found

    # -- answering --------------------------------------------------------

    def respond(self, question: Question) -> Message:
        """Answer a question, per the standard authoritative algorithm.

        Raises:
            LameDelegationError: when no hosted zone covers the question —
                the server has been asked about namespace it does not own
                (the resolver treats this like a server failure).
        """
        zone = self.deepest_zone_for(question.name)
        if zone is None:
            raise LameDelegationError(
                f"server {self.name} is not authoritative for {question.name}"
            )

        # Responses are a pure function of (question, zone content), so
        # they are memoized on the zone itself (shared across all servers
        # hosting it) and invalidated by the zone's operator actions.
        cacheable = question.rrclass is RRClass.IN
        key = (question.name.iid << RRTYPE_BITS) | int(question.rrtype)
        if cacheable:
            cached = zone.cached_response(key)
            if cached is not None:
                return cached

        delegation = zone.delegation_covering(question.name)
        if delegation is not None:
            # Below a cut the parent only refers; if this server also
            # hosts the child, the child was already picked as the
            # deepest zone and we never get here.
            response = self._referral(question, delegation)
        else:
            response = self._authoritative_answer(question, zone)
        if cacheable:
            zone.store_response(key, response)
        return response

    def _referral(
        self, question: Question, delegation: InfrastructureRecordSet
    ) -> Message:
        """A downward referral carrying the child's parent-side IRRs."""
        return Message(
            question=question,
            rcode=Rcode.NOERROR,
            authoritative=False,
            answer=(),
            authority=(delegation.ns,),
            additional=delegation.glue + delegation.dnssec,
        )

    def _authoritative_answer(self, question: Question, zone: Zone) -> Message:
        answer_sets: list[RRset] = []
        qname = question.name
        for _ in range(_MAX_CNAME_CHAIN):
            direct = zone.lookup(qname, question.rrtype)
            if direct is not None:
                answer_sets.append(direct)
                break
            cname = zone.lookup(qname, RRType.CNAME)
            if cname is not None and question.rrtype != RRType.CNAME:
                answer_sets.append(cname)
                target = cname.records[0].data
                if not isinstance(target, Name):
                    raise ZoneConfigError(
                        f"CNAME rdata {target!r} at {qname} is not a name"
                    )
                if not target.is_subdomain_of(zone.name):
                    break  # resolver must chase the tail elsewhere
                qname = target
                continue
            break

        authority, additional = self._infrastructure_sections(zone)
        if answer_sets:
            return Message(
                question=question,
                rcode=Rcode.NOERROR,
                authoritative=True,
                answer=tuple(answer_sets),
                authority=authority,
                additional=additional,
            )
        # Negative answers (RFC 2308): the authority section carries the
        # SOA so resolvers know the negative-caching TTL — not the NS set
        # (so negative answers are never mistaken for refresh vehicles).
        soa = zone.soa_rrset()
        negative_authority = (soa,) if soa is not None else authority
        if zone.name_exists(qname):
            return Message(
                question=question,
                rcode=Rcode.NOERROR,
                authoritative=True,
                answer=(),
                authority=negative_authority,
                additional=(),
            )
        return Message(
            question=question,
            rcode=Rcode.NXDOMAIN,
            authoritative=True,
            answer=(),
            authority=negative_authority,
            additional=(),
        )

    @staticmethod
    def _infrastructure_sections(
        zone: Zone,
    ) -> tuple[tuple[RRset, ...], tuple[RRset, ...]]:
        """The zone's own IRRs as (authority, additional) sections.

        Every authoritative response carries these; whether the cache uses
        them to refresh TTLs is the resolver-side policy the paper studies.
        """
        return zone.infrastructure_sections()

    def __repr__(self) -> str:
        return f"AuthoritativeServer({self.name} @ {self.address}, zones={len(self._zones)})"


def servers_for(
    irrs: InfrastructureRecordSet, directory: Iterable[AuthoritativeServer]
) -> list[AuthoritativeServer]:
    """The servers from ``directory`` named by ``irrs``'s NS set."""
    wanted = set(irrs.server_names())
    return [server for server in directory if server.name in wanted]
