"""DNS queries and responses.

The simulator exchanges :class:`Message` objects instead of wire-format
packets; a message carries the same three record sections a real response
does, because the paper's TTL-refresh mechanism lives entirely in how a
caching server treats the authority and additional sections of ordinary
responses.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.dns.name import Name
from repro.dns.ranking import Rank, section_rank
from repro.dns.records import RRset
from repro.dns.rrtypes import RRClass, RRType

_query_ids = itertools.count(1)

IngestRow = tuple[RRset, Rank, bool, bool, bool, bool]
"""One precomputed ingest step: ``(rrset, rank, is_ns, static_irr,
is_address, is_dnssec_key)``.  The booleans are the static parts of the
caching server's infrastructure classification — everything except the
known-server-name check, which depends on resolver state."""

IngestPlan = tuple[tuple[Name, ...], tuple[IngestRow, ...]]

_DNSSEC_IRR = (RRType.DNSKEY, RRType.DS, RRType.RRSIG)
_DNSSEC_KEY = (RRType.DNSKEY, RRType.DS)


class Rcode(enum.IntEnum):
    """Response codes (RFC 1035 §4.1.1)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclass(frozen=True, slots=True)
class Question:
    """The question section: one (name, type, class) triple."""

    name: Name
    rrtype: RRType
    rrclass: RRClass = RRClass.IN

    def __str__(self) -> str:
        return f"{self.name} {self.rrclass.name} {self.rrtype.name}"

    # Fill-only memo on a frozen class: nothing may mutate the
    # dependency fields, so no invalidator exists by construction.
    # repro: memo(wire_size: field=_wire_size, depends=[name],
    #   invalidator=none)
    _wire_size: int = field(default=-1, init=False, repr=False, compare=False)

    def wire_size(self) -> int:
        """Approximate query size in octets (header + question)."""
        size = self._wire_size
        if size < 0:
            size = 12 + self.name.wire_length() + 4
            object.__setattr__(self, "_wire_size", size)  # repro: ignore[REP006]
        return size


@dataclass(frozen=True, slots=True)
class Message:
    """A DNS response message.

    ``authoritative`` mirrors the AA bit: set when the answering server is
    authoritative for the question's zone, clear on referrals.  The
    distinction drives RFC 2181 ranking in the cache.
    """

    question: Question
    rcode: Rcode = Rcode.NOERROR
    authoritative: bool = False
    answer: tuple[RRset, ...] = ()
    authority: tuple[RRset, ...] = ()
    additional: tuple[RRset, ...] = ()
    message_id: int = field(default_factory=lambda: next(_query_ids))
    forged: bool = field(default=False, compare=False)
    """Simulator ground truth: set on adversary-injected responses so
    the cache can account poison dwell time.  Resolver *behaviour* never
    branches on it — a real resolver cannot see this bit."""
    # Memo slots: responses are immutable, and with authoritative-side
    # response caching the same Message object is served (and ingested)
    # many times, so size/section walks are paid once per object.
    # All three are fill-only memos on a frozen class — `repro audit`
    # (REP010) proves no code mutates their dependency fields.
    # repro: memo(wire_size: field=_wire_size,
    #   depends=[question, answer, authority, additional],
    #   invalidator=none)
    _wire_size: int = field(default=-1, init=False, repr=False, compare=False)
    # repro: memo(sections: field=_sections,
    #   depends=[answer, authority, additional], invalidator=none)
    _sections: tuple[RRset, ...] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    # repro: memo(plan: field=_plan,
    #   depends=[answer, authority, additional, authoritative],
    #   invalidator=none)
    _plan: IngestPlan | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def is_referral(self) -> bool:
        """True for a downward referral: non-authoritative, no answer, NS
        records in authority.

        The AA check matters: an *authoritative* NODATA response also
        carries the zone's NS set in its authority section, but it is a
        terminal answer, not a referral.
        """
        return (
            self.rcode == Rcode.NOERROR
            and not self.authoritative
            and not self.answer
            and any(rrset.rrtype == RRType.NS for rrset in self.authority)
        )

    def is_name_error(self) -> bool:
        """True when the queried name does not exist."""
        return self.rcode == Rcode.NXDOMAIN

    def is_nodata(self) -> bool:
        """True for NOERROR with no answer and no referral (empty answer)."""
        return (
            self.rcode == Rcode.NOERROR
            and not self.answer
            and not self.is_referral()
        )

    def referral_zone(self) -> Name | None:
        """The delegated zone a referral points at, or None."""
        for rrset in self.authority:
            if rrset.rrtype == RRType.NS:
                return rrset.name
        return None

    def all_rrsets(self) -> tuple[RRset, ...]:
        """Every RRset in the message, section order preserved."""
        sections = self._sections
        if sections is None:
            sections = self.answer + self.authority + self.additional
            object.__setattr__(self, "_sections", sections)  # repro: ignore[REP006]
        return sections

    def record_count(self) -> int:
        """Total records across all three sections."""
        return sum(len(rrset) for rrset in self.all_rrsets())

    def wire_size(self) -> int:
        """Approximate response size in octets (header + question + RRs)."""
        size = self._wire_size
        if size < 0:
            size = 12 + self.question.name.wire_length() + 4
            for rrset in self.all_rrsets():
                size += sum(record.wire_size() for record in rrset)
            object.__setattr__(self, "_wire_size", size)  # repro: ignore[REP006]
        return size

    def ingest_plan(self) -> IngestPlan:
        """What a caching server files from this response, precomputed.

        Returns ``(ns_targets, ranked)``: the server names every NS RRset
        points at, and one :data:`IngestRow` per RRset carrying its RFC
        2181 rank plus the static infrastructure-classification flags.
        Everything depends only on the message's immutable sections and
        AA bit, so the walk is done once per Message object.
        """
        plan = self._plan
        if plan is None:
            ns_targets = tuple(
                record.data
                for rrset in self.all_rrsets()
                if rrset.rrtype == RRType.NS
                for record in rrset
                if isinstance(record.data, Name)
            )
            auth = self.authoritative
            ranked = tuple(
                (
                    rrset,
                    rank,
                    rrset.rrtype == RRType.NS,
                    rrset.rrtype == RRType.NS or rrset.rrtype in _DNSSEC_IRR,
                    rrset.rrtype.is_address(),
                    rrset.rrtype in _DNSSEC_KEY,
                )
                for section, rank in (
                    (self.answer, section_rank("answer", auth)),
                    (self.authority, section_rank("authority", auth)),
                    (self.additional, section_rank("additional", auth)),
                )
                for rrset in section
            )
            plan = (ns_targets, ranked)
            object.__setattr__(self, "_plan", plan)  # repro: ignore[REP006]
        return plan

    def __str__(self) -> str:
        parts = [
            f"id={self.message_id} {self.rcode.name}"
            f"{' aa' if self.authoritative else ''} q=({self.question})"
        ]
        for section_name, section in (
            ("an", self.answer),
            ("au", self.authority),
            ("ad", self.additional),
        ):
            for rrset in section:
                for record in rrset:
                    parts.append(f"  {section_name}: {record}")
        return "\n".join(parts)
