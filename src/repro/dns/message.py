"""DNS queries and responses.

The simulator exchanges :class:`Message` objects instead of wire-format
packets; a message carries the same three record sections a real response
does, because the paper's TTL-refresh mechanism lives entirely in how a
caching server treats the authority and additional sections of ordinary
responses.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.dns.name import Name
from repro.dns.records import RRset
from repro.dns.rrtypes import RRClass, RRType

_query_ids = itertools.count(1)


class Rcode(enum.IntEnum):
    """Response codes (RFC 1035 §4.1.1)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclass(frozen=True, slots=True)
class Question:
    """The question section: one (name, type, class) triple."""

    name: Name
    rrtype: RRType
    rrclass: RRClass = RRClass.IN

    def __str__(self) -> str:
        return f"{self.name} {self.rrclass.name} {self.rrtype.name}"

    def wire_size(self) -> int:
        """Approximate query size in octets (header + question)."""
        return 12 + self.name.wire_length() + 4


@dataclass(frozen=True, slots=True)
class Message:
    """A DNS response message.

    ``authoritative`` mirrors the AA bit: set when the answering server is
    authoritative for the question's zone, clear on referrals.  The
    distinction drives RFC 2181 ranking in the cache.
    """

    question: Question
    rcode: Rcode = Rcode.NOERROR
    authoritative: bool = False
    answer: tuple[RRset, ...] = ()
    authority: tuple[RRset, ...] = ()
    additional: tuple[RRset, ...] = ()
    message_id: int = field(default_factory=lambda: next(_query_ids))

    def is_referral(self) -> bool:
        """True for a downward referral: non-authoritative, no answer, NS
        records in authority.

        The AA check matters: an *authoritative* NODATA response also
        carries the zone's NS set in its authority section, but it is a
        terminal answer, not a referral.
        """
        return (
            self.rcode == Rcode.NOERROR
            and not self.authoritative
            and not self.answer
            and any(rrset.rrtype == RRType.NS for rrset in self.authority)
        )

    def is_name_error(self) -> bool:
        """True when the queried name does not exist."""
        return self.rcode == Rcode.NXDOMAIN

    def is_nodata(self) -> bool:
        """True for NOERROR with no answer and no referral (empty answer)."""
        return (
            self.rcode == Rcode.NOERROR
            and not self.answer
            and not self.is_referral()
        )

    def referral_zone(self) -> Name | None:
        """The delegated zone a referral points at, or None."""
        for rrset in self.authority:
            if rrset.rrtype == RRType.NS:
                return rrset.name
        return None

    def all_rrsets(self) -> tuple[RRset, ...]:
        """Every RRset in the message, section order preserved."""
        return self.answer + self.authority + self.additional

    def record_count(self) -> int:
        """Total records across all three sections."""
        return sum(len(rrset) for rrset in self.all_rrsets())

    def wire_size(self) -> int:
        """Approximate response size in octets (header + question + RRs)."""
        size = 12 + self.question.name.wire_length() + 4
        for rrset in self.all_rrsets():
            size += sum(record.wire_size() for record in rrset)
        return size

    def __str__(self) -> str:
        parts = [
            f"id={self.message_id} {self.rcode.name}"
            f"{' aa' if self.authoritative else ''} q=({self.question})"
        ]
        for section_name, section in (
            ("an", self.answer),
            ("au", self.authority),
            ("ad", self.additional),
        ):
            for rrset in section:
                for record in rrset:
                    parts.append(f"  {section_name}: {record}")
        return "\n".join(parts)
