"""Graceful-degradation sweep: attack intensity × retry policy.

The paper's attack model is binary — a targeted server answers nothing
for the whole window.  Real DDoS events are messier: congestion drops
*some* fraction of queries, and resolver-side retransmit policy decides
how much of that loss the stub resolvers ever see.  This experiment
sweeps the fault-injection layer's per-query attack ``intensity``
(DESIGN.md §11) against a ladder of :class:`~repro.core.config.
RetryPolicy` aggressiveness and reports, per policy, the *knee*: the
smallest intensity whose attack-window SR failure rate exceeds a
threshold.  A scheme degrades gracefully when its knee sits near 1.0
(only a near-blackout hurts) and sharply when a modest loss rate
already pushes user-visible failures past the threshold.

All cells are independent replays and fan out through the batch runner
(``$REPRO_WORKERS``); the hash-keyed fault draws keep every cell
byte-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.config import ResilienceConfig, RetryPolicy
from repro.core.schemes import parse_scheme
from repro.experiments.harness import AttackSpec
from repro.experiments.parallel import ReplaySpec, run_replays
from repro.experiments.registry import resolve_scale
from repro.experiments.scenarios import Scale, make_scenario
from repro.simulation.faults import FaultSpec

HOUR = 3600.0


@dataclass(frozen=True)
class DegradationSpec:
    """Declarative degradation-sweep request (the registry's spec)."""

    scale: Scale | None = None
    seed: int = 7
    scheme: str = "refresh"
    trace_name: str = "TRC1"
    attack_hours: float = 6.0
    intensities: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)
    """Attack drop probabilities swept as columns (1.0 = blackout)."""

    retry_tries: tuple[int, ...] = (1, 2, 3)
    """``max_tries`` per policy row; 0 means no retry policy (baseline)."""

    loss: float = 0.0
    """Background packet loss applied everywhere, attack or not."""

    holddown: float = 900.0
    """Dead-server hold-down seconds for the retry rows; <= 0 disables."""

    knee_threshold: float = 0.05
    """SR failure rate a cell must exceed to count as degraded."""

    fetch_budget: int = 0
    """Per-query upstream fetch budget (DESIGN.md §16); 0 = unlimited."""

    nxns_cap: int = 0
    """Per-zone-visit NS sub-resolution cap (DESIGN.md §16); 0 = off."""


@dataclass(frozen=True)
class DegradationCell:
    """One (policy, intensity) replay outcome."""

    policy: str
    intensity: float
    sr_rate: float
    cs_rate: float


@dataclass
class DegradationResult:
    """The sweep's cells plus the per-policy knee summary."""

    scheme: str
    threshold: float
    intensities: tuple[float, ...]
    policies: tuple[str, ...]
    cells: list[DegradationCell]

    def cell(self, policy: str, intensity: float) -> DegradationCell:
        for entry in self.cells:
            if entry.policy == policy and entry.intensity == intensity:
                return entry
        raise KeyError((policy, intensity))

    def knee(self, policy: str) -> float | None:
        """Smallest swept intensity whose SR rate exceeds the threshold
        (None when the policy stays under it across the whole sweep)."""
        for intensity in self.intensities:
            if self.cell(policy, intensity).sr_rate > self.threshold:
                return intensity
        return None

    def render(self) -> str:
        headers = ["Policy"] + [
            f"i={intensity:g}" for intensity in self.intensities
        ] + ["knee"]
        body = []
        for policy in self.policies:
            knee = self.knee(policy)
            body.append(
                [policy]
                + [
                    f"{self.cell(policy, intensity).sr_rate * 100:.2f}%"
                    for intensity in self.intensities
                ]
                + ["-" if knee is None else f"{knee:g}"]
            )
        return format_table(
            headers,
            body,
            title=(
                f"SR failure rate vs attack intensity ({self.scheme}; "
                f"knee = first intensity > {self.threshold * 100:g}%)"
            ),
        )


def _policy_config(
    base: ResilienceConfig, tries: int, holddown: float
) -> ResilienceConfig:
    """The config for one policy row: ``tries`` == 0 keeps the baseline."""
    if tries <= 0:
        return base.with_label(f"{base.label}+noretry")
    policy = RetryPolicy(
        max_tries=tries,
        holddown=holddown if holddown > 0.0 else None,
    )
    return base.with_retries(policy)


def run(spec: DegradationSpec) -> DegradationResult:
    """Registry entry point: sweep intensity × retry policy.

    Raises:
        ValueError: when either sweep axis is empty, or an intensity
            falls outside [0, 1].
    """
    if not spec.intensities:
        raise ValueError("need at least one attack intensity")
    if not spec.retry_tries:
        raise ValueError("need at least one retry-tries value")
    for intensity in spec.intensities:
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(
                f"attack intensity must be in [0, 1], got {intensity}"
            )
    scenario = make_scenario(resolve_scale(spec.scale), seed=spec.seed)
    base = parse_scheme(spec.scheme)
    if spec.fetch_budget > 0 or spec.nxns_cap > 0:
        base = base.with_defenses(
            fetch_budget=spec.fetch_budget if spec.fetch_budget > 0 else None,
            nxns_cap=spec.nxns_cap if spec.nxns_cap > 0 else None,
        )
    faults = FaultSpec(background_loss=spec.loss) if spec.loss > 0.0 else None
    configs = [
        _policy_config(base, tries, spec.holddown)
        for tries in spec.retry_tries
    ]
    specs = [
        ReplaySpec.for_scenario(
            scenario,
            spec.trace_name,
            config,
            attack=AttackSpec(
                start=scenario.attack_start,
                duration=spec.attack_hours * HOUR,
                intensity=intensity,
            ),
            faults=faults,
        )
        for config in configs
        for intensity in spec.intensities
    ]
    summaries = iter(run_replays(specs))
    cells = []
    for config in configs:
        for intensity in spec.intensities:
            summary = next(summaries)
            cells.append(
                DegradationCell(
                    policy=config.label,
                    intensity=intensity,
                    sr_rate=summary.sr_attack_failure_rate,
                    cs_rate=summary.cs_attack_failure_rate,
                )
            )
    return DegradationResult(
        scheme=spec.scheme,
        threshold=spec.knee_threshold,
        intensities=spec.intensities,
        policies=tuple(config.label for config in configs),
        cells=cells,
    )
