"""Experiment harness: scenarios, replays, and one module per paper artifact.

* :mod:`repro.experiments.scenarios` -- scale presets and the standard
  setup (hierarchy + TRC1..TRC6 traces) shared by every experiment.
* :mod:`repro.experiments.harness` -- trace replay with optional attack,
  gap tracking, memory sampling and observability hooks.
* :mod:`repro.experiments.attack_grid` -- the Figures 4-11 grids.
* :mod:`repro.experiments.table1` / :mod:`~repro.experiments.table2` /
  :mod:`~repro.experiments.figure3` / :mod:`~repro.experiments.figure12`
  -- the remaining artifacts.
* :mod:`repro.experiments.max_damage` -- the paper §6 maximum-damage
  attack explorer (extension).

The ``EXPERIMENTS`` table is the registry of extension experiments: one
:class:`~repro.experiments.registry.ExperimentDef` per experiment, each
pairing a frozen spec dataclass with its ``run(spec)`` function.  The
CLI generates its subcommands from this table; programmatic callers use
``EXPERIMENTS["churn"].run(ChurnSpec(...))``.
"""

from repro.experiments import (
    amplification as _amplification,
    attack_grid as _attack_grid,
    churn as _churn,
    degradation as _degradation,
    dnssec as _dnssec,
    latency as _latency,
    max_damage as _max_damage,
    multiseed as _multiseed,
    poisoning as _poisoning,
)
from repro.experiments.harness import AttackSpec, ReplayResult, run_replay
from repro.experiments.registry import ExperimentDef
from repro.experiments.scenarios import Scale, Scenario, make_scenario
from repro.experiments.summary import ReplaySummary

EXPERIMENTS: dict[str, ExperimentDef] = {
    definition.name: definition
    for definition in (
        ExperimentDef(
            name="churn",
            help="IRR-churn cost experiment (long-TTL inconsistency)",
            spec_type=_churn.ChurnSpec,
            runner=_churn.run,
        ),
        ExperimentDef(
            name="latency",
            help="response-time experiment (no attack)",
            spec_type=_latency.LatencySpec,
            runner=_latency.run,
        ),
        ExperimentDef(
            name="dnssec",
            help="DNSSEC amplification experiment (paper §6)",
            spec_type=_dnssec.DnssecSpec,
            runner=_dnssec.run,
        ),
        ExperimentDef(
            name="maxdamage",
            help="maximum-damage exploration",
            spec_type=_max_damage.MaxDamageSpec,
            runner=_max_damage.run,
        ),
        ExperimentDef(
            name="attack-grid",
            help="failure grid of one scheme over attack durations",
            spec_type=_attack_grid.AttackGridSpec,
            runner=_attack_grid.run,
        ),
        ExperimentDef(
            name="renewal2",
            help="swr/decoupled vs credit renewal at equal upstream budget",
            spec_type=_attack_grid.Renewal2Spec,
            runner=_attack_grid.run_renewal2,
        ),
        ExperimentDef(
            name="multiseed",
            help="multi-seed replication of the headline failure rates",
            spec_type=_multiseed.MultiSeedSpec,
            runner=_multiseed.run,
        ),
        ExperimentDef(
            name="degradation",
            help="attack intensity × retry policy degradation sweep",
            spec_type=_degradation.DegradationSpec,
            runner=_degradation.run,
        ),
        ExperimentDef(
            name="amplification",
            help="NXNS amplification sweep: fan-out × fetch budget",
            spec_type=_amplification.AmplificationSpec,
            runner=_amplification.run,
        ),
        ExperimentDef(
            name="poisoning",
            help="cache-poisoning sweep: injection rate × scheme (+guard)",
            spec_type=_poisoning.PoisoningSpec,
            runner=_poisoning.run,
        ),
    )
}

__all__ = [
    "EXPERIMENTS",
    "AttackSpec",
    "ExperimentDef",
    "ReplayResult",
    "ReplaySummary",
    "Scale",
    "Scenario",
    "make_scenario",
    "run_replay",
]
