"""Experiment harness: scenarios, replays, and one module per paper artifact.

* :mod:`repro.experiments.scenarios` -- scale presets and the standard
  setup (hierarchy + TRC1..TRC6 traces) shared by every experiment.
* :mod:`repro.experiments.harness` -- trace replay with optional attack,
  gap tracking and memory sampling.
* :mod:`repro.experiments.attack_grid` -- the Figures 4-11 grids.
* :mod:`repro.experiments.table1` / :mod:`~repro.experiments.table2` /
  :mod:`~repro.experiments.figure3` / :mod:`~repro.experiments.figure12`
  -- the remaining artifacts.
* :mod:`repro.experiments.max_damage` -- the paper §6 maximum-damage
  attack explorer (extension).
"""

from repro.experiments.harness import AttackSpec, ReplayResult, run_replay
from repro.experiments.scenarios import Scale, Scenario, make_scenario

__all__ = [
    "AttackSpec",
    "ReplayResult",
    "Scale",
    "Scenario",
    "make_scenario",
    "run_replay",
]
