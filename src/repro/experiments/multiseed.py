"""Multi-seed replication: means and spreads instead of single numbers.

Single-replay cells can be noisy — a handful of unlucky zones lapsing
inside the attack window moves a percentage point or two (and the CS
ratio much more, since its denominator shrinks as caching improves).
This runner replays the same (trace, scheme, attack) under several
resolver seeds and reports mean ± sample standard deviation, the honest
form of every headline number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import format_table
from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec
from repro.experiments.parallel import ReplaySpec, run_replays
from repro.experiments.registry import resolve_scale
from repro.experiments.scenarios import Scale, Scenario, make_scenario

HOUR = 3600.0


@dataclass(frozen=True)
class SeedStatistics:
    """Mean ± std of one metric over seeds."""

    mean: float
    std: float
    samples: tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: list[float]) -> "SeedStatistics":
        if not samples:
            raise ValueError("no samples")
        mean = sum(samples) / len(samples)
        if len(samples) == 1:
            std = 0.0
        else:
            variance = sum((x - mean) ** 2 for x in samples) / (len(samples) - 1)
            std = math.sqrt(variance)
        return cls(mean=mean, std=std, samples=tuple(samples))

    def __str__(self) -> str:
        return f"{self.mean * 100:.2f} ± {self.std * 100:.2f} %"


@dataclass
class MultiSeedRow:
    scheme: str
    sr: SeedStatistics
    cs: SeedStatistics


@dataclass
class MultiSeedResult:
    seeds: tuple[int, ...]
    rows: list[MultiSeedRow]

    def render(self) -> str:
        body = [(row.scheme, str(row.sr), str(row.cs)) for row in self.rows]
        return format_table(
            ("Scheme", "SR failures (mean ± std)", "CS failures (mean ± std)"),
            body,
            title=(
                f"Multi-seed replication over seeds {list(self.seeds)} "
                "(6 h root+TLD attack)"
            ),
        )

    def row(self, scheme: str) -> MultiSeedRow:
        for entry in self.rows:
            if entry.scheme == scheme:
                return entry
        raise KeyError(scheme)


DEFAULT_SCHEMES = (
    ResilienceConfig.vanilla(),
    ResilienceConfig.refresh(),
    ResilienceConfig.refresh_renew("a-lfu", 5),
    ResilienceConfig.combination(),
)


@dataclass(frozen=True)
class MultiSeedSpec:
    """Declarative multi-seed replication request (the registry's spec)."""

    scale: Scale | None = None
    seed: int = 7
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4)
    trace_name: str = "TRC1"
    attack_hours: float = 6.0


def run(spec: MultiSeedSpec) -> MultiSeedResult:
    """Registry entry point: replicate the headline rates across seeds."""
    scenario = make_scenario(resolve_scale(spec.scale), seed=spec.seed)
    return _multiseed_experiment(
        scenario,
        seeds=spec.seeds,
        trace_name=spec.trace_name,
        attack_hours=spec.attack_hours,
    )


def _multiseed_experiment(
    scenario: Scenario,
    schemes: Sequence[ResilienceConfig] = DEFAULT_SCHEMES,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    trace_name: str = "TRC1",
    attack_hours: float = 6.0,
    workers: int | None = None,
) -> MultiSeedResult:
    """Replay one trace per scheme across several resolver seeds.

    The scheme × seed replays are independent and run through the batch
    runner (``workers`` defaults to ``$REPRO_WORKERS``).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    attack = AttackSpec(start=scenario.attack_start,
                        duration=attack_hours * HOUR)
    specs = [
        ReplaySpec.for_scenario(scenario, trace_name, config, attack=attack,
                                seed=seed)
        for config in schemes
        for seed in seeds
    ]
    summaries = iter(run_replays(specs, workers))
    rows = []
    for config in schemes:
        per_seed = [next(summaries) for _ in seeds]
        rows.append(
            MultiSeedRow(
                scheme=config.label,
                sr=SeedStatistics.from_samples(
                    [s.sr_attack_failure_rate for s in per_seed]
                ),
                cs=SeedStatistics.from_samples(
                    [s.cs_attack_failure_rate for s in per_seed]
                ),
            )
        )
    return MultiSeedResult(seeds=tuple(seeds), rows=rows)
