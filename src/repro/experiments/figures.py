"""One function per paper figure/table (the per-experiment index of
DESIGN.md §4 maps each to its bench target).

Each function returns a result object with the raw numbers plus a
``render()`` text form; benches print that text and EXPERIMENTS.md
records it against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.cdf import Cdf
from repro.analysis.overhead import MemoryOverheadSeries, MessageOverheadTable
from repro.analysis.report import format_table, render_series
from repro.core.config import ResilienceConfig
from repro.experiments.attack_grid import (
    CREDITS,
    LONG_TTL_DAYS,
    FailureGrid,
    run_duration_grid,
    run_scheme_grid,
    vanilla_column,
)
from repro.experiments.parallel import ReplaySpec, run_replays
from repro.experiments.scenarios import Scenario
from repro.workload.stats import TraceStatistics, compute_statistics

DAY = 86400.0

#: X-axis points for the Figure 3 CDFs.
GAP_DAY_POINTS = (0.25, 0.5, 1, 2, 3, 4, 5, 7, 10)
GAP_FRACTION_POINTS = (0.5, 1, 2, 5, 10, 20, 50, 100)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

@dataclass
class Table1Result:
    """Trace statistics, one row per TRC."""

    rows: list[TraceStatistics]

    def render(self) -> str:
        headers = (
            "Trace", "Duration", "Clients", "Requests In",
            "Requests Out", "Names", "Zones",
        )
        return format_table(
            headers,
            [row.as_row() for row in self.rows],
            title="Table 1 — DNS trace statistics (synthetic workload)",
        )


def table1(scenario: Scenario, include_month: bool = True,
           measure_requests_out: bool = True,
           workers: int | None = None) -> Table1Result:
    """Table 1: per-trace statistics; requests-out measured by vanilla replay."""
    names = list(Scenario.WEEK_TRACES)
    if include_month:
        names.append(Scenario.MONTH_TRACE)
    requests_out: dict[str, int | None] = {name: None for name in names}
    if measure_requests_out:
        specs = [
            ReplaySpec.for_scenario(scenario, name, ResilienceConfig.vanilla())
            for name in names
        ]
        for name, summary in zip(names, run_replays(specs, workers)):
            requests_out[name] = summary.total_outgoing
    rows = [
        compute_statistics(scenario.trace(name), tree=scenario.built.tree,
                           requests_out=requests_out[name])
        for name in names
    ]
    return Table1Result(rows=rows)


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------

@dataclass
class Figure3Result:
    """Gap CDFs, aggregated over the week traces (paper Figure 3)."""

    sample_count: int
    cdf_days: Cdf
    cdf_fraction: Cdf
    fraction_under_5_days: float

    def render(self) -> str:
        days = render_series(
            "Figure 3 (upper) — gap duration CDF",
            self.cdf_days.evaluate(GAP_DAY_POINTS),
            x_name="days",
            y_name="CDF",
        )
        fractions = render_series(
            "Figure 3 (lower) — gap / TTL CDF",
            self.cdf_fraction.evaluate(GAP_FRACTION_POINTS),
            x_name="gap as fraction of TTL",
            y_name="CDF",
        )
        summary = (
            f"samples: {self.sample_count}; "
            f"gaps under 5 days: {self.fraction_under_5_days * 100:.1f} %"
        )
        return f"{days}\n\n{fractions}\n\n{summary}"


def figure3(scenario: Scenario, trace_limit: int | None = None,
            workers: int | None = None) -> Figure3Result:
    """Figure 3: expiry-to-next-query gap CDFs from vanilla replays."""
    day_samples: list[float] = []
    fraction_samples: list[float] = []
    names = Scenario.WEEK_TRACES[
        : trace_limit or scenario.parameters.week_trace_count
    ]
    specs = [
        ReplaySpec.for_scenario(scenario, name, ResilienceConfig.vanilla(),
                                track_gaps=True)
        for name in names
    ]
    for summary in run_replays(specs, workers):
        for sample in summary.gap_samples:
            day_samples.append(sample.gap_days)
            fraction_samples.append(sample.gap_as_ttl_fraction)
    cdf_days = Cdf.from_samples(day_samples)
    return Figure3Result(
        sample_count=len(day_samples),
        cdf_days=cdf_days,
        cdf_fraction=Cdf.from_samples(fraction_samples),
        fraction_under_5_days=cdf_days.probability_at_or_below(5.0),
    )


# ---------------------------------------------------------------------------
# Figures 4-11 (attack grids)
# ---------------------------------------------------------------------------

def figure4(scenario: Scenario, trace_limit: int | None = None,
            seed: int = 0) -> FailureGrid:
    """Figure 4: vanilla DNS under 3/6/12/24 h root+TLD attacks."""
    return run_duration_grid(
        scenario, ResilienceConfig.vanilla(), "Figure 4 — Vanilla DNS",
        trace_limit=trace_limit, seed=seed,
    )


def figure5(scenario: Scenario, trace_limit: int | None = None,
            seed: int = 0) -> FailureGrid:
    """Figure 5: TTL refresh under 3/6/12/24 h attacks."""
    return run_duration_grid(
        scenario, ResilienceConfig.refresh(), "Figure 5 — TTL Refresh",
        trace_limit=trace_limit, seed=seed,
    )


_POLICY_FIGURES = {
    "lru": ("Figure 6 — TTL Refresh + Renew (LRU)", "LRU"),
    "lfu": ("Figure 7 — TTL Refresh + Renew (LFU)", "LFU"),
    "a-lru": ("Figure 8 — TTL Refresh + Renew (A-LRU)", "A-LRU"),
    "a-lfu": ("Figure 9 — TTL Refresh + Renew (A-LFU)", "A-LFU"),
}


def renewal_figure(
    scenario: Scenario,
    policy: str,
    credits: tuple[int, ...] = CREDITS,
    trace_limit: int | None = None,
    seed: int = 0,
) -> FailureGrid:
    """Figures 6-9: refresh + one renewal policy at credits 1/3/5, 6 h attack."""
    title, short = _POLICY_FIGURES[policy]
    schemes = [vanilla_column()]
    for credit in credits:
        schemes.append(
            (f"{short} {credit}", ResilienceConfig.refresh_renew(policy, credit))
        )
    return run_scheme_grid(scenario, schemes, title, trace_limit=trace_limit,
                           seed=seed)


def figure6(scenario: Scenario, **kwargs: Any) -> FailureGrid:
    """Figure 6: refresh + LRU renewal."""
    return renewal_figure(scenario, "lru", **kwargs)


def figure7(scenario: Scenario, **kwargs: Any) -> FailureGrid:
    """Figure 7: refresh + LFU renewal."""
    return renewal_figure(scenario, "lfu", **kwargs)


def figure8(scenario: Scenario, **kwargs: Any) -> FailureGrid:
    """Figure 8: refresh + A-LRU renewal."""
    return renewal_figure(scenario, "a-lru", **kwargs)


def figure9(scenario: Scenario, **kwargs: Any) -> FailureGrid:
    """Figure 9: refresh + A-LFU renewal."""
    return renewal_figure(scenario, "a-lfu", **kwargs)


def figure10(
    scenario: Scenario,
    days: tuple[int, ...] = LONG_TTL_DAYS,
    trace_limit: int | None = None,
    seed: int = 0,
) -> FailureGrid:
    """Figure 10: refresh + long IRR TTLs of 1/3/5/7 days, 6 h attack."""
    schemes = [vanilla_column()]
    for value in days:
        schemes.append(
            (f"{value} Day TTL", ResilienceConfig.refresh_long_ttl(value))
        )
    return run_scheme_grid(
        scenario, schemes, "Figure 10 — TTL Refresh + Long-TTL",
        trace_limit=trace_limit, seed=seed,
    )


def figure11(
    scenario: Scenario,
    days: tuple[int, ...] = LONG_TTL_DAYS,
    policy: str = "a-lfu",
    credit: float = 3.0,
    trace_limit: int | None = None,
    seed: int = 0,
) -> FailureGrid:
    """Figure 11: refresh + A-LFU renewal + long TTLs of 1/3/5/7 days."""
    schemes = [vanilla_column()]
    for value in days:
        schemes.append(
            (
                f"{value} Day TTL",
                ResilienceConfig.combination(days=value, policy=policy,
                                             credit=credit),
            )
        )
    return run_scheme_grid(
        scenario, schemes, "Figure 11 — TTL Refresh + Renew + Long-TTL",
        trace_limit=trace_limit, seed=seed,
    )


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------

#: The schemes Table 2 reports, in the paper's row order.
TABLE2_SCHEMES: tuple[tuple[str, ResilienceConfig], ...] = (
    ("Refresh", ResilienceConfig.refresh()),
    ("LRU", ResilienceConfig.refresh_renew("lru", 3)),
    ("LFU", ResilienceConfig.refresh_renew("lfu", 3)),
    ("A-LRU", ResilienceConfig.refresh_renew("a-lru", 3)),
    ("A-LFU", ResilienceConfig.refresh_renew("a-lfu", 3)),
    ("Long-TTL", ResilienceConfig.refresh_long_ttl(7)),
    ("Combination", ResilienceConfig.combination(days=3, policy="a-lfu", credit=3)),
)


@dataclass
class Table2Result:
    """Message and byte overhead per scheme vs vanilla, over traces."""

    per_trace: dict[str, MessageOverheadTable]
    mean_overhead: dict[str, float]
    mean_byte_overhead: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            (
                label,
                f"{overhead * 100:+.1f} %",
                f"{self.mean_byte_overhead.get(label, 0.0) * 100:+.1f} %",
            )
            for label, overhead in self.mean_overhead.items()
        ]
        return format_table(
            ("Scheme", "Message overhead", "Byte overhead"),
            rows,
            title="Table 2 — traffic overhead vs vanilla (no attack)",
        )


def table2(
    scenario: Scenario,
    schemes: tuple[tuple[str, ResilienceConfig], ...] = TABLE2_SCHEMES,
    trace_limit: int | None = 3,
    seed: int = 0,
    workers: int | None = None,
) -> Table2Result:
    """Table 2: outgoing-message overhead of every scheme vs vanilla.

    The (trace × scheme) replays — baseline included — form one batch;
    summaries stand in for metrics in the overhead tables.
    """
    per_trace: dict[str, MessageOverheadTable] = {}
    sums: dict[str, float] = {label: 0.0 for label, _ in schemes}
    byte_sums: dict[str, float] = {label: 0.0 for label, _ in schemes}
    names = Scenario.WEEK_TRACES[
        : trace_limit or scenario.parameters.week_trace_count
    ]
    columns = (("__baseline__", ResilienceConfig.vanilla()), *schemes)
    specs = [
        ReplaySpec.for_scenario(scenario, name, config, seed=seed)
        for name in names
        for _, config in columns
    ]
    summaries = iter(run_replays(specs, workers))
    for name in names:
        baseline = next(summaries)
        table = MessageOverheadTable(baseline=baseline)
        for label, _ in schemes:
            summary = next(summaries)
            sums[label] += table.add_scheme(label, summary)
            byte_sums[label] += summary.byte_overhead_vs(baseline)
        per_trace[name] = table
    mean = {label: total / len(names) for label, total in sums.items()}
    byte_mean = {label: total / len(names) for label, total in byte_sums.items()}
    return Table2Result(per_trace=per_trace, mean_overhead=mean,
                        mean_byte_overhead=byte_mean)


# ---------------------------------------------------------------------------
# Figure 12
# ---------------------------------------------------------------------------

#: Figure 12's legend: vanilla plus every scheme at its strongest setting.
FIGURE12_SCHEMES: tuple[tuple[str, ResilienceConfig], ...] = (
    ("DNS", ResilienceConfig.vanilla()),
    ("LRU 5", ResilienceConfig.refresh_renew("lru", 5)),
    ("LFU 5", ResilienceConfig.refresh_renew("lfu", 5)),
    ("A-LRU 5", ResilienceConfig.refresh_renew("a-lru", 5)),
    ("A-LFU 5", ResilienceConfig.refresh_renew("a-lfu", 5)),
    ("Long-TTL", ResilienceConfig.refresh_long_ttl(7)),
    ("Combination", ResilienceConfig.combination(days=3, policy="a-lfu", credit=5)),
)


@dataclass
class Figure12Result:
    """Cache-occupancy series over the month trace, per scheme."""

    series: dict[str, MemoryOverheadSeries]
    occupancy_ratios: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for label, series in self.series.items():
            rows.append(
                (
                    label,
                    series.peak_zones(),
                    series.peak_records(),
                    f"{series.steady_state_mean_records():,.0f}",
                    f"{self.occupancy_ratios.get(label, 1.0):.2f}x",
                    f"{series.estimated_peak_bytes() / 1e6:.1f} MB",
                )
            )
        return format_table(
            ("Scheme", "Peak zones", "Peak records", "Steady records",
             "vs DNS", "Est. peak mem"),
            rows,
            title="Figure 12 — memory overhead over the one-month trace (TRC6)",
        )


def figure12(
    scenario: Scenario,
    schemes: tuple[tuple[str, ResilienceConfig], ...] = FIGURE12_SCHEMES,
    sample_interval: float = 6 * 3600.0,
    seed: int = 0,
    workers: int | None = None,
) -> Figure12Result:
    """Figure 12: cached zones/records over time for each scheme (TRC6)."""
    specs = [
        ReplaySpec.for_scenario(
            scenario, Scenario.MONTH_TRACE, config,
            memory_sample_interval=sample_interval, seed=seed,
        )
        for _, config in schemes
    ]
    series: dict[str, MemoryOverheadSeries] = {}
    for (label, _), summary in zip(schemes, run_replays(specs, workers)):
        series[label] = MemoryOverheadSeries(
            label=label, samples=list(summary.memory_samples)
        )
    outcome = Figure12Result(series=series)
    baseline = series.get("DNS")
    if baseline is not None:
        for label, entry in series.items():
            outcome.occupancy_ratios[label] = entry.occupancy_ratio_vs(baseline)
    return outcome
