"""Maximum-damage attack exploration (paper §6, "Discussion").

The paper *defines* the maximum-damage attack — the target set of a given
budget that maximises failed queries — and argues that finding it exactly
is impractical (it depends on every resolver's future queries and on
cascading IRR expiries).  It sketches one heuristic: count upcoming
queries per subtree and hit the zones with the heaviest subtrees.

This module implements that heuristic as an *extension experiment*: it
builds the greedy target list from the (oracle) trace window, then
compares its damage against the paper's root+TLD attack and a
random-target strawman, with and without the combination scheme.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.config import ResilienceConfig
from repro.dns.name import Name, root_name
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.registry import resolve_scale
from repro.experiments.scenarios import Scale, Scenario, make_scenario
from repro.workload.trace import Trace

HOUR = 3600.0


def upcoming_query_counts(
    trace: Trace, scenario: Scenario, start: float, end: float
) -> dict[Name, int]:
    """Queries in [start, end) that transit each zone's subtree.

    A query for ``www.cs.ucla.edu`` counts for ``cs.ucla.edu``,
    ``ucla.edu``, ``edu`` and the root: disabling any of them can break
    the resolution (the cascading-failure effect §6 describes).
    """
    tree = scenario.built.tree
    counts: dict[Name, int] = {}
    zone_chain_cache: dict[Name, tuple[Name, ...]] = {}
    for query in trace.slice_window(start, end):
        chain = zone_chain_cache.get(query.qname)
        if chain is None:
            enclosing = tree.enclosing_zone(query.qname).name
            chain = tuple(
                ancestor
                for ancestor in enclosing.ancestors()
                if tree.has_zone(ancestor)
            )
            zone_chain_cache[query.qname] = chain
        for zone in chain:
            counts[zone] = counts.get(zone, 0) + 1
    return counts


def greedy_targets(
    trace: Trace,
    scenario: Scenario,
    budget: int,
    start: float,
    end: float,
    include_root: bool = True,
) -> list[Name]:
    """The ``budget`` zones with the heaviest upcoming subtrees."""
    if budget < 1:
        raise ValueError("budget must be at least 1")
    counts = upcoming_query_counts(trace, scenario, start, end)
    candidates = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    targets: list[Name] = []
    for zone, _ in candidates:
        if zone == root_name() and not include_root:
            continue
        targets.append(zone)
        if len(targets) == budget:
            break
    return targets


def random_targets(
    scenario: Scenario, budget: int, seed: int = 0
) -> list[Name]:
    """A random zone set of the same budget (strawman baseline)."""
    rng = random.Random(seed)
    names = sorted(scenario.built.tree.zone_names())
    return rng.sample(names, min(budget, len(names)))


@dataclass
class MaxDamageResult:
    """Damage comparison across target-selection strategies."""

    budget: int
    rows: list[tuple[str, str, float, float]]
    """(strategy, scheme, SR failure rate, CS failure rate)."""

    def render(self) -> str:
        body = [
            (strategy, scheme, f"{sr * 100:.1f} %", f"{cs * 100:.1f} %")
            for strategy, scheme, sr, cs in self.rows
        ]
        return format_table(
            ("Targets", "Scheme", "SR failures", "CS failures"),
            body,
            title=f"Maximum-damage exploration (budget = {self.budget} zones)",
        )

    def rate_of(self, strategy: str, scheme: str) -> float:
        for row_strategy, row_scheme, sr, _ in self.rows:
            if row_strategy == strategy and row_scheme == scheme:
                return sr
        raise KeyError(f"no row for ({strategy!r}, {scheme!r})")


@dataclass(frozen=True)
class MaxDamageSpec:
    """Declarative max-damage request (the registry's spec)."""

    scale: Scale | None = None
    seed: int = 7
    budget: int | None = None
    attack_hours: float = 6.0
    trace_name: str = "TRC1"


def run(spec: MaxDamageSpec) -> MaxDamageResult:
    """Registry entry point: build the scenario, run the exploration."""
    scenario = make_scenario(resolve_scale(spec.scale), seed=spec.seed)
    return _max_damage_experiment(
        scenario,
        budget=spec.budget,
        attack_hours=spec.attack_hours,
        trace_name=spec.trace_name,
    )


def _max_damage_experiment(
    scenario: Scenario,
    budget: int | None = None,
    attack_hours: float = 6.0,
    trace_name: str = "TRC1",
    seed: int = 0,
) -> MaxDamageResult:
    """Compare greedy / root+TLD / random targets, vanilla vs combination.

    ``budget`` defaults to the root+TLD set size so strategies compete on
    equal footing.
    """
    trace = scenario.trace(trace_name)
    start = scenario.attack_start
    end = start + attack_hours * HOUR
    tree = scenario.built.tree
    if budget is None:
        budget = 1 + len(tree.tld_names())

    strategies = {
        "greedy (oracle)": greedy_targets(trace, scenario, budget, start, end),
        "root+TLDs": [root_name(), *tree.tld_names()][:budget],
        "random": random_targets(scenario, budget, seed=seed),
    }
    schemes = [
        ("vanilla", ResilienceConfig.vanilla()),
        ("combination", ResilienceConfig.combination()),
    ]
    rows = []
    for strategy_name, targets in strategies.items():
        spec = AttackSpec(
            start=start, duration=attack_hours * HOUR, targets=tuple(targets)
        )
        for scheme_name, config in schemes:
            result = run_replay(scenario.built, trace, config, attack=spec,
                                seed=seed)
            rows.append(
                (
                    strategy_name,
                    scheme_name,
                    result.sr_attack_failure_rate,
                    result.cs_attack_failure_rate,
                )
            )
    return MaxDamageResult(budget=budget, rows=rows)
