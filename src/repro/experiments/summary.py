"""The shared replay summary: one dataclass, both runners.

Historically the serial runner returned :class:`~repro.experiments.
harness.ReplayResult` (live objects) while the parallel runner returned
a separate ``ReplaySummary`` with re-implemented accessors.  This module
is the single home of the summary shape: results adapt into it via
``ReplayResult.to_summary()`` / :meth:`ReplaySummary.from_result`, and
the attack-window failure-rate properties both shapes need live in one
mixin.  ``repro.api`` re-exports everything here as the stable surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.analysis.gaps import GapSample
from repro.simulation.metrics import MemorySample, WindowCounters

if TYPE_CHECKING:
    from repro.experiments.harness import ReplayResult


class OverheadComparable(Protocol):
    """Anything the overhead tables can baseline against.

    Satisfied by both :class:`~repro.simulation.metrics.ReplayMetrics`
    and :class:`ReplaySummary`, so tables treat them interchangeably.
    """

    @property
    def total_outgoing(self) -> int: ...

    @property
    def total_bytes(self) -> int: ...


class AttackWindowRates:
    """Attack-window failure rates for anything carrying ``window``."""

    window: "WindowCounters | None"

    @property
    def sr_attack_failure_rate(self) -> float:
        """SR failure fraction during the attack (0 without an attack)."""
        if self.window is None:
            return 0.0
        return self.window.sr_failure_rate

    @property
    def cs_attack_failure_rate(self) -> float:
        """CS failure fraction during the attack (0 without an attack)."""
        if self.window is None:
            return 0.0
        return self.window.cs_failure_rate


@dataclass(frozen=True)
class ReplaySummary(AttackWindowRates):
    """The picklable extract of one :class:`ReplayResult`.

    Carries every number the figures/tables consume; mirrors the metric
    accessors of :class:`~repro.simulation.metrics.ReplayMetrics` so the
    overhead tables can treat summaries and metrics interchangeably.
    """

    # Returned from worker processes by pickle; `repro audit` (REP012)
    # walks every transitively reachable field type for picklability.
    # repro: pickled-boundary

    label: str
    trace_name: str

    sr_queries: int
    sr_failures: int
    sr_cache_hits: int
    sr_nxdomain: int
    sr_validation_failures: int

    cs_demand_queries: int
    cs_demand_failures: int
    cs_renewal_queries: int
    cs_renewal_failures: int

    total_latency: float
    bytes_out: int
    bytes_in: int

    window: "WindowCounters | None" = None
    gap_samples: tuple[GapSample, ...] = ()
    memory_samples: tuple[MemorySample, ...] = ()
    event_count: int = 0
    """Observability events emitted during the replay (0 when the run
    was unobserved)."""

    # Adversary / defense accounting (all zero without an AdversarySpec;
    # mirrors the counters on ReplayMetrics so the attack experiments can
    # run through the parallel runner).
    attack_stub_queries: int = 0
    attack_cs_queries: int = 0
    attack_failures: int = 0
    flash_queries: int = 0
    budget_exhaustions: int = 0
    nxns_capped: int = 0
    poison_attempts: int = 0
    poison_wins: int = 0
    poison_stored: int = 0
    poison_cured: int = 0
    poison_dwells: tuple[float, ...] = ()

    # Renewal 2.0 accounting (zero unless `swr` / `decoupled` is armed).
    sr_stale_hits: int = 0
    swr_refreshes: int = 0
    invalidations: int = 0

    @classmethod
    def from_result(cls, result: "ReplayResult") -> "ReplaySummary":
        """Reduce a full replay result to its picklable summary."""
        metrics = result.metrics
        return cls(
            label=result.label,
            trace_name=result.trace_name,
            sr_queries=metrics.sr_queries,
            sr_failures=metrics.sr_failures,
            sr_cache_hits=metrics.sr_cache_hits,
            sr_nxdomain=metrics.sr_nxdomain,
            sr_validation_failures=metrics.sr_validation_failures,
            cs_demand_queries=metrics.cs_demand_queries,
            cs_demand_failures=metrics.cs_demand_failures,
            cs_renewal_queries=metrics.cs_renewal_queries,
            cs_renewal_failures=metrics.cs_renewal_failures,
            total_latency=metrics.total_latency,
            bytes_out=metrics.bytes_out,
            bytes_in=metrics.bytes_in,
            window=result.window,
            gap_samples=(
                tuple(result.gap_tracker.samples)
                if result.gap_tracker is not None else ()
            ),
            memory_samples=tuple(metrics.memory_samples),
            event_count=result.event_count,
            attack_stub_queries=metrics.attack_stub_queries,
            attack_cs_queries=metrics.attack_cs_queries,
            attack_failures=metrics.attack_failures,
            flash_queries=metrics.flash_queries,
            budget_exhaustions=metrics.budget_exhaustions,
            nxns_capped=metrics.nxns_capped,
            poison_attempts=metrics.poison_attempts,
            poison_wins=metrics.poison_wins,
            poison_stored=metrics.poison_stored,
            poison_cured=metrics.poison_cured,
            poison_dwells=tuple(metrics.poison_dwells),
            sr_stale_hits=metrics.sr_stale_hits,
            swr_refreshes=metrics.swr_refreshes,
            invalidations=metrics.invalidations,
        )

    # -- failure rates ------------------------------------------------------

    @property
    def sr_failure_rate(self) -> float:
        if self.sr_queries == 0:
            return 0.0
        return self.sr_failures / self.sr_queries

    @property
    def cs_failure_rate(self) -> float:
        if self.cs_demand_queries == 0:
            return 0.0
        return self.cs_demand_failures / self.cs_demand_queries

    @property
    def amplification_factor(self) -> float:
        """CS-side queries per injected attack query (the NXNS payoff)."""
        if self.attack_stub_queries == 0:
            return 0.0
        return self.attack_cs_queries / self.attack_stub_queries

    # -- traffic ------------------------------------------------------------

    @property
    def total_outgoing(self) -> int:
        """All CS -> AN messages (demand + renewal): Table 2's currency."""
        return self.cs_demand_queries + self.cs_renewal_queries

    @property
    def upstream_queries(self) -> int:
        """Alias of :attr:`total_outgoing` — the equal-budget currency
        the Renewal 2.0 comparison normalises schemes by."""
        return self.total_outgoing

    @property
    def stale_answer_rate(self) -> float:
        """Fraction of stub answers served from lapsed records."""
        if self.sr_queries == 0:
            return 0.0
        return self.sr_stale_hits / self.sr_queries

    @property
    def total_bytes(self) -> int:
        return self.bytes_out + self.bytes_in

    @property
    def mean_latency(self) -> float:
        if self.sr_queries == 0:
            return 0.0
        return self.total_latency / self.sr_queries

    def message_overhead_vs(self, baseline: OverheadComparable) -> float:
        """Relative change in outgoing messages vs ``baseline`` (summary
        or :class:`ReplayMetrics` — anything with ``total_outgoing``).
        An empty baseline (no messages) reads as zero overhead, matching
        the ``<= 0.0`` convention in ``analysis/``.
        """
        if baseline.total_outgoing <= 0:
            return 0.0
        return (
            (self.total_outgoing - baseline.total_outgoing)
            / baseline.total_outgoing
        )

    def byte_overhead_vs(self, baseline: OverheadComparable) -> float:
        """Relative change in total traffic bytes vs ``baseline``.
        Zero when the baseline moved no bytes."""
        if baseline.total_bytes <= 0:
            return 0.0
        return (self.total_bytes - baseline.total_bytes) / baseline.total_bytes


@dataclass(frozen=True)
class FleetMemberSummary:
    """One organisation's slice of a fleet replay."""

    trace_name: str
    sr_queries: int
    window: "WindowCounters | None" = None


@dataclass
class FleetSummary:
    """Picklable fleet outcome: per-member windows plus aggregates."""

    # repro: pickled-boundary

    label: str
    members: list[FleetMemberSummary] = field(default_factory=list)

    def aggregate_sr_failure_rate(self) -> float:
        """Fleet-wide SR failure fraction inside the attack window."""
        queries = sum(
            member.window.sr_queries for member in self.members
            if member.window is not None
        )
        failures = sum(
            member.window.sr_failures for member in self.members
            if member.window is not None
        )
        if queries == 0:
            return 0.0
        return failures / queries

    def total_failed_lookups(self) -> int:
        """The §6 damage currency: failed lookups across the fleet."""
        return sum(
            member.window.sr_failures for member in self.members
            if member.window is not None
        )

    def member(self, trace_name: str) -> FleetMemberSummary:
        for entry in self.members:
            if entry.trace_name == trace_name:
                return entry
        raise KeyError(trace_name)

    def render(self) -> str:
        from repro.experiments.fleet import render_fleet_table

        return render_fleet_table(self.label, self.members,
                                  self.aggregate_sr_failure_rate())


def summarize_replay(result: "ReplayResult") -> ReplaySummary:
    """Reduce a full replay result to its picklable summary."""
    return ReplaySummary.from_result(result)
