"""DNSSEC extension experiment (paper §6 deployment issues).

Under DNSSEC, a validating resolver needs more than addresses to answer:
every signed zone on a lookup's chain must have a live DNSKEY.  Those
keys are *infrastructure records*, so the paper's refresh / renewal /
long-TTL schemes extend to them — and matter even more, because during
an attack a missing key turns an otherwise-cached answer into SERVFAIL.

This experiment replays a trace over a fully signed hierarchy with
validation on and off, for vanilla DNS and for the combination scheme,
under the standard 6 h root+TLD attack.  Expected shape: validation
*amplifies* the attack against vanilla DNS (failures go up), while the
combination scheme holds both variants near its usual floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_table
from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec, run_replay
from repro.hierarchy.builder import HierarchyConfig, build_hierarchy
from repro.workload.generator import TraceGenerator, WorkloadConfig

DAY = 86400.0
HOUR = 3600.0


@dataclass
class DnssecRow:
    label: str
    sr_failure_rate: float
    validation_failures: int
    cs_failure_rate: float


@dataclass
class DnssecExperimentResult:
    rows: list[DnssecRow]

    def render(self) -> str:
        body = [
            (
                row.label,
                f"{row.sr_failure_rate * 100:.2f} %",
                row.validation_failures,
                f"{row.cs_failure_rate * 100:.2f} %",
            )
            for row in self.rows
        ]
        return format_table(
            ("Scheme", "SR failures (attack)", "Validation failures",
             "CS failures (attack)"),
            body,
            title=(
                "DNSSEC extension (paper §6) — fully signed hierarchy, "
                "6 h root+TLD attack"
            ),
        )

    def row(self, label: str) -> DnssecRow:
        for entry in self.rows:
            if entry.label == label:
                return entry
        raise KeyError(label)


@dataclass(frozen=True)
class DnssecSpec:
    """Declarative DNSSEC-experiment request (the registry's spec)."""

    seed: int = 5
    attack_hours: float = 6.0
    hierarchy: HierarchyConfig | None = field(
        default=None, metadata={"cli": False}
    )
    workload: WorkloadConfig | None = field(
        default=None, metadata={"cli": False}
    )


def run(spec: DnssecSpec) -> DnssecExperimentResult:
    """Vanilla vs combination, validation off vs on, signed hierarchy."""
    hierarchy_config = spec.hierarchy or HierarchyConfig(
        num_tlds=8, num_slds=150, num_providers=3, dnssec_fraction=1.0
    )
    if hierarchy_config.dnssec_fraction <= 0.0:
        raise ValueError("the DNSSEC experiment needs a signed hierarchy")
    workload_config = spec.workload or WorkloadConfig(
        duration_days=7.0, queries_per_day=2_500, num_clients=60
    )
    built = build_hierarchy(hierarchy_config, seed=spec.seed)
    trace = TraceGenerator(built.catalog, workload_config,
                           seed=spec.seed).generate("DNSSEC", stream=2)
    attack = AttackSpec(start=6 * DAY, duration=spec.attack_hours * HOUR)

    schemes = [
        ResilienceConfig.vanilla(),
        ResilienceConfig.vanilla().with_validation(),
        ResilienceConfig.refresh().with_validation(),
        ResilienceConfig.combination(),
        ResilienceConfig.combination().with_validation(),
    ]
    rows = []
    for config in schemes:
        result = run_replay(built, trace, config, attack=attack,
                            seed=spec.seed)
        rows.append(
            DnssecRow(
                label=config.label,
                sr_failure_rate=result.sr_attack_failure_rate,
                validation_failures=result.metrics.sr_validation_failures,
                cs_failure_rate=result.cs_attack_failure_rate,
            )
        )
    return DnssecExperimentResult(rows=rows)
