"""Parallel trace replay: fan independent replays over worker processes.

Every figure/table is a sweep of independent :func:`~repro.experiments.
harness.run_replay` calls (schemes × traces × attack durations × seeds).
:func:`run_replays` is the batch API those sweeps go through: it takes
declarative :class:`ReplaySpec` / :class:`FleetSpec` descriptions and
executes them either in-process (``workers=1``, the default) or across a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Four design rules keep this correct and cheap:

* **The world is built once, in the parent.**  Before the pool exists,
  :func:`run_replays` constructs every swept scenario — hierarchy *and*
  traces — through the memoised
  :func:`~repro.experiments.scenarios.make_scenario`.  Under the default
  ``fork`` start method the workers inherit those objects copy-on-write:
  the multi-MB ``BuiltHierarchy`` is never pickled and never rebuilt.
  Under ``spawn`` (macOS/Windows default) children inherit nothing, so
  the :func:`_warm_worker` initializer rebuilds the same scenarios from
  the same keys — slower, but identical in outcome.
* **Specs, not objects, cross the boundary.**  A spec carries only
  ``(scale, scenario seed, trace name, config, attack, seed)`` — the
  lightweight key the memo resolves.
* **Summaries, not servers, come back.**  A replay's
  :class:`CachingServer`/engine graph is full of closures and timers;
  workers reduce it to a picklable :class:`ReplaySummary` holding the
  numbers the figures need (failure rates, window counters, traffic,
  gap and memory samples).
* **Determinism is untouched.**  A replay's outcome depends only on its
  spec; the serial and parallel paths run the identical code, so a sweep
  produces bitwise-identical numbers at any worker count (covered by
  tests/experiments/test_parallel.py).

``REPRO_WORKERS`` selects the default worker count; ``workers=1`` (or an
unset variable) preserves the original fully-serial behaviour.  A warm
pool is kept alive between :func:`run_replays` calls so a sweep pays the
fork + warm-up cost once, not once per sweep point; set
``REPRO_POOL_REUSE=0`` to restore a fresh pool per call.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.scenarios import Scale, Scenario, make_scenario
from repro.experiments.summary import (
    FleetMemberSummary,
    FleetSummary,
    OverheadComparable,
    ReplaySummary,
    summarize_replay,
)
from repro.obs.spec import ObservationSpec
from repro.obs.timing import StageTimings, maybe_stage
from repro.simulation.adversary import AdversarySpec
from repro.simulation.faults import FaultSpec

__all__ = [
    "FleetMemberSummary",
    "FleetSpec",
    "FleetSummary",
    "OverheadComparable",
    "POOL_REUSE_ENV_VAR",
    "ReplayExecutionError",
    "ReplaySpec",
    "ReplaySummary",
    "WORKERS_ENV_VAR",
    "default_worker_count",
    "pool_reuse_enabled",
    "run_replays",
    "shutdown_shared_pool",
    "summarize_replay",
    "usable_cpu_count",
]

#: Environment variable selecting the default worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment variable gating cross-call pool reuse ("0" disables).
POOL_REUSE_ENV_VAR = "REPRO_POOL_REUSE"


class ReplayExecutionError(RuntimeError):
    """A worker process died or exceeded the per-replay timeout."""


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReplaySpec:
    """A declarative, picklable description of one replay.

    Identifies the scenario by ``(scale, scenario_seed)`` — the
    lightweight key :func:`make_scenario` memoises on — instead of
    carrying the built hierarchy.
    """

    # Crosses the worker process boundary; `repro audit` (REP012)
    # walks every transitively reachable field type for picklability.
    # repro: pickled-boundary

    scale: Scale
    scenario_seed: int
    trace_name: str
    config: ResilienceConfig
    attack: AttackSpec | None = None
    seed: int = 0
    track_gaps: bool = False
    memory_sample_interval: float | None = None
    observe: ObservationSpec | None = None
    """Optional observability setup.  Executed inside the worker, so
    per-spec output paths work at any worker count (each worker writes
    its own files; the event stream stays deterministic because it is
    derived from the replay's virtual clock only)."""

    faults: FaultSpec | None = None
    """Optional fault-injection setup (DESIGN.md §11).  Like ``observe``
    it is a frozen description: each worker builds its own injector, and
    the hash-keyed draws make the outcome independent of worker count."""

    adversary: AdversarySpec | None = None
    """Optional adversary model (DESIGN.md §16): NXNS amplification,
    cache poisoning and flash crowds.  Frozen like ``faults``; each
    worker builds its own live adversary with its own ordinal counters,
    so adversarial replays stay byte-identical at any worker count."""

    validation: bool = False
    """Shadow the replay's cache with the naive oracle (DESIGN.md §12).
    Results are identical when the check passes; the worker raises a
    DivergenceError / InvariantViolation otherwise."""

    @classmethod
    def for_scenario(
        cls,
        scenario: Scenario,
        trace_name: str,
        config: ResilienceConfig,
        *,
        attack: AttackSpec | None = None,
        seed: int = 0,
        track_gaps: bool = False,
        memory_sample_interval: float | None = None,
        observe: ObservationSpec | None = None,
        faults: FaultSpec | None = None,
        adversary: AdversarySpec | None = None,
        validation: bool = False,
    ) -> "ReplaySpec":
        """A spec that replays ``trace_name`` of an existing scenario."""
        return cls(
            scale=scenario.scale,
            scenario_seed=scenario.seed,
            trace_name=trace_name,
            config=config,
            attack=attack,
            seed=seed,
            track_gaps=track_gaps,
            memory_sample_interval=memory_sample_interval,
            observe=observe,
            faults=faults,
            adversary=adversary,
            validation=validation,
        )

    def describe(self) -> str:
        return (
            f"{self.trace_name}/{self.config.label}"
            f" (scale={self.scale.value}, seed={self.seed})"
        )


@dataclass(frozen=True)
class FleetSpec:
    """One fleet replay (several traces over shared virtual time)."""

    # repro: pickled-boundary

    scale: Scale
    scenario_seed: int
    trace_names: tuple[str, ...]
    config: ResilienceConfig
    attack: AttackSpec | None = None
    seed: int = 0

    @classmethod
    def for_scenario(
        cls,
        scenario: Scenario,
        trace_names: Sequence[str],
        config: ResilienceConfig,
        *,
        attack: AttackSpec | None = None,
        seed: int = 0,
    ) -> "FleetSpec":
        return cls(
            scale=scenario.scale,
            scenario_seed=scenario.seed,
            trace_names=tuple(trace_names),
            config=config,
            attack=attack,
            seed=seed,
        )

    def describe(self) -> str:
        return (
            f"fleet[{','.join(self.trace_names)}]/{self.config.label}"
            f" (scale={self.scale.value}, seed={self.seed})"
        )


# The summary shapes themselves live in repro.experiments.summary (one
# definition shared with the serial runner); this module re-exports them
# so historical `from repro.experiments.parallel import ReplaySummary`
# imports keep working.


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def default_worker_count() -> int:
    """The worker count named by $REPRO_WORKERS (default 1 = serial).

    Raises:
        ValueError: when the variable is set but not a positive integer.
    """
    raw = os.environ.get(WORKERS_ENV_VAR)
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV_VAR}={raw!r} is not an integer"
        ) from None
    if value < 1:
        raise ValueError(f"{WORKERS_ENV_VAR} must be >= 1, got {value}")
    return value


def usable_cpu_count() -> int:
    """CPU cores this process may actually be scheduled on.

    ``os.cpu_count`` reports the whole machine; inside a container or
    under ``taskset`` the affinity mask is often smaller, and worker
    processes beyond it just time-slice one another.  Falls back to
    ``os.cpu_count`` on platforms without ``sched_getaffinity``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        return len(getaffinity(0)) or 1
    return os.cpu_count() or 1  # pragma: no cover - non-Linux


def pool_reuse_enabled() -> bool:
    """Whether run_replays keeps its worker pool warm between calls."""
    return os.environ.get(POOL_REUSE_ENV_VAR, "") != "0"


#: One scenario's warm-up key: (scale, scenario seed, trace names).
_WarmKey = tuple[Scale, int, tuple[str, ...]]


def _warm_worker(scenario_keys: tuple[_WarmKey, ...]) -> None:
    """Worker initializer: make sure the swept scenarios are built.

    Under ``fork`` the parent already built everything before the pool
    existed (see :func:`_prepare_shared`), so each ``make_scenario`` /
    ``trace`` call is a memo hit on the inherited copy-on-write pages.
    Under ``spawn`` the child starts empty and this performs the actual
    (deterministic) rebuild.
    """
    for scale, seed, trace_names in scenario_keys:
        scenario = make_scenario(scale, seed)
        for name in trace_names:
            scenario.trace(name)


def _prepare_shared(
    spec_list: "Sequence[ReplaySpec | FleetSpec]",
) -> tuple[_WarmKey, ...]:
    """Build every swept scenario — hierarchy *and* traces — in the parent.

    Must run before the pool is created: forked workers then share the
    built world copy-on-write and never pickle or rebuild it.  Returns
    the warm-up keys for :func:`_warm_worker` (the spawn fallback).
    """
    # repro: publishes
    wanted: dict[tuple[Scale, int], set[str]] = {}
    for spec in spec_list:
        names = wanted.setdefault((spec.scale, spec.scenario_seed), set())
        if isinstance(spec, FleetSpec):
            names.update(spec.trace_names)
        else:
            names.add(spec.trace_name)
    keys = []
    for (scale, seed), names in sorted(
        wanted.items(), key=lambda item: (item[0][0].value, item[0][1])
    ):
        scenario = make_scenario(scale, seed)
        ordered = tuple(sorted(names))
        for name in ordered:
            scenario.trace(name)
        keys.append((scale, seed, ordered))
    return tuple(keys)


# The shared pool: created by the first parallel run_replays call and
# kept warm for the rest of the sweep (fork + scenario warm-up is paid
# once, not once per sweep point).  Discarded whenever a run breaks it
# (timeout, dead worker), the requested worker count changes, or reuse
# is disabled via $REPRO_POOL_REUSE=0.
_shared_pool: ProcessPoolExecutor | None = None
_shared_pool_workers: int = 0


def shutdown_shared_pool() -> None:
    """Tear down the warm worker pool (no-op when none is alive)."""
    global _shared_pool
    if _shared_pool is not None:
        _shared_pool.shutdown(wait=False, cancel_futures=True)
        _shared_pool = None


atexit.register(shutdown_shared_pool)


def _acquire_pool(
    workers: int, warm_keys: tuple[_WarmKey, ...]
) -> ProcessPoolExecutor:
    """A pool with ``workers`` processes — reused from the last call when
    possible.

    A reused pool was forked before this call's scenarios were built in
    the parent, so its workers may warm missed scenarios on demand (the
    worker-side memo makes that a one-time cost per worker).
    """
    global _shared_pool, _shared_pool_workers
    if _shared_pool is not None:
        if pool_reuse_enabled() and _shared_pool_workers == workers:
            return _shared_pool
        shutdown_shared_pool()
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=_warm_worker,
        initargs=(warm_keys,),
    )


def _release_pool(pool: ProcessPoolExecutor, workers: int, broken: bool) -> None:
    """Keep a healthy pool warm for the next call; discard a broken one."""
    global _shared_pool, _shared_pool_workers
    if broken or not pool_reuse_enabled():
        if pool is _shared_pool:
            _shared_pool = None
        pool.shutdown(wait=False, cancel_futures=True)
        return
    _shared_pool = pool
    _shared_pool_workers = workers


def _execute_spec(spec: ReplaySpec | FleetSpec) -> "ReplaySummary | FleetSummary":
    """Run one spec in this process and summarise the outcome."""
    if isinstance(spec, FleetSpec):
        # Imported lazily: fleet.py builds on this module's batch API.
        from repro.experiments.fleet import run_fleet_replay

        scenario = make_scenario(spec.scale, spec.scenario_seed)
        traces = [scenario.trace(name) for name in spec.trace_names]
        result = run_fleet_replay(
            scenario.built, traces, spec.config, attack=spec.attack,
            seed=spec.seed,
        )
        return FleetSummary(
            label=result.label,
            members=[
                FleetMemberSummary(
                    trace_name=member.trace_name,
                    sr_queries=member.metrics.sr_queries,
                    window=member.window,
                )
                for member in result.members
            ],
        )
    scenario = make_scenario(spec.scale, spec.scenario_seed)
    trace = scenario.trace(spec.trace_name)
    result = run_replay(
        scenario.built,
        trace,
        spec.config,
        attack=spec.attack,
        track_gaps=spec.track_gaps,
        memory_sample_interval=spec.memory_sample_interval,
        seed=spec.seed,
        observe=spec.observe,
        faults=spec.faults,
        adversary=spec.adversary,
        validation=spec.validation,
    )
    return result.to_summary()


def run_replays(
    specs: Iterable[ReplaySpec | FleetSpec],
    workers: int | None = None,
    timeout: float | None = None,
    timings: StageTimings | None = None,
) -> "list[ReplaySummary | FleetSummary]":
    """Execute every spec; results come back in spec order.

    Args:
        specs: replay / fleet specs; independent of each other.
        workers: process count.  None reads ``$REPRO_WORKERS`` (default
            1); 1 runs everything in-process with no executor involved.
        timeout: optional per-replay wall-clock limit in seconds
            (parallel mode only).
        timings: optional :class:`StageTimings` accumulating the batch's
            per-stage wall/CPU cost ("prepare" and "execute" stages).

    Raises:
        ReplayExecutionError: when a worker process dies (e.g. OOM-kill)
            or a replay exceeds ``timeout``.  Worker exceptions from the
            replay itself propagate unchanged.
    """
    with maybe_stage(timings, "prepare"):
        spec_list = list(specs)
        if workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(spec_list) <= 1:
        with maybe_stage(timings, "execute"):
            return [_execute_spec(spec) for spec in spec_list]

    with maybe_stage(timings, "prepare"):
        # Build the shared world BEFORE the pool forks off it.
        warm_keys = _prepare_shared(spec_list)
        pool = _acquire_pool(workers, warm_keys)
    broken = False
    try:
        with maybe_stage(timings, "execute"):
            futures: list[Future] = [
                pool.submit(_execute_spec, spec) for spec in spec_list
            ]
            results = []
            for spec, future in zip(spec_list, futures):
                try:
                    results.append(future.result(timeout=timeout))
                except FuturesTimeoutError:
                    broken = True
                    _abort_pool(pool, futures)
                    raise ReplayExecutionError(
                        f"replay {spec.describe()} exceeded the {timeout:g} s "
                        f"timeout"
                    ) from None
                except BrokenExecutor as error:
                    broken = True
                    raise ReplayExecutionError(
                        f"a worker process died while running "
                        f"{spec.describe()} (killed or out of memory); "
                        f"rerun with workers=1 to reproduce in-process"
                    ) from error
            return results
    except BaseException:
        broken = True
        raise
    finally:
        _release_pool(pool, workers, broken)


def _abort_pool(pool: ProcessPoolExecutor, futures: list[Future]) -> None:
    """Stop a pool hard after a timeout: cancel queued work, kill workers."""
    for future in futures:
        future.cancel()
    # Terminate worker processes so a hung replay cannot block interpreter
    # shutdown; ProcessPoolExecutor exposes no public kill, and the
    # private map is absent once the pool is already broken.
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()
