"""Parallel trace replay: fan independent replays over worker processes.

Every figure/table is a sweep of independent :func:`~repro.experiments.
harness.run_replay` calls (schemes × traces × attack durations × seeds).
:func:`run_replays` is the batch API those sweeps go through: it takes
declarative :class:`ReplaySpec` / :class:`FleetSpec` descriptions and
executes them either in-process (``workers=1``, the default) or across a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Three design rules keep this correct and cheap:

* **Specs, not objects, cross the boundary.**  A spec carries only
  ``(scale, scenario seed, trace name, config, attack, seed)``; each
  worker rebuilds the scenario through the memoised
  :func:`~repro.experiments.scenarios.make_scenario`, so the multi-MB
  ``BuiltHierarchy`` is never pickled (and under the default ``fork``
  start method it is shared copy-on-write with the parent).
* **Summaries, not servers, come back.**  A replay's
  :class:`CachingServer`/engine graph is full of closures and timers;
  workers reduce it to a picklable :class:`ReplaySummary` holding the
  numbers the figures need (failure rates, window counters, traffic,
  gap and memory samples).
* **Determinism is untouched.**  A replay's outcome depends only on its
  spec; the serial and parallel paths run the identical code, so a sweep
  produces bitwise-identical numbers at any worker count (covered by
  tests/experiments/test_parallel.py).

``REPRO_WORKERS`` selects the default worker count; ``workers=1`` (or an
unset variable) preserves the original fully-serial behaviour.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.scenarios import Scale, Scenario, make_scenario
from repro.experiments.summary import (
    FleetMemberSummary,
    FleetSummary,
    OverheadComparable,
    ReplaySummary,
    summarize_replay,
)
from repro.obs.spec import ObservationSpec
from repro.obs.timing import StageTimings, maybe_stage
from repro.simulation.faults import FaultSpec

__all__ = [
    "FleetMemberSummary",
    "FleetSpec",
    "FleetSummary",
    "OverheadComparable",
    "ReplayExecutionError",
    "ReplaySpec",
    "ReplaySummary",
    "WORKERS_ENV_VAR",
    "default_worker_count",
    "run_replays",
    "summarize_replay",
]

#: Environment variable selecting the default worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"


class ReplayExecutionError(RuntimeError):
    """A worker process died or exceeded the per-replay timeout."""


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReplaySpec:
    """A declarative, picklable description of one replay.

    Identifies the scenario by ``(scale, scenario_seed)`` — the
    lightweight key :func:`make_scenario` memoises on — instead of
    carrying the built hierarchy.
    """

    scale: Scale
    scenario_seed: int
    trace_name: str
    config: ResilienceConfig
    attack: AttackSpec | None = None
    seed: int = 0
    track_gaps: bool = False
    memory_sample_interval: float | None = None
    observe: ObservationSpec | None = None
    """Optional observability setup.  Executed inside the worker, so
    per-spec output paths work at any worker count (each worker writes
    its own files; the event stream stays deterministic because it is
    derived from the replay's virtual clock only)."""

    faults: FaultSpec | None = None
    """Optional fault-injection setup (DESIGN.md §11).  Like ``observe``
    it is a frozen description: each worker builds its own injector, and
    the hash-keyed draws make the outcome independent of worker count."""

    validation: bool = False
    """Shadow the replay's cache with the naive oracle (DESIGN.md §12).
    Results are identical when the check passes; the worker raises a
    DivergenceError / InvariantViolation otherwise."""

    @classmethod
    def for_scenario(
        cls,
        scenario: Scenario,
        trace_name: str,
        config: ResilienceConfig,
        *,
        attack: AttackSpec | None = None,
        seed: int = 0,
        track_gaps: bool = False,
        memory_sample_interval: float | None = None,
        observe: ObservationSpec | None = None,
        faults: FaultSpec | None = None,
        validation: bool = False,
    ) -> "ReplaySpec":
        """A spec that replays ``trace_name`` of an existing scenario."""
        return cls(
            scale=scenario.scale,
            scenario_seed=scenario.seed,
            trace_name=trace_name,
            config=config,
            attack=attack,
            seed=seed,
            track_gaps=track_gaps,
            memory_sample_interval=memory_sample_interval,
            observe=observe,
            faults=faults,
            validation=validation,
        )

    def describe(self) -> str:
        return (
            f"{self.trace_name}/{self.config.label}"
            f" (scale={self.scale.value}, seed={self.seed})"
        )


@dataclass(frozen=True)
class FleetSpec:
    """One fleet replay (several traces over shared virtual time)."""

    scale: Scale
    scenario_seed: int
    trace_names: tuple[str, ...]
    config: ResilienceConfig
    attack: AttackSpec | None = None
    seed: int = 0

    @classmethod
    def for_scenario(
        cls,
        scenario: Scenario,
        trace_names: Sequence[str],
        config: ResilienceConfig,
        *,
        attack: AttackSpec | None = None,
        seed: int = 0,
    ) -> "FleetSpec":
        return cls(
            scale=scenario.scale,
            scenario_seed=scenario.seed,
            trace_names=tuple(trace_names),
            config=config,
            attack=attack,
            seed=seed,
        )

    def describe(self) -> str:
        return (
            f"fleet[{','.join(self.trace_names)}]/{self.config.label}"
            f" (scale={self.scale.value}, seed={self.seed})"
        )


# The summary shapes themselves live in repro.experiments.summary (one
# definition shared with the serial runner); this module re-exports them
# so historical `from repro.experiments.parallel import ReplaySummary`
# imports keep working.


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def default_worker_count() -> int:
    """The worker count named by $REPRO_WORKERS (default 1 = serial).

    Raises:
        ValueError: when the variable is set but not a positive integer.
    """
    raw = os.environ.get(WORKERS_ENV_VAR)
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV_VAR}={raw!r} is not an integer"
        ) from None
    if value < 1:
        raise ValueError(f"{WORKERS_ENV_VAR} must be >= 1, got {value}")
    return value


def _warm_worker(scenario_keys: tuple[tuple[Scale, int], ...]) -> None:
    """Worker initializer: pre-build (and memoise) the swept scenarios.

    ``make_scenario`` is process-memoised, so after this runs every task
    the worker receives finds its hierarchy and traces already built.
    """
    for scale, seed in scenario_keys:
        make_scenario(scale, seed)


def _execute_spec(spec: ReplaySpec | FleetSpec) -> "ReplaySummary | FleetSummary":
    """Run one spec in this process and summarise the outcome."""
    if isinstance(spec, FleetSpec):
        # Imported lazily: fleet.py builds on this module's batch API.
        from repro.experiments.fleet import run_fleet_replay

        scenario = make_scenario(spec.scale, spec.scenario_seed)
        traces = [scenario.trace(name) for name in spec.trace_names]
        result = run_fleet_replay(
            scenario.built, traces, spec.config, attack=spec.attack,
            seed=spec.seed,
        )
        return FleetSummary(
            label=result.label,
            members=[
                FleetMemberSummary(
                    trace_name=member.trace_name,
                    sr_queries=member.metrics.sr_queries,
                    window=member.window,
                )
                for member in result.members
            ],
        )
    scenario = make_scenario(spec.scale, spec.scenario_seed)
    trace = scenario.trace(spec.trace_name)
    result = run_replay(
        scenario.built,
        trace,
        spec.config,
        attack=spec.attack,
        track_gaps=spec.track_gaps,
        memory_sample_interval=spec.memory_sample_interval,
        seed=spec.seed,
        observe=spec.observe,
        faults=spec.faults,
        validation=spec.validation,
    )
    return result.to_summary()


def run_replays(
    specs: Iterable[ReplaySpec | FleetSpec],
    workers: int | None = None,
    timeout: float | None = None,
    timings: StageTimings | None = None,
) -> "list[ReplaySummary | FleetSummary]":
    """Execute every spec; results come back in spec order.

    Args:
        specs: replay / fleet specs; independent of each other.
        workers: process count.  None reads ``$REPRO_WORKERS`` (default
            1); 1 runs everything in-process with no executor involved.
        timeout: optional per-replay wall-clock limit in seconds
            (parallel mode only).
        timings: optional :class:`StageTimings` accumulating the batch's
            per-stage wall/CPU cost ("prepare" and "execute" stages).

    Raises:
        ReplayExecutionError: when a worker process dies (e.g. OOM-kill)
            or a replay exceeds ``timeout``.  Worker exceptions from the
            replay itself propagate unchanged.
    """
    with maybe_stage(timings, "prepare"):
        spec_list = list(specs)
        if workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(spec_list) <= 1:
        with maybe_stage(timings, "execute"):
            return [_execute_spec(spec) for spec in spec_list]

    with maybe_stage(timings, "prepare"):
        scenario_keys = tuple(dict.fromkeys(
            (spec.scale, spec.scenario_seed) for spec in spec_list
        ))
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(spec_list)),
            initializer=_warm_worker,
            initargs=(scenario_keys,),
        )
    try:
        with maybe_stage(timings, "execute"):
            futures: list[Future] = [
                pool.submit(_execute_spec, spec) for spec in spec_list
            ]
            results = []
            for spec, future in zip(spec_list, futures):
                try:
                    results.append(future.result(timeout=timeout))
                except FuturesTimeoutError:
                    _abort_pool(pool, futures)
                    raise ReplayExecutionError(
                        f"replay {spec.describe()} exceeded the {timeout:g} s "
                        f"timeout"
                    ) from None
                except BrokenExecutor as error:
                    raise ReplayExecutionError(
                        f"a worker process died while running "
                        f"{spec.describe()} (killed or out of memory); "
                        f"rerun with workers=1 to reproduce in-process"
                    ) from error
            return results
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _abort_pool(pool: ProcessPoolExecutor, futures: list[Future]) -> None:
    """Stop a pool hard after a timeout: cancel queued work, kill workers."""
    for future in futures:
        future.cancel()
    # Terminate worker processes so a hung replay cannot block interpreter
    # shutdown; ProcessPoolExecutor exposes no public kill, and the
    # private map is absent once the pool is already broken.
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()
