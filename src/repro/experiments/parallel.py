"""Parallel trace replay: fan independent replays over worker processes.

Every figure/table is a sweep of independent :func:`~repro.experiments.
harness.run_replay` calls (schemes × traces × attack durations × seeds).
:func:`run_replays` is the batch API those sweeps go through: it takes
declarative :class:`ReplaySpec` / :class:`FleetSpec` descriptions and
executes them either in-process (``workers=1``, the default) or across a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Three design rules keep this correct and cheap:

* **Specs, not objects, cross the boundary.**  A spec carries only
  ``(scale, scenario seed, trace name, config, attack, seed)``; each
  worker rebuilds the scenario through the memoised
  :func:`~repro.experiments.scenarios.make_scenario`, so the multi-MB
  ``BuiltHierarchy`` is never pickled (and under the default ``fork``
  start method it is shared copy-on-write with the parent).
* **Summaries, not servers, come back.**  A replay's
  :class:`CachingServer`/engine graph is full of closures and timers;
  workers reduce it to a picklable :class:`ReplaySummary` holding the
  numbers the figures need (failure rates, window counters, traffic,
  gap and memory samples).
* **Determinism is untouched.**  A replay's outcome depends only on its
  spec; the serial and parallel paths run the identical code, so a sweep
  produces bitwise-identical numbers at any worker count (covered by
  tests/experiments/test_parallel.py).

``REPRO_WORKERS`` selects the default worker count; ``workers=1`` (or an
unset variable) preserves the original fully-serial behaviour.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

from repro.analysis.gaps import GapSample
from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec, ReplayResult, run_replay
from repro.experiments.scenarios import Scale, Scenario, make_scenario
from repro.simulation.metrics import MemorySample, WindowCounters

#: Environment variable selecting the default worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"


class ReplayExecutionError(RuntimeError):
    """A worker process died or exceeded the per-replay timeout."""


class OverheadComparable(Protocol):
    """Anything the overhead tables can baseline against.

    Satisfied by both :class:`~repro.simulation.metrics.ReplayMetrics`
    and :class:`ReplaySummary`, so tables treat them interchangeably.
    """

    @property
    def total_outgoing(self) -> int: ...

    @property
    def total_bytes(self) -> int: ...


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReplaySpec:
    """A declarative, picklable description of one replay.

    Identifies the scenario by ``(scale, scenario_seed)`` — the
    lightweight key :func:`make_scenario` memoises on — instead of
    carrying the built hierarchy.
    """

    scale: Scale
    scenario_seed: int
    trace_name: str
    config: ResilienceConfig
    attack: AttackSpec | None = None
    seed: int = 0
    track_gaps: bool = False
    memory_sample_interval: float | None = None

    @classmethod
    def for_scenario(
        cls,
        scenario: Scenario,
        trace_name: str,
        config: ResilienceConfig,
        *,
        attack: AttackSpec | None = None,
        seed: int = 0,
        track_gaps: bool = False,
        memory_sample_interval: float | None = None,
    ) -> "ReplaySpec":
        """A spec that replays ``trace_name`` of an existing scenario."""
        return cls(
            scale=scenario.scale,
            scenario_seed=scenario.seed,
            trace_name=trace_name,
            config=config,
            attack=attack,
            seed=seed,
            track_gaps=track_gaps,
            memory_sample_interval=memory_sample_interval,
        )

    def describe(self) -> str:
        return (
            f"{self.trace_name}/{self.config.label}"
            f" (scale={self.scale.value}, seed={self.seed})"
        )


@dataclass(frozen=True)
class FleetSpec:
    """One fleet replay (several traces over shared virtual time)."""

    scale: Scale
    scenario_seed: int
    trace_names: tuple[str, ...]
    config: ResilienceConfig
    attack: AttackSpec | None = None
    seed: int = 0

    @classmethod
    def for_scenario(
        cls,
        scenario: Scenario,
        trace_names: Sequence[str],
        config: ResilienceConfig,
        *,
        attack: AttackSpec | None = None,
        seed: int = 0,
    ) -> "FleetSpec":
        return cls(
            scale=scenario.scale,
            scenario_seed=scenario.seed,
            trace_names=tuple(trace_names),
            config=config,
            attack=attack,
            seed=seed,
        )

    def describe(self) -> str:
        return (
            f"fleet[{','.join(self.trace_names)}]/{self.config.label}"
            f" (scale={self.scale.value}, seed={self.seed})"
        )


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReplaySummary:
    """The picklable extract of one :class:`ReplayResult`.

    Carries every number the figures/tables consume; mirrors the metric
    accessors of :class:`~repro.simulation.metrics.ReplayMetrics` so the
    overhead tables can treat summaries and metrics interchangeably.
    """

    label: str
    trace_name: str

    sr_queries: int
    sr_failures: int
    sr_cache_hits: int
    sr_nxdomain: int
    sr_validation_failures: int

    cs_demand_queries: int
    cs_demand_failures: int
    cs_renewal_queries: int
    cs_renewal_failures: int

    total_latency: float
    bytes_out: int
    bytes_in: int

    window: WindowCounters | None = None
    gap_samples: tuple[GapSample, ...] = ()
    memory_samples: tuple[MemorySample, ...] = ()

    # -- failure rates ------------------------------------------------------

    @property
    def sr_attack_failure_rate(self) -> float:
        """SR failure fraction during the attack (0 without an attack)."""
        if self.window is None:
            return 0.0
        return self.window.sr_failure_rate

    @property
    def cs_attack_failure_rate(self) -> float:
        """CS failure fraction during the attack (0 without an attack)."""
        if self.window is None:
            return 0.0
        return self.window.cs_failure_rate

    @property
    def sr_failure_rate(self) -> float:
        if self.sr_queries == 0:
            return 0.0
        return self.sr_failures / self.sr_queries

    @property
    def cs_failure_rate(self) -> float:
        if self.cs_demand_queries == 0:
            return 0.0
        return self.cs_demand_failures / self.cs_demand_queries

    # -- traffic ------------------------------------------------------------

    @property
    def total_outgoing(self) -> int:
        """All CS -> AN messages (demand + renewal): Table 2's currency."""
        return self.cs_demand_queries + self.cs_renewal_queries

    @property
    def total_bytes(self) -> int:
        return self.bytes_out + self.bytes_in

    @property
    def mean_latency(self) -> float:
        if self.sr_queries == 0:
            return 0.0
        return self.total_latency / self.sr_queries

    def message_overhead_vs(self, baseline: OverheadComparable) -> float:
        """Relative change in outgoing messages vs ``baseline`` (summary
        or :class:`ReplayMetrics` — anything with ``total_outgoing``)."""
        if baseline.total_outgoing == 0:
            raise ValueError("baseline replay sent no messages")
        return (
            (self.total_outgoing - baseline.total_outgoing)
            / baseline.total_outgoing
        )

    def byte_overhead_vs(self, baseline: OverheadComparable) -> float:
        """Relative change in total traffic bytes vs ``baseline``."""
        if baseline.total_bytes == 0:
            raise ValueError("baseline replay moved no bytes")
        return (self.total_bytes - baseline.total_bytes) / baseline.total_bytes


@dataclass(frozen=True)
class FleetMemberSummary:
    """One organisation's slice of a fleet replay."""

    trace_name: str
    sr_queries: int
    window: WindowCounters | None = None


@dataclass
class FleetSummary:
    """Picklable fleet outcome: per-member windows plus aggregates."""

    label: str
    members: list[FleetMemberSummary] = field(default_factory=list)

    def aggregate_sr_failure_rate(self) -> float:
        """Fleet-wide SR failure fraction inside the attack window."""
        queries = sum(
            member.window.sr_queries for member in self.members
            if member.window is not None
        )
        failures = sum(
            member.window.sr_failures for member in self.members
            if member.window is not None
        )
        if queries == 0:
            return 0.0
        return failures / queries

    def total_failed_lookups(self) -> int:
        """The §6 damage currency: failed lookups across the fleet."""
        return sum(
            member.window.sr_failures for member in self.members
            if member.window is not None
        )

    def member(self, trace_name: str) -> FleetMemberSummary:
        for entry in self.members:
            if entry.trace_name == trace_name:
                return entry
        raise KeyError(trace_name)

    def render(self) -> str:
        from repro.experiments.fleet import render_fleet_table

        return render_fleet_table(self.label, self.members,
                                  self.aggregate_sr_failure_rate())


def summarize_replay(result: ReplayResult) -> ReplaySummary:
    """Reduce a full replay result to its picklable summary."""
    metrics = result.metrics
    return ReplaySummary(
        label=result.label,
        trace_name=result.trace_name,
        sr_queries=metrics.sr_queries,
        sr_failures=metrics.sr_failures,
        sr_cache_hits=metrics.sr_cache_hits,
        sr_nxdomain=metrics.sr_nxdomain,
        sr_validation_failures=metrics.sr_validation_failures,
        cs_demand_queries=metrics.cs_demand_queries,
        cs_demand_failures=metrics.cs_demand_failures,
        cs_renewal_queries=metrics.cs_renewal_queries,
        cs_renewal_failures=metrics.cs_renewal_failures,
        total_latency=metrics.total_latency,
        bytes_out=metrics.bytes_out,
        bytes_in=metrics.bytes_in,
        window=result.window,
        gap_samples=(
            tuple(result.gap_tracker.samples)
            if result.gap_tracker is not None else ()
        ),
        memory_samples=tuple(metrics.memory_samples),
    )


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def default_worker_count() -> int:
    """The worker count named by $REPRO_WORKERS (default 1 = serial).

    Raises:
        ValueError: when the variable is set but not a positive integer.
    """
    raw = os.environ.get(WORKERS_ENV_VAR)
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV_VAR}={raw!r} is not an integer"
        ) from None
    if value < 1:
        raise ValueError(f"{WORKERS_ENV_VAR} must be >= 1, got {value}")
    return value


def _warm_worker(scenario_keys: tuple[tuple[Scale, int], ...]) -> None:
    """Worker initializer: pre-build (and memoise) the swept scenarios.

    ``make_scenario`` is process-memoised, so after this runs every task
    the worker receives finds its hierarchy and traces already built.
    """
    for scale, seed in scenario_keys:
        make_scenario(scale, seed)


def _execute_spec(spec: ReplaySpec | FleetSpec) -> "ReplaySummary | FleetSummary":
    """Run one spec in this process and summarise the outcome."""
    if isinstance(spec, FleetSpec):
        # Imported lazily: fleet.py builds on this module's batch API.
        from repro.experiments.fleet import run_fleet_replay

        scenario = make_scenario(spec.scale, spec.scenario_seed)
        traces = [scenario.trace(name) for name in spec.trace_names]
        result = run_fleet_replay(
            scenario.built, traces, spec.config, attack=spec.attack,
            seed=spec.seed,
        )
        return FleetSummary(
            label=result.label,
            members=[
                FleetMemberSummary(
                    trace_name=member.trace_name,
                    sr_queries=member.metrics.sr_queries,
                    window=member.window,
                )
                for member in result.members
            ],
        )
    scenario = make_scenario(spec.scale, spec.scenario_seed)
    trace = scenario.trace(spec.trace_name)
    result = run_replay(
        scenario.built,
        trace,
        spec.config,
        attack=spec.attack,
        track_gaps=spec.track_gaps,
        memory_sample_interval=spec.memory_sample_interval,
        seed=spec.seed,
    )
    return summarize_replay(result)


def run_replays(
    specs: Iterable[ReplaySpec | FleetSpec],
    workers: int | None = None,
    timeout: float | None = None,
) -> "list[ReplaySummary | FleetSummary]":
    """Execute every spec; results come back in spec order.

    Args:
        specs: replay / fleet specs; independent of each other.
        workers: process count.  None reads ``$REPRO_WORKERS`` (default
            1); 1 runs everything in-process with no executor involved.
        timeout: optional per-replay wall-clock limit in seconds
            (parallel mode only).

    Raises:
        ReplayExecutionError: when a worker process dies (e.g. OOM-kill)
            or a replay exceeds ``timeout``.  Worker exceptions from the
            replay itself propagate unchanged.
    """
    spec_list = list(specs)
    if workers is None:
        workers = default_worker_count()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(spec_list) <= 1:
        return [_execute_spec(spec) for spec in spec_list]

    scenario_keys = tuple(dict.fromkeys(
        (spec.scale, spec.scenario_seed) for spec in spec_list
    ))
    pool = ProcessPoolExecutor(
        max_workers=min(workers, len(spec_list)),
        initializer=_warm_worker,
        initargs=(scenario_keys,),
    )
    try:
        futures: list[Future] = [
            pool.submit(_execute_spec, spec) for spec in spec_list
        ]
        results = []
        for spec, future in zip(spec_list, futures):
            try:
                results.append(future.result(timeout=timeout))
            except FuturesTimeoutError:
                _abort_pool(pool, futures)
                raise ReplayExecutionError(
                    f"replay {spec.describe()} exceeded the {timeout:g} s "
                    f"timeout"
                ) from None
            except BrokenExecutor as error:
                raise ReplayExecutionError(
                    f"a worker process died while running "
                    f"{spec.describe()} (killed or out of memory); "
                    f"rerun with workers=1 to reproduce in-process"
                ) from error
        return results
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _abort_pool(pool: ProcessPoolExecutor, futures: list[Future]) -> None:
    """Stop a pool hard after a timeout: cancel queued work, kill workers."""
    for future in futures:
        future.cancel()
    # Terminate worker processes so a hung replay cannot block interpreter
    # shutdown; ProcessPoolExecutor exposes no public kill, and the
    # private map is absent once the pool is already broken.
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()
