"""Response-time analysis (paper §4, Long TTL benefits).

"this modification reduces overall DNS traffic and improves DNS query
response time since costly walks of the DNS tree are avoided."

For each scheme this replays a trace (no attack) and reports the mean
per-lookup network wait, the stub cache-hit rate, and the average number
of CS queries per stub lookup — the three quantities that explain each
other: fewer tree walks ⇒ fewer round trips ⇒ lower latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import format_table
from repro.core.config import ResilienceConfig
from repro.experiments.harness import run_replay
from repro.experiments.registry import resolve_scale
from repro.experiments.scenarios import Scale, Scenario, make_scenario


@dataclass
class LatencyRow:
    label: str
    mean_latency: float
    cache_hit_rate: float
    cs_queries_per_lookup: float


@dataclass
class LatencyResult:
    rows: list[LatencyRow]

    def render(self) -> str:
        body = [
            (
                row.label,
                f"{row.mean_latency * 1000:.1f} ms",
                f"{row.cache_hit_rate * 100:.1f} %",
                f"{row.cs_queries_per_lookup:.3f}",
            )
            for row in self.rows
        ]
        return format_table(
            ("Scheme", "Mean wait / lookup", "SR cache hits", "CS queries / lookup"),
            body,
            title="Response time — normal operation (no attack)",
        )

    def row(self, label: str) -> LatencyRow:
        for entry in self.rows:
            if entry.label == label:
                return entry
        raise KeyError(label)


DEFAULT_SCHEMES = (
    ("vanilla", ResilienceConfig.vanilla()),
    ("refresh", ResilienceConfig.refresh()),
    ("refresh+a-lfu3", ResilienceConfig.refresh_renew("a-lfu", 3)),
    ("refresh+ttl7d", ResilienceConfig.refresh_long_ttl(7)),
    ("combination", ResilienceConfig.combination()),
)


@dataclass(frozen=True)
class LatencySpec:
    """Declarative latency-experiment request (the registry's spec)."""

    scale: Scale | None = None
    seed: int = 7
    trace_name: str = "TRC1"


def run(spec: LatencySpec) -> LatencyResult:
    """Registry entry point: build the scenario, run the comparison."""
    scenario = make_scenario(resolve_scale(spec.scale), seed=spec.seed)
    return _latency_experiment(scenario, trace_name=spec.trace_name)


def _latency_experiment(
    scenario: Scenario,
    schemes: Sequence[tuple[str, ResilienceConfig]] = DEFAULT_SCHEMES,
    trace_name: str = "TRC1",
    seed: int = 0,
) -> LatencyResult:
    """Mean response time per scheme over a full no-attack replay."""
    trace = scenario.trace(trace_name)
    rows = []
    for label, config in schemes:
        result = run_replay(scenario.built, trace, config, seed=seed)
        metrics = result.metrics
        rows.append(
            LatencyRow(
                label=label,
                mean_latency=metrics.mean_latency,
                cache_hit_rate=(
                    metrics.sr_cache_hits / metrics.sr_queries
                    if metrics.sr_queries else 0.0
                ),
                cs_queries_per_lookup=(
                    metrics.cs_demand_queries / metrics.sr_queries
                    if metrics.sr_queries else 0.0
                ),
            )
        )
    return LatencyResult(rows=rows)
