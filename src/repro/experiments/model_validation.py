"""Validate the analytical IRR-availability model against the simulator.

For each scheme: replay a trace with no attack, measure each zone's
demand contact rate (``CachingServer.zone_contact_counts``), feed those
rates into the closed-form model of :mod:`repro.analysis.model`, and
compare the predicted number of zones with live IRRs at the attack
instant (start of day 7) against the simulator's actual count.

The model is a steady-state Poisson approximation, so agreement within
tens of percent — and correct *ordering* across schemes — is the success
criterion, not exactness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.model import SchemeModel, predict_cached_zone_count
from repro.analysis.report import format_table
from repro.core.config import ResilienceConfig
from repro.dns.name import Name
from repro.experiments.harness import run_replay
from repro.experiments.scenarios import Scenario

DAY = 86400.0


@dataclass
class ModelValidationRow:
    scheme: str
    predicted: float
    measured: int

    @property
    def relative_error(self) -> float:
        if self.measured == 0:
            return float("inf") if self.predicted > 0 else 0.0
        return abs(self.predicted - self.measured) / self.measured


@dataclass
class ModelValidationResult:
    rows: list[ModelValidationRow]

    def render(self) -> str:
        body = [
            (
                row.scheme,
                f"{row.predicted:.1f}",
                row.measured,
                f"{row.relative_error * 100:.0f} %",
            )
            for row in self.rows
        ]
        return format_table(
            ("Scheme", "Model: E[zones cached]", "Simulated", "Rel. error"),
            body,
            title=(
                "Analytical model vs simulation — zones with live IRRs at "
                "the attack instant (day 7)"
            ),
        )

    def row(self, scheme: str) -> ModelValidationRow:
        for entry in self.rows:
            if entry.scheme == scheme:
                return entry
        raise KeyError(scheme)


_SCHEMES: tuple[tuple[ResilienceConfig, SchemeModel], ...] = (
    (ResilienceConfig.vanilla(), SchemeModel("vanilla", "vanilla")),
    (ResilienceConfig.refresh(), SchemeModel("refresh", "refresh")),
    (
        ResilienceConfig.refresh_renew("lru", 3),
        SchemeModel("refresh+lru3", "renewal", credit=3),
    ),
    (
        ResilienceConfig.refresh_long_ttl(3),
        SchemeModel("refresh+ttl3d", "refresh", ttl_override=3 * DAY),
    ),
)


def model_validation(
    scenario: Scenario,
    trace_name: str = "TRC1",
    instant: float | None = None,
    seed: int = 0,
) -> ModelValidationResult:
    """Model-vs-simulation comparison at ``instant`` (default day 6)."""
    trace = scenario.trace(trace_name)
    probe_time = 6 * DAY if instant is None else instant
    irr_ttls: dict[Name, float] = {
        zone.name: zone.infrastructure_records.ns.ttl
        for zone in scenario.built.tree.zones()
    }
    rows = []
    for config, model in _SCHEMES:
        # Sample cache occupancy during the replay so the measurement is
        # a true snapshot at the probe instant (the end-state cache would
        # leak post-probe refreshes into the count).
        result = run_replay(
            scenario.built, trace, config, seed=seed,
            memory_sample_interval=probe_time / 8,
        )
        server = result.server
        # Rates over the whole trace (the process is ~stationary, so the
        # full-window average is the cleanest λ estimate).
        contact_rates = {
            zone: count / trace.duration
            for zone, count in server.zone_contact_counts.items()
            if not zone.is_root
        }
        # Long-TTL runs override TTLs at the authority; mirror it here.
        ttls = irr_ttls
        if config.long_ttl is not None:
            ttls = {zone: config.long_ttl for zone in irr_ttls}
        predicted = predict_cached_zone_count(model, contact_rates, ttls)
        probe_sample = min(
            result.metrics.memory_samples,
            key=lambda sample: abs(sample.time - probe_time),
        )
        rows.append(
            ModelValidationRow(
                scheme=model.name,
                predicted=predicted,
                measured=probe_sample.zones_cached,
            )
        )
    return ModelValidationResult(rows=rows)
