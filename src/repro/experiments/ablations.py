"""Ablations and extension experiments beyond the paper's figures.

* :func:`mechanism_ablation` — decompose the combination scheme: vanilla
  → refresh-only → renew-only (no refresh) → refresh+renew → +long-TTL.
  The paper never isolates renew-without-refresh; this fills that gap.
* :func:`stale_comparison` — the Ballani & Francis serve-stale comparator
  from related work (§7) against the paper's schemes.
* :func:`other_attack_classes` — the two §6 attack classes the paper
  discusses but does not simulate: attacking one popular SLD, and
  attacking a DNS-hosting provider.
* :func:`scale_sensitivity` — verifies DESIGN.md §6's claim that failure
  *rates* are scale-stable (TINY vs the requested scale).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.report import format_table
from repro.core.config import ResilienceConfig
from repro.dns.name import Name
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.max_damage import upcoming_query_counts
from repro.experiments.scenarios import Scale, Scenario, make_scenario

HOUR = 3600.0


@dataclass
class AblationResult:
    """Rows of (label, SR failure, CS failure, message count)."""

    title: str
    rows: list[tuple[str, float, float, int]]

    def render(self) -> str:
        body = [
            (label, f"{sr * 100:.2f} %", f"{cs * 100:.2f} %", f"{messages:,}")
            for label, sr, cs, messages in self.rows
        ]
        return format_table(
            ("Scheme", "SR failures", "CS failures", "Messages out"),
            body,
            title=self.title,
        )

    def sr_rate(self, label: str) -> float:
        for row_label, sr, _, _ in self.rows:
            if row_label == label:
                return sr
        raise KeyError(label)


def _run_schemes(
    scenario: Scenario,
    schemes: list[tuple[str, ResilienceConfig]],
    title: str,
    attack: AttackSpec | None,
    trace_name: str = "TRC1",
    seed: int = 0,
) -> AblationResult:
    trace = scenario.trace(trace_name)
    rows = []
    for label, config in schemes:
        result = run_replay(scenario.built, trace, config, attack=attack,
                            seed=seed)
        rows.append(
            (
                label,
                result.sr_attack_failure_rate,
                result.cs_attack_failure_rate,
                result.metrics.total_outgoing,
            )
        )
    return AblationResult(title=title, rows=rows)


def mechanism_ablation(
    scenario: Scenario, attack_hours: float = 6.0, seed: int = 0
) -> AblationResult:
    """Each mechanism in isolation, then stacked."""
    renew_only = ResilienceConfig(
        ttl_refresh=False,
        renewal_policy=ResilienceConfig.refresh_renew("a-lfu", 3).renewal_policy,
        label="renew-only(a-lfu3)",
    )
    schemes = [
        ("vanilla", ResilienceConfig.vanilla()),
        ("refresh only", ResilienceConfig.refresh()),
        ("renew only (A-LFU 3)", renew_only),
        ("refresh + renew", ResilienceConfig.refresh_renew("a-lfu", 3)),
        ("long-TTL 3d only", replace(ResilienceConfig.refresh_long_ttl(3),
                                     ttl_refresh=False, label="ttl3d-only")),
        ("combination", ResilienceConfig.combination()),
    ]
    attack = AttackSpec(start=scenario.attack_start,
                        duration=attack_hours * HOUR)
    return _run_schemes(
        scenario, schemes,
        "Ablation — mechanisms in isolation (6 h root+TLD attack)", attack,
        seed=seed,
    )


def stale_comparison(
    scenario: Scenario, attack_hours: float = 6.0, seed: int = 0
) -> AblationResult:
    """Serve-stale (related-work comparator) vs the paper's schemes."""
    schemes = [
        ("vanilla", ResilienceConfig.vanilla()),
        ("serve-stale", ResilienceConfig.stale_serving()),
        ("refresh + A-LFU 3", ResilienceConfig.refresh_renew("a-lfu", 3)),
        ("combination", ResilienceConfig.combination()),
    ]
    attack = AttackSpec(start=scenario.attack_start,
                        duration=attack_hours * HOUR)
    return _run_schemes(
        scenario, schemes,
        "Comparator — serve-stale (Ballani'06) vs paper schemes", attack,
        seed=seed,
    )


def other_attack_classes(
    scenario: Scenario, attack_hours: float = 6.0, seed: int = 0
) -> AblationResult:
    """§6's other attacks: one popular SLD; one DNS-hosting provider."""
    trace = scenario.trace("TRC1")
    start = scenario.attack_start
    end = start + attack_hours * HOUR
    counts = upcoming_query_counts(trace, scenario, start, end)

    def busiest(candidates: list[Name]) -> Name:
        return max(candidates, key=lambda zone: counts.get(zone, 0))

    slds = [
        zone.name
        for zone in scenario.built.tree.zones()
        if zone.name.depth() == 2
        and zone.name not in scenario.built.provider_zones
    ]
    target_sld = busiest(slds)
    target_provider = busiest(scenario.built.provider_zones)

    rows = []
    for label, targets in (
        (f"popular SLD ({target_sld})", (target_sld,)),
        (f"provider ({target_provider})", (target_provider,)),
    ):
        spec = AttackSpec(start=start, duration=attack_hours * HOUR,
                          targets=targets)
        for scheme_label, config in (
            ("vanilla", ResilienceConfig.vanilla()),
            ("combination", ResilienceConfig.combination()),
        ):
            result = run_replay(scenario.built, trace, config, attack=spec,
                                seed=seed)
            rows.append(
                (
                    f"{label} / {scheme_label}",
                    result.sr_attack_failure_rate,
                    result.cs_attack_failure_rate,
                    result.metrics.total_outgoing,
                )
            )
    return AblationResult(
        title="Other attack classes (paper §6): single SLD / provider",
        rows=rows,
    )


def capacity_ablation(
    scenario: Scenario, attack_hours: float = 6.0, seed: int = 0
) -> AblationResult:
    """Bounded-cache sensitivity: how much memory do the schemes need?

    The paper (§5.2.2) argues the memory overhead is negligible for
    production caches; this ablation probes the other direction — when
    the cache is too small for the IRR working set, LRU eviction starts
    undoing the renewal/long-TTL work and resilience decays gracefully.
    Capacities are expressed relative to the zone count.
    """
    zone_count = scenario.built.tree.zone_count()
    base = ResilienceConfig.combination()
    schemes = [
        ("combination / unbounded", base),
        ("combination / 4x zones",
         replace(base, cache_capacity=4 * zone_count,
                 label="combo-cap4x")),
        ("combination / 1x zones",
         replace(base, cache_capacity=zone_count, label="combo-cap1x")),
        ("combination / 0.25x zones",
         replace(base, cache_capacity=max(8, zone_count // 4),
                 label="combo-cap025x")),
        ("vanilla / unbounded", ResilienceConfig.vanilla()),
    ]
    attack = AttackSpec(start=scenario.attack_start,
                        duration=attack_hours * HOUR)
    return _run_schemes(
        scenario, schemes,
        "Ablation — cache capacity vs resilience (6 h attack)", attack,
        seed=seed,
    )


def holddown_ablation(
    scenario: Scenario, attack_hours: float = 6.0, seed: int = 0
) -> AblationResult:
    """Dead-server hold-down: timeout-storm damping during the attack.

    Hold-down does not change *whether* a lookup can succeed (the data
    is still unreachable), but it stops the resolver from re-timing-out
    on known-dead servers — visible as far fewer failed CS queries.
    """
    schemes = [
        ("vanilla", ResilienceConfig.vanilla()),
        ("vanilla + holddown 10m",
         replace(ResilienceConfig.vanilla(), server_holddown=600.0,
                 label="vanilla+holddown")),
        ("refresh + holddown 10m",
         replace(ResilienceConfig.refresh(), server_holddown=600.0,
                 label="refresh+holddown")),
        ("refresh + fast-select",
         replace(ResilienceConfig.refresh(), prefer_fast_servers=True,
                 label="refresh+fastselect")),
    ]
    attack = AttackSpec(start=scenario.attack_start,
                        duration=attack_hours * HOUR)
    return _run_schemes(
        scenario, schemes,
        "Ablation — dead-server hold-down & RTT selection (6 h attack)",
        attack, seed=seed,
    )


@dataclass
class ScaleSensitivityResult:
    """Failure rates for the same scheme at two scales."""

    rows: list[tuple[str, str, float, float]]

    def render(self) -> str:
        body = [
            (scale, scheme, f"{sr * 100:.2f} %", f"{cs * 100:.2f} %")
            for scale, scheme, sr, cs in self.rows
        ]
        return format_table(
            ("Scale", "Scheme", "SR failures", "CS failures"),
            body,
            title="Scale sensitivity — failure rates across scales",
        )


def scale_sensitivity(
    scales: tuple[Scale, ...] = (Scale.TINY, Scale.SMALL),
    attack_hours: float = 6.0,
    seed: int = 0,
) -> ScaleSensitivityResult:
    """The same schemes at multiple scales; rates should be comparable."""
    schemes = [
        ("vanilla", ResilienceConfig.vanilla()),
        ("refresh", ResilienceConfig.refresh()),
        ("combination", ResilienceConfig.combination()),
    ]
    rows = []
    for scale in scales:
        scenario = make_scenario(scale)
        trace = scenario.trace("TRC1")
        attack = AttackSpec(start=scenario.attack_start,
                            duration=attack_hours * HOUR)
        for label, config in schemes:
            result = run_replay(scenario.built, trace, config, attack=attack,
                                seed=seed)
            rows.append(
                (
                    scale.value,
                    label,
                    result.sr_attack_failure_rate,
                    result.cs_attack_failure_rate,
                )
            )
    return ScaleSensitivityResult(rows=rows)
