"""Cache-poisoning sweep: injection rate × scheme, dwell-time CDFs.

An off-path forger races honest answers at the resolver's network edge
(DESIGN.md §16): each upstream A-query gives it one BLAKE2b-keyed
chance to substitute a forged authoritative answer.  What happens next
is decided by the machinery this repo already models — RFC 2181
credibility ranking decides what the forgery may displace, and the TTL
policy under test decides how long a stuck forgery survives.  This
experiment sweeps the injection rate (columns) against the scheme
ladder, pairing every scheme with a *guarded* variant (hardened
ranking + source-port entropy + IRR eviction protection), and reports
per cell how many forgeries stuck and the dwell-time distribution —
how long poisoned data stayed servable before cure, expiry or
eviction.

Long-TTL schemes are the interesting rows: the paper's resilience
mechanism (stretching TTLs) is exactly what stretches poison dwell
times, and the guard columns quantify how much of that risk the
ranking defenses claw back.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.report import format_table
from repro.core.config import ResilienceConfig
from repro.core.schemes import parse_scheme
from repro.experiments.parallel import ReplaySpec, run_replays
from repro.experiments.registry import resolve_scale
from repro.experiments.scenarios import Scale, make_scenario
from repro.simulation.adversary import AdversarySpec, PoisonAttackSpec


@dataclass(frozen=True)
class PoisoningSpec:
    """Declarative poisoning-sweep request (the registry's spec)."""

    scale: Scale | None = None
    seed: int = 7
    schemes: str = "vanilla,long-ttl:7"
    """Comma-separated scheme ladder; each scheme also gets a guarded
    row (hardened ranking + entropy + IRR protection)."""

    trace_name: str = "TRC1"
    rates: tuple[float, ...] = (0.01, 0.05, 0.2)
    """Forgery attempt probabilities per upstream query, swept as
    columns."""

    success: float = 0.5
    """Race-win probability per attempt (before the entropy discount)."""

    ttl: float = 3600.0
    """TTL carried by forged records."""

    entropy_bits: int = 16
    """Source-entropy bits the guarded rows add; each bit halves the
    forger's race odds (20 bits ~ random port + ID)."""


@dataclass(frozen=True)
class PoisoningCell:
    """One (scheme row, rate) replay outcome."""

    scheme: str
    rate: float
    attempts: int
    stored: int
    cured: int
    dwells: tuple[float, ...]

    @property
    def dwell_p50(self) -> float:
        return _percentile(self.dwells, 0.50)

    @property
    def dwell_p90(self) -> float:
        return _percentile(self.dwells, 0.90)


@dataclass
class PoisoningResult:
    """The sweep's cells, renderable as the dwell-time grid."""

    rates: tuple[float, ...]
    schemes: tuple[str, ...]
    cells: list[PoisoningCell]

    def cell(self, scheme: str, rate: float) -> PoisoningCell:
        for entry in self.cells:
            if entry.scheme == scheme and entry.rate == rate:
                return entry
        raise KeyError((scheme, rate))

    def render(self) -> str:
        headers = ["Scheme"] + [f"rate={rate:g}" for rate in self.rates]
        body = []
        for scheme in self.schemes:
            row = [scheme]
            for rate in self.rates:
                cell = self.cell(scheme, rate)
                if not cell.dwells:
                    row.append(f"{cell.stored} stuck")
                else:
                    row.append(
                        f"{cell.stored} stuck"
                        f" p50={_fmt_secs(cell.dwell_p50)}"
                        f" p90={_fmt_secs(cell.dwell_p90)}"
                    )
            body.append(row)
        return format_table(
            headers,
            body,
            title="Poisoned entries stored / dwell time before cure",
        )


def _percentile(values: tuple[float, ...], q: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def _fmt_secs(seconds: float) -> str:
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.1f}h"
    if seconds >= 60.0:
        return f"{seconds / 60.0:.0f}m"
    return f"{seconds:.0f}s"


def _guarded(base: ResilienceConfig, entropy_bits: int) -> ResilienceConfig:
    """The hardened variant of ``base``: ranking + entropy + IRR guard."""
    return replace(
        base,
        harden_ranking=True,
        source_entropy_bits=entropy_bits,
        protect_irrs=True,
        label=f"{base.label}+guard",
    )


def run(spec: PoisoningSpec) -> PoisoningResult:
    """Registry entry point: sweep injection rate × scheme (+guard).

    Raises:
        ValueError: when either sweep axis is empty, a rate falls
            outside (0, 1], or ``entropy_bits`` is negative.
    """
    scheme_names = [
        name.strip() for name in spec.schemes.split(",") if name.strip()
    ]
    if not scheme_names:
        raise ValueError("need at least one scheme")
    if not spec.rates:
        raise ValueError("need at least one injection rate")
    for rate in spec.rates:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"injection rate must be in (0, 1], got {rate}")
    if spec.entropy_bits < 0:
        raise ValueError("entropy_bits must be >= 0")
    scenario = make_scenario(resolve_scale(spec.scale), seed=spec.seed)
    configs: list[ResilienceConfig] = []
    for name in scheme_names:
        base = parse_scheme(name)
        configs.append(base)
        configs.append(_guarded(base, spec.entropy_bits))
    specs = [
        ReplaySpec.for_scenario(
            scenario,
            spec.trace_name,
            config,
            seed=spec.seed,
            adversary=AdversarySpec(
                poison=PoisonAttackSpec(
                    rate=rate, success=spec.success, ttl=spec.ttl,
                )
            ),
        )
        for config in configs
        for rate in spec.rates
    ]
    summaries = iter(run_replays(specs))
    cells = []
    for config in configs:
        for rate in spec.rates:
            summary = next(summaries)
            cells.append(
                PoisoningCell(
                    scheme=config.label,
                    rate=rate,
                    attempts=summary.poison_attempts,
                    stored=summary.poison_stored,
                    cured=summary.poison_cured,
                    dwells=tuple(summary.poison_dwells),
                )
            )
    return PoisoningResult(
        rates=spec.rates,
        schemes=tuple(config.label for config in configs),
        cells=cells,
    )
