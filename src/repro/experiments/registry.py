"""The experiment registry: one protocol, one table, generated CLIs.

Every extension experiment follows the same shape — a frozen, picklable
``*Spec`` dataclass describing *what* to run, and a module-level
``run(spec)`` returning a renderable summary.  :class:`ExperimentDef`
binds the two together with a CLI name and help line; the
``EXPERIMENTS`` table in :mod:`repro.experiments` is the registry the
CLI generates its subcommands from (and the stable lookup surface for
programmatic callers: ``EXPERIMENTS["churn"].run(spec)``).

CLI generation is driven by the spec dataclass itself: every field
becomes a ``--flag`` derived from its name, type and default, so a new
experiment gets a complete subcommand by writing only its spec and
runner.  Fields that cannot be expressed as flags (e.g. whole config
objects) opt out with ``field(metadata={"cli": False})``.
"""

from __future__ import annotations

import argparse
import dataclasses
import types
import typing
from typing import Any, Callable, Protocol, runtime_checkable

from repro.experiments.scenarios import Scale


@runtime_checkable
class Renderable(Protocol):
    """What every experiment's summary must provide."""

    def render(self) -> str: ...


@dataclasses.dataclass(frozen=True)
class ExperimentDef:
    """One registry entry: a spec shape plus its runner.

    (Deliberately *not* named ``*Spec`` — the runner is a callable,
    which spec dataclasses are statically forbidden to carry.)
    """

    name: str
    help: str
    spec_type: type
    runner: Callable[[Any], Renderable]

    def run(self, spec: Any = None) -> Renderable:
        """Execute with ``spec`` (or the spec type's defaults)."""
        if spec is None:
            spec = self.spec_type()
        if not isinstance(spec, self.spec_type):
            raise TypeError(
                f"experiment {self.name!r} expects "
                f"{self.spec_type.__name__}, got {type(spec).__name__}"
            )
        return self.runner(spec)


@dataclasses.dataclass(frozen=True)
class CommandDef:
    """A non-experiment CLI subcommand built on the same spec machinery.

    Experiments return a :class:`Renderable` summary; commands (serve,
    events, bench) own their output and return a process exit status.
    Both generate their flags from a frozen spec dataclass via
    :func:`add_spec_arguments`, so there is exactly one way a
    subcommand's surface is defined in this repo.
    """

    name: str
    help: str
    spec_type: type
    handler: Callable[[Any], int]

    def run(self, spec: Any = None) -> int:
        """Execute with ``spec`` (or the spec type's defaults)."""
        if spec is None:
            spec = self.spec_type()
        if not isinstance(spec, self.spec_type):
            raise TypeError(
                f"command {self.name!r} expects "
                f"{self.spec_type.__name__}, got {type(spec).__name__}"
            )
        return self.handler(spec)


def _cli_fields(spec_type: type) -> "list[tuple[dataclasses.Field, Any]]":
    """The (field, resolved type) pairs that become CLI flags."""
    hints = typing.get_type_hints(spec_type)
    pairs = []
    for spec_field in dataclasses.fields(spec_type):
        if not spec_field.metadata.get("cli", True):
            continue
        pairs.append((spec_field, hints[spec_field.name]))
    return pairs


def _unwrap_optional(hint: Any) -> tuple[Any, bool]:
    """``(inner, optional)`` — collapses ``X | None`` to ``(X, True)``."""
    origin = typing.get_origin(hint)
    if origin in (typing.Union, types.UnionType):
        members = [arg for arg in typing.get_args(hint) if arg is not type(None)]
        if len(members) == 1:
            return members[0], True
    return hint, False


def add_spec_arguments(
    parser: argparse.ArgumentParser, spec_type: type
) -> None:
    """Add one ``--flag`` per CLI-visible field of ``spec_type``.

    Supported field shapes: bool, int, float, str (optionally ``| None``),
    :class:`Scale` ``| None`` (rendered as value choices), and
    homogeneous ``tuple[int, ...]`` / ``tuple[float, ...]`` (rendered as
    a comma-separated list).
    """
    for spec_field, hint in _cli_fields(spec_type):
        flag = "--" + spec_field.name.replace("_", "-")
        inner, _ = _unwrap_optional(hint)
        default = spec_field.default
        helptext = str(spec_field.metadata.get("help", ""))
        if inner is bool:
            parser.add_argument(
                flag, action=argparse.BooleanOptionalAction,
                default=default, help=helptext or f"(default: {default})",
            )
        elif inner is Scale:
            parser.add_argument(
                flag, choices=[scale.value for scale in Scale], default=None,
                help=helptext or "experiment scale (default: $REPRO_SCALE or tiny)",
            )
        elif typing.get_origin(inner) is tuple:
            element = typing.get_args(inner)[0]
            parser.add_argument(
                flag, default=None,
                help=(helptext or f"comma-separated {element.__name__}s")
                + f" (default: {','.join(str(v) for v in default)})",
            )
        elif inner in (int, float, str):
            parser.add_argument(
                flag, type=inner, default=default,
                help=helptext or f"(default: {default})",
            )
        else:  # pragma: no cover - new field shapes fail fast at build time
            raise TypeError(
                f"{spec_type.__name__}.{spec_field.name}: unsupported CLI "
                f"field type {hint!r}; mark it metadata={{'cli': False}}"
            )


def spec_from_args(spec_type: type, args: argparse.Namespace) -> Any:
    """Build a spec instance back out of parsed CLI arguments."""
    kwargs: dict[str, Any] = {}
    for spec_field, hint in _cli_fields(spec_type):
        value = getattr(args, spec_field.name)
        inner, _ = _unwrap_optional(hint)
        if inner is Scale:
            kwargs[spec_field.name] = Scale(value) if value else None
        elif typing.get_origin(inner) is tuple:
            if value is None:
                kwargs[spec_field.name] = spec_field.default
            else:
                element = typing.get_args(inner)[0]
                kwargs[spec_field.name] = tuple(
                    element(part) for part in str(value).split(",") if part
                )
        else:
            kwargs[spec_field.name] = value
    return spec_type(**kwargs)


def resolve_scale(scale: "Scale | None") -> Scale:
    """A spec's scale field: explicit value, else $REPRO_SCALE, else TINY."""
    if scale is not None:
        return scale
    return Scale.from_env(default=Scale.TINY)
