"""IRR-churn experiment: what long TTLs cost when zones change servers.

Paper §4 (Long TTL): "if the IRR changes at the ANs, the cached copy
will be out of date... The penalty paid for querying an obsolete
name-server is a longer resolution time.  [...] In the worst case, all
servers in the old IRR fail to respond and the parent zone must be
queried to reset the IRR."

This experiment makes the trade-off quantitative.  A set of zones
migrates to entirely new server sets mid-trace; we replay the same trace
under increasing IRR TTLs and report:

* lookups that *touched an obsolete server* (paid a penalty);
* lookups that *failed* (should stay ~0 — the parent fallback works);
* mean resolution latency, where each query to a dead/lame server costs
  a timeout/RTT.

Expected shape: longer TTLs widen the inconsistency window and raise the
latency tail, but availability is unharmed — supporting the paper's
argument that the long-TTL downside is latency, not correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_table
from repro.core.caching_server import CachingServer
from repro.core.config import ResilienceConfig
from repro.hierarchy.builder import BuiltHierarchy, HierarchyConfig, build_hierarchy
from repro.hierarchy.churn import ChurnSchedule, apply_churn_event, generate_churn
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import ReplayMetrics
from repro.simulation.network import Network
from repro.workload.generator import TraceGenerator, WorkloadConfig
from repro.workload.trace import Trace

DAY = 86400.0


@dataclass
class ChurnReplayResult:
    """One (scheme, churn) replay's outcome."""

    label: str
    sr_failure_rate: float
    mean_latency: float
    stale_touches: int
    """CS queries answered by nobody because the target was obsolete."""

    total_queries: int

    stale_answer_rate: float = 0.0
    """Fraction of stub answers served from lapsed records (SWR/serve-
    stale staleness actually handed to clients)."""

    upstream_queries: int = 0
    """Total CS -> AN messages (demand + renewal) — the equal-budget
    currency the Renewal 2.0 comparison normalises by."""

    invalidations: int = 0
    """Update-channel invalidations applied (``decoupled`` only)."""


@dataclass
class ChurnExperimentResult:
    """Latency/consistency cost of long TTLs under server churn."""

    churned_zones: int
    rows: list[ChurnReplayResult]

    def render(self) -> str:
        body = [
            (
                row.label,
                f"{row.sr_failure_rate * 100:.2f} %",
                f"{row.mean_latency * 1000:.1f} ms",
                row.stale_touches,
                f"{row.stale_answer_rate * 100:.2f} %",
                row.upstream_queries,
            )
            for row in self.rows
        ]
        return format_table(
            ("Scheme", "SR failures", "Mean latency", "Obsolete-server hits",
             "Stale answers", "Upstream queries"),
            body,
            title=(
                f"IRR churn — {self.churned_zones} zones migrate servers "
                "mid-trace (paper §4 long-TTL inconsistency cost)"
            ),
        )

    def row(self, label: str) -> ChurnReplayResult:
        for entry in self.rows:
            if entry.label == label:
                return entry
        raise KeyError(label)


def run_churn_replay(
    built: BuiltHierarchy,
    trace: Trace,
    config: ResilienceConfig,
    churn: ChurnSchedule,
    seed: int = 0,
) -> ChurnReplayResult:
    """Replay ``trace`` while applying churn events at their times.

    The caller must pass a *private* hierarchy (churn mutates it).
    """
    tree = built.tree
    if config.long_ttl is not None:
        tree.apply_long_ttl(config.long_ttl)
    engine = SimulationEngine()
    network = Network(tree)
    metrics = ReplayMetrics()
    server = CachingServer(
        root_hints=tree.root_hints(),
        network=network,
        clock=engine,
        config=config,
        metrics=metrics,
        seed=seed,
    )
    # The update/invalidation channel: under `decoupled`, every landed
    # migration notifies the caching server (which self-guards on
    # config.update_channel, so the tuple is passed unconditionally).
    listeners = (server.handle_invalidation,)
    for event in churn.events:
        engine.schedule(
            event.time,
            lambda now, event=event: apply_churn_event(
                tree, event, decommission_old=churn.decommission_old,
                listeners=listeners,
            ),
        )
    lost_before = network.queries_lost
    for query in trace:
        engine.advance_to(query.time)
        server.handle_stub_query(query.qname, query.rrtype, query.time)
    engine.advance_to(trace.duration)
    return ChurnReplayResult(
        label=config.label,
        sr_failure_rate=metrics.sr_failure_rate,
        mean_latency=metrics.mean_latency,
        stale_touches=network.queries_lost - lost_before,
        total_queries=metrics.sr_queries,
        stale_answer_rate=metrics.stale_answer_rate,
        upstream_queries=metrics.total_outgoing,
        invalidations=metrics.invalidations,
    )


@dataclass(frozen=True)
class ChurnSpec:
    """Declarative churn-experiment request (the registry's spec)."""

    seed: int = 3
    churn_fraction: float = 0.3
    decommission_old: bool = True
    hierarchy: HierarchyConfig | None = field(
        default=None, metadata={"cli": False}
    )
    workload: WorkloadConfig | None = field(
        default=None, metadata={"cli": False}
    )


def run(spec: ChurnSpec) -> ChurnExperimentResult:
    """Compare IRR TTL settings under mid-trace server migrations.

    Each scheme gets a freshly built (identical-seed) hierarchy because
    churn mutates the tree.  ``churn_fraction`` of eligible own-server
    SLDs migrate, uniformly over days 1-6.
    """
    hierarchy_config = spec.hierarchy or HierarchyConfig(
        num_tlds=8, num_slds=120, num_providers=3
    )
    workload_config = spec.workload or WorkloadConfig(
        duration_days=7.0, queries_per_day=2_000, num_clients=50
    )
    schemes = [
        ResilienceConfig.vanilla(),
        ResilienceConfig.refresh().with_label("refresh"),
        ResilienceConfig.refresh_long_ttl(3).with_label("refresh+ttl3d"),
        ResilienceConfig.refresh_long_ttl(7).with_label("refresh+ttl7d"),
        ResilienceConfig.swr(),
        ResilienceConfig.decoupled(7),
    ]
    rows = []
    churned = 0
    for config in schemes:
        built = build_hierarchy(hierarchy_config, seed=spec.seed)
        trace = TraceGenerator(built.catalog, workload_config,
                               seed=spec.seed).generate("CHURN", stream=1)
        eligible = _eligible_zone_count(built)
        churn = generate_churn(
            built,
            start=1 * DAY,
            end=6 * DAY,
            zone_count=max(1, int(eligible * spec.churn_fraction)),
            seed=spec.seed,
            decommission_old=spec.decommission_old,
        )
        churned = len(churn)
        rows.append(run_churn_replay(built, trace, config, churn,
                                     seed=spec.seed))
    return ChurnExperimentResult(churned_zones=churned, rows=rows)


def _eligible_zone_count(built: BuiltHierarchy) -> int:
    count = 0
    for zone in built.tree.zones():
        if zone.name.depth() != 2:
            continue
        servers = built.tree.servers_for_zone(zone.name)
        if servers and all(s.zones_served() == (zone.name,) for s in servers):
            count += 1
    return count
