"""Shared machinery for the Figures 4–11 attack grids.

Each figure is a grid of (trace × column) failure rates under the
root+TLD attack starting at day 7.  Columns are attack durations
(Figures 4–5) or scheme variants at a fixed 6-hour attack
(Figures 6–11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_table, render_failure_block
from repro.core.config import ResilienceConfig
from repro.core.schemes import parse_scheme
from repro.experiments.harness import AttackSpec
from repro.experiments.parallel import ReplaySpec, run_replays
from repro.experiments.registry import resolve_scale
from repro.experiments.scenarios import Scale, Scenario, make_scenario

HOUR = 3600.0

#: The paper's attack durations (Figures 4, 5).
DURATIONS_HOURS = (3, 6, 12, 24)

#: The paper's renewal credits (Figures 6-9).
CREDITS = (1, 3, 5)

#: The paper's long-TTL values in days (Figures 10, 11).
LONG_TTL_DAYS = (1, 3, 5, 7)


@dataclass
class FailureGrid:
    """One figure's data: failure rates per (trace, column), SR and CS."""

    title: str
    columns: tuple[str, ...]
    sr: dict[str, dict[str, float]] = field(default_factory=dict)
    cs: dict[str, dict[str, float]] = field(default_factory=dict)

    def record(self, trace: str, column: str, sr_rate: float, cs_rate: float) -> None:
        self.sr.setdefault(trace, {})[column] = sr_rate
        self.cs.setdefault(trace, {})[column] = cs_rate

    def sr_value(self, trace: str, column: str) -> float:
        return self.sr[trace][column]

    def cs_value(self, trace: str, column: str) -> float:
        return self.cs[trace][column]

    def column_mean_sr(self, column: str) -> float:
        """Mean SR failure rate for a column across traces."""
        values = [cells[column] for cells in self.sr.values() if column in cells]
        if not values:
            raise KeyError(f"no data for column {column!r}")
        return sum(values) / len(values)

    def column_mean_cs(self, column: str) -> float:
        values = [cells[column] for cells in self.cs.values() if column in cells]
        if not values:
            raise KeyError(f"no data for column {column!r}")
        return sum(values) / len(values)

    def render(self) -> str:
        """Both panels (SR on top, CS below) as text, like the paper's plots."""
        top = render_failure_block(
            f"{self.title} — failed queries from stub resolvers",
            self.sr,
            self.columns,
        )
        bottom = render_failure_block(
            f"{self.title} — failed queries from caching servers",
            self.cs,
            self.columns,
        )
        return f"{top}\n\n{bottom}"


def _week_trace_names(scenario: Scenario, limit: int | None) -> tuple[str, ...]:
    return Scenario.WEEK_TRACES[: limit or scenario.parameters.week_trace_count]


@dataclass(frozen=True)
class AttackGridSpec:
    """Declarative duration-grid request (the registry's spec)."""

    scale: Scale | None = None
    seed: int = 7
    scheme: str = "vanilla"
    trace_limit: int | None = None
    durations_hours: tuple[int, ...] = DURATIONS_HOURS


def run(spec: AttackGridSpec) -> FailureGrid:
    """Registry entry point: one scheme's failure grid over durations."""
    config = parse_scheme(spec.scheme)
    scenario = make_scenario(resolve_scale(spec.scale), seed=spec.seed)
    return run_duration_grid(
        scenario,
        config,
        title=f"Attack durations — {config.label}",
        durations_hours=spec.durations_hours,
        trace_limit=spec.trace_limit,
    )


def run_duration_grid(
    scenario: Scenario,
    config: ResilienceConfig,
    title: str,
    durations_hours: tuple[int, ...] = DURATIONS_HOURS,
    trace_limit: int | None = None,
    seed: int = 0,
    workers: int | None = None,
) -> FailureGrid:
    """Figures 4 and 5: one scheme, attack durations as columns.

    The (trace × duration) cells are independent replays and go through
    the batch runner; ``workers`` (default ``$REPRO_WORKERS``) fans them
    out over processes.
    """
    columns = tuple(f"{hours} h" for hours in durations_hours)
    grid = FailureGrid(title=title, columns=columns)
    cells = [
        (trace_name, column,
         AttackSpec(start=scenario.attack_start, duration=hours * HOUR))
        for trace_name in _week_trace_names(scenario, trace_limit)
        for hours, column in zip(durations_hours, columns)
    ]
    specs = [
        ReplaySpec.for_scenario(scenario, trace_name, config, attack=attack,
                                seed=seed)
        for trace_name, _, attack in cells
    ]
    for (trace_name, column, _), summary in zip(cells,
                                                run_replays(specs, workers)):
        grid.record(
            trace_name,
            column,
            summary.sr_attack_failure_rate,
            summary.cs_attack_failure_rate,
        )
    return grid


def run_scheme_grid(
    scenario: Scenario,
    schemes: list[tuple[str, ResilienceConfig]],
    title: str,
    attack_hours: float = 6.0,
    trace_limit: int | None = None,
    seed: int = 0,
    workers: int | None = None,
) -> FailureGrid:
    """Figures 6-11: fixed 6-hour attack, scheme variants as columns."""
    columns = tuple(label for label, _ in schemes)
    grid = FailureGrid(title=title, columns=columns)
    attack = AttackSpec(start=scenario.attack_start, duration=attack_hours * HOUR)
    cells = [
        (trace_name, label, config)
        for trace_name in _week_trace_names(scenario, trace_limit)
        for label, config in schemes
    ]
    specs = [
        ReplaySpec.for_scenario(scenario, trace_name, config, attack=attack,
                                seed=seed)
        for trace_name, _, config in cells
    ]
    for (trace_name, label, _), summary in zip(cells,
                                               run_replays(specs, workers)):
        grid.record(
            trace_name,
            label,
            summary.sr_attack_failure_rate,
            summary.cs_attack_failure_rate,
        )
    return grid


def vanilla_column() -> tuple[str, ResilienceConfig]:
    """The "DNS" contrast column the paper includes in Figures 6-11."""
    return ("DNS", ResilienceConfig.vanilla())


# ---------------------------------------------------------------------------
# Renewal 2.0: swr / decoupled vs credit-based renewal at equal budget
# ---------------------------------------------------------------------------

#: The default comparison set: the paper's adaptive renewal policies
#: against the two post-paper families, all spelled in scheme syntax.
RENEWAL2_SCHEMES = ("a-lru:3", "a-lfu:3", "swr", "decoupled:7")


@dataclass(frozen=True)
class Renewal2Row:
    """One scheme's attack-survival vs upstream-spend numbers."""

    label: str
    sr_attack_failure_rate: float
    cs_attack_failure_rate: float
    stale_answer_rate: float
    upstream_queries: int
    upstream_per_stub: float


@dataclass
class Renewal2Result:
    """The equal-upstream-budget comparison (the Renewal 2.0 figure)."""

    attack_hours: float
    rows: list[Renewal2Row]

    def row(self, label: str) -> Renewal2Row:
        for entry in self.rows:
            if entry.label == label:
                return entry
        raise KeyError(label)

    def render(self) -> str:
        body = [
            (
                row.label,
                f"{row.sr_attack_failure_rate * 100:.2f} %",
                f"{row.cs_attack_failure_rate * 100:.2f} %",
                f"{row.stale_answer_rate * 100:.2f} %",
                row.upstream_queries,
                f"{row.upstream_per_stub:.3f}",
            )
            for row in self.rows
        ]
        return format_table(
            ("Scheme", "SR fail (attack)", "CS fail (attack)",
             "Stale answers", "Upstream queries", "Upstream/stub"),
            body,
            title=(
                f"Renewal 2.0 — {self.attack_hours:g} h attack, schemes "
                "compared at equal upstream query budget (demand + renewal)"
            ),
        )


@dataclass(frozen=True)
class Renewal2Spec:
    """Declarative Renewal 2.0 comparison request (the registry's spec)."""

    scale: Scale | None = None
    seed: int = 7
    attack_hours: float = 6.0
    trace_limit: int | None = None
    schemes: tuple[str, ...] = RENEWAL2_SCHEMES


def run_renewal2(spec: Renewal2Spec) -> Renewal2Result:
    """Registry entry point: replay every scheme over the week traces.

    All schemes replay the same traces, seed and attack; the table
    reports failure rates side by side with the upstream-query spend so
    the comparison is read at equal budget (the ``upstream_queries``
    column normalises the figure).
    """
    configs = [parse_scheme(scheme) for scheme in spec.schemes]
    scenario = make_scenario(resolve_scale(spec.scale), seed=spec.seed)
    attack = AttackSpec(start=scenario.attack_start,
                        duration=spec.attack_hours * HOUR)
    trace_names = _week_trace_names(scenario, spec.trace_limit)
    cells = [
        (config, trace_name)
        for config in configs
        for trace_name in trace_names
    ]
    specs = [
        ReplaySpec.for_scenario(scenario, trace_name, config, attack=attack)
        for config, trace_name in cells
    ]
    summaries = run_replays(specs)
    rows = []
    per_scheme = len(trace_names)
    for index, config in enumerate(configs):
        chunk = summaries[index * per_scheme:(index + 1) * per_scheme]
        sr_rates = [s.sr_attack_failure_rate for s in chunk]
        cs_rates = [s.cs_attack_failure_rate for s in chunk]
        stale = sum(s.sr_stale_hits for s in chunk)
        stub = sum(s.sr_queries for s in chunk)
        upstream = sum(s.upstream_queries for s in chunk)
        rows.append(Renewal2Row(
            label=config.label,
            sr_attack_failure_rate=sum(sr_rates) / len(sr_rates),
            cs_attack_failure_rate=sum(cs_rates) / len(cs_rates),
            stale_answer_rate=stale / stub if stub else 0.0,
            upstream_queries=upstream,
            upstream_per_stub=upstream / stub if stub else 0.0,
        ))
    return Renewal2Result(attack_hours=spec.attack_hours, rows=rows)
