"""NXNS amplification sweep: delegation fan-out × fetch budget.

The NXNS attack (Afek et al., USENIX Security 2020) turns a recursive
resolver into a query cannon: each attack query lands in an
attacker-controlled zone whose delegations name ``fan_out`` unresolvable
out-of-bailiwick NS hosts, and a defenseless resolver dutifully chases
every one.  This experiment grafts that zone onto the standard
hierarchy, fires a fixed-rate attack query stream through the resolver,
and sweeps the fan-out (columns) against the resolver's per-query fetch
budget (rows; 0 = no defense).  Each cell reports the *amplification
factor* — CS-side queries provoked per injected attack query — and the
whole-run SR failure rate of the legitimate trace, so the table shows
both whether the defense clamps the amplification and what collateral
damage the clamp inflicts on honest traffic.

All cells are independent replays fanned out through the batch runner;
the hash-keyed adversary draws keep every cell byte-identical at any
worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.config import ResilienceConfig
from repro.core.schemes import parse_scheme
from repro.experiments.parallel import ReplaySpec, run_replays
from repro.experiments.registry import resolve_scale
from repro.experiments.scenarios import Scale, make_scenario
from repro.simulation.adversary import AdversarySpec, NxnsAttackSpec

HOUR = 3600.0


@dataclass(frozen=True)
class AmplificationSpec:
    """Declarative NXNS-sweep request (the registry's spec)."""

    scale: Scale | None = None
    seed: int = 7
    scheme: str = "vanilla"
    trace_name: str = "TRC1"
    attack_hours: float = 6.0
    """Attack duration; the campaign starts at the paper's day-7 mark."""

    queries_per_minute: float = 60.0
    """Attack query arrival rate (evenly spaced)."""

    delegations: int = 50
    """Distinct delegated children in the attacker zone."""

    fan_outs: tuple[int, ...] = (2, 5, 10, 20)
    """Unresolvable NS names per delegation, swept as columns."""

    fetch_budgets: tuple[int, ...] = (0, 20, 8)
    """Per-query fetch budgets swept as rows; 0 = no defense."""

    nxns_cap: int = 0
    """Per-zone-visit NS sub-resolution cap applied to every defended
    row; 0 leaves it off (the fetch budget is the swept defense)."""


@dataclass(frozen=True)
class AmplificationCell:
    """One (budget, fan-out) replay outcome."""

    budget: int
    fan_out: int
    amplification: float
    sr_rate: float
    attack_cs_queries: int
    budget_exhaustions: int


@dataclass
class AmplificationResult:
    """The sweep's cells, renderable as the survival grid."""

    scheme: str
    fan_outs: tuple[int, ...]
    budgets: tuple[int, ...]
    cells: list[AmplificationCell]

    def cell(self, budget: int, fan_out: int) -> AmplificationCell:
        for entry in self.cells:
            if entry.budget == budget and entry.fan_out == fan_out:
                return entry
        raise KeyError((budget, fan_out))

    def render(self) -> str:
        headers = ["Budget"] + [f"fan={fan}" for fan in self.fan_outs]
        body = []
        for budget in self.budgets:
            row = ["off" if budget == 0 else f"b={budget}"]
            for fan in self.fan_outs:
                cell = self.cell(budget, fan)
                row.append(
                    f"{cell.amplification:.1f}x"
                    f" {cell.sr_rate * 100:.2f}%"
                )
            body.append(row)
        return format_table(
            headers,
            body,
            title=(
                f"NXNS amplification factor / SR failure rate"
                f" ({self.scheme})"
            ),
        )


def _defended(
    base: ResilienceConfig, budget: int, nxns_cap: int
) -> ResilienceConfig:
    """The config for one budget row; 0 keeps the undefended baseline."""
    if budget <= 0 and nxns_cap <= 0:
        return base.with_label(f"{base.label}+nodefense")
    return base.with_defenses(
        fetch_budget=budget if budget > 0 else None,
        nxns_cap=nxns_cap if nxns_cap > 0 else None,
    )


def run(spec: AmplificationSpec) -> AmplificationResult:
    """Registry entry point: sweep fan-out × fetch budget.

    Raises:
        ValueError: when either sweep axis is empty or a swept value is
            negative.
    """
    if not spec.fan_outs:
        raise ValueError("need at least one fan-out")
    if not spec.fetch_budgets:
        raise ValueError("need at least one fetch budget")
    for fan in spec.fan_outs:
        if fan < 1:
            raise ValueError(f"fan-out must be positive, got {fan}")
    for budget in spec.fetch_budgets:
        if budget < 0:
            raise ValueError(f"fetch budget must be >= 0, got {budget}")
    scenario = make_scenario(resolve_scale(spec.scale), seed=spec.seed)
    base = parse_scheme(spec.scheme)
    configs = [
        _defended(base, budget, spec.nxns_cap)
        for budget in spec.fetch_budgets
    ]
    specs = [
        ReplaySpec.for_scenario(
            scenario,
            spec.trace_name,
            config,
            seed=spec.seed,
            adversary=AdversarySpec(
                nxns=NxnsAttackSpec(
                    start=scenario.attack_start,
                    duration=spec.attack_hours * HOUR,
                    queries_per_minute=spec.queries_per_minute,
                    fan_out=fan,
                    delegations=spec.delegations,
                )
            ),
        )
        for config in configs
        for fan in spec.fan_outs
    ]
    summaries = iter(run_replays(specs))
    cells = []
    for budget in spec.fetch_budgets:
        for fan in spec.fan_outs:
            summary = next(summaries)
            cells.append(
                AmplificationCell(
                    budget=budget,
                    fan_out=fan,
                    amplification=summary.amplification_factor,
                    sr_rate=summary.sr_failure_rate,
                    attack_cs_queries=summary.attack_cs_queries,
                    budget_exhaustions=summary.budget_exhaustions,
                )
            )
    return AmplificationResult(
        scheme=spec.scheme,
        fan_outs=spec.fan_outs,
        budgets=spec.fetch_budgets,
        cells=cells,
    )
