"""Trace replay: one caching server, one trace, one scheme, one verdict.

:func:`run_replay` is the single entry point every experiment goes
through.  It wires the scheme's :class:`ResilienceConfig` into a fresh
:class:`CachingServer`, applies (and afterwards undoes) the long-TTL
override on the shared hierarchy, installs the attack schedule, replays
the trace through the discrete-event engine, and returns everything the
figures/tables need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.gaps import GapTracker
from repro.core.caching_server import CachingServer
from repro.core.config import ResilienceConfig
from repro.dns.name import Name
from repro.dns.rrtypes import RRType
from repro.experiments.summary import AttackWindowRates, ReplaySummary
from repro.hierarchy.builder import (
    AttackerZoneGraft,
    BuiltHierarchy,
    graft_attacker_zone,
    ungraft_attacker_zone,
)
from repro.obs.events import EventKind
from repro.obs.recorder import FlightRecorder
from repro.obs.sinks import TimeSeriesSink
from repro.obs.spec import ObservationContext, ObservationSpec
from repro.obs.timing import StageTimings, maybe_stage
from repro.simulation.adversary import Adversary, AdversarySpec
from repro.simulation.attack import AttackSchedule, AttackWindow, attack_on_root_and_tlds
from repro.simulation.engine import SimulationEngine
from repro.simulation.faults import FaultInjector, FaultSpec
from repro.simulation.metrics import MemorySample, ReplayMetrics, WindowCounters
from repro.simulation.network import Network
from repro.workload.generator import flash_crowd_schedule
from repro.workload.trace import Trace

DAY = 86400.0
HOUR = 3600.0


@dataclass(frozen=True)
class AttackSpec:
    """A declarative attack request for a replay.

    ``targets`` of None means the paper's root+TLD target set.
    ``intensity`` is the per-query drop probability: 1.0 (the default)
    is the paper's total blackout; fractional intensities are resolved
    per query by a fault injector the harness attaches automatically.
    """

    start: float = 6 * DAY
    duration: float = 6 * HOUR
    targets: tuple | None = None
    intensity: float = 1.0

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def partial(self) -> bool:
        """Whether this attack needs per-query fault draws."""
        return self.intensity < 1.0

    def build_schedule(self, built: BuiltHierarchy) -> AttackSchedule:
        if self.targets is None:
            return attack_on_root_and_tlds(
                built.tree, start=self.start, duration=self.duration,
                intensity=self.intensity,
            )
        window = AttackWindow(
            start=self.start, end=self.end,
            target_zones=frozenset(self.targets), intensity=self.intensity,
        )
        return AttackSchedule(built.tree, [window])


@dataclass
class ReplayResult(AttackWindowRates):
    """Everything one replay produced."""

    label: str
    trace_name: str
    metrics: ReplayMetrics
    window: WindowCounters | None
    gap_tracker: GapTracker | None
    server: CachingServer
    recorder: "FlightRecorder | None" = None
    """The flight recorder, when the replay ran observed with a ring."""

    timeseries: "TimeSeriesSink | None" = None
    """The binned time-series sink, when one was requested."""

    event_count: int = 0
    """Events emitted on the observation bus (0 when unobserved)."""

    timings: "StageTimings | None" = field(default=None, repr=False)

    def to_summary(self) -> ReplaySummary:
        """The picklable :class:`ReplaySummary` extract of this result."""
        return ReplaySummary.from_result(self)


def run_replay(
    built: BuiltHierarchy,
    trace: Trace,
    config: ResilienceConfig,
    attack: AttackSpec | None = None,
    track_gaps: bool = False,
    memory_sample_interval: float | None = None,
    seed: int = 0,
    observe: ObservationSpec | None = None,
    timings: StageTimings | None = None,
    faults: FaultSpec | None = None,
    adversary: AdversarySpec | None = None,
    validation: bool = False,
) -> ReplayResult:
    """Replay ``trace`` through a fresh caching server running ``config``.

    The long-TTL override (if the config carries one) is applied to the
    shared hierarchy before the run and restored afterwards, so callers
    may reuse ``built`` across schemes.

    ``observe`` attaches the observability subsystem (DESIGN.md §10) for
    this replay only; ``timings`` accumulates per-stage wall/CPU time.
    ``faults`` attaches the fault-injection layer (DESIGN.md §11); a
    partial-intensity attack attaches one implicitly because the
    per-query intensity rolls need its seeded draws.

    ``adversary`` mounts the Adversary 2.0 attack families (DESIGN.md
    §16).  An NXNS campaign grafts its attacker zone onto the shared
    hierarchy for the duration of the call and ungrafts it afterwards —
    same contract as the long-TTL override, so warm worker pools see
    the tree restored exactly.

    ``validation`` shadows the cache with the naive oracle (DESIGN.md
    §12): every cache operation is cross-checked during the replay and
    the structural invariants are verified at the end.  Expect a
    several-fold slowdown; results are unchanged when it passes.
    """
    tree = built.tree
    saved_state = None
    if config.long_ttl is not None:
        saved_state = tree.capture_irr_state()
        tree.apply_long_ttl(config.long_ttl)
    graft: AttackerZoneGraft | None = None
    if adversary is not None and adversary.nxns is not None:
        graft = graft_attacker_zone(
            tree, adversary.nxns.fan_out, adversary.nxns.delegations
        )
    try:
        return _replay(
            built, trace, config, attack, track_gaps, memory_sample_interval,
            seed, observe, timings, faults, adversary, graft, validation,
        )
    finally:
        if graft is not None:
            ungraft_attacker_zone(tree, graft)
        if saved_state is not None:
            tree.restore_irr_state(saved_state)


def _replay(
    built: BuiltHierarchy,
    trace: Trace,
    config: ResilienceConfig,
    attack: AttackSpec | None,
    track_gaps: bool,
    memory_sample_interval: float | None,
    seed: int,
    observe: ObservationSpec | None,
    timings: StageTimings | None,
    faults: FaultSpec | None,
    adversary: AdversarySpec | None,
    graft: AttackerZoneGraft | None,
    validation: bool,
) -> ReplayResult:
    with maybe_stage(timings, "setup"):
        engine = SimulationEngine()
        context: ObservationContext | None = None
        if observe is not None:
            context = observe.build()
            engine.observer = context.bus
        schedule = attack.build_schedule(built) if attack is not None else None
        injector: FaultInjector | None = None
        if faults is not None or (attack is not None and attack.partial):
            injector = (faults or FaultSpec()).build(seed=seed)
        adv: Adversary | None = None
        if adversary is not None and not adversary.inert:
            adv = adversary.build(
                seed=seed, entropy_bits=config.source_entropy_bits
            )
        network = Network(
            built.tree, attacks=schedule, faults=injector,
            poisoner=adv.poisoner if adv is not None else None,
        )
        metrics = ReplayMetrics()
        window = None
        if attack is not None:
            window = metrics.watch_window(attack.start, attack.end)
        gap_tracker = GapTracker() if track_gaps else None

        server = CachingServer(
            root_hints=built.tree.root_hints(),
            network=network,
            clock=engine,
            config=config,
            metrics=metrics,
            gap_observer=gap_tracker,
            seed=seed,
            observer=context.bus if context is not None else None,
            validation=validation,
        )

        if context is not None and attack is not None:
            _arm_attack_markers(engine, context, attack, trace.duration)
        if memory_sample_interval is not None:
            _arm_memory_sampler(engine, server, metrics, memory_sample_interval,
                                trace.duration)

    with maybe_stage(timings, "replay"):
        injected = (
            _injected_queries(adversary, graft, built, seed)
            if adv is not None else ()
        )
        if not injected:
            # The pre-adversary loop, verbatim: an inert/absent
            # adversary replays byte-identically to the main path.
            for query in trace:
                engine.advance_to(query.time)
                server.handle_stub_query(query.qname, query.rrtype, query.time)
        else:
            _replay_with_injections(
                engine, server, metrics, trace, injected
            )
        engine.advance_to(trace.duration)

    with maybe_stage(timings, "finalize"):
        if adv is not None:
            if adv.poisoner is not None:
                metrics.poison_attempts = adv.poisoner.attempts
                metrics.poison_wins = adv.poisoner.wins
            stored, cured, dwells = server.cache.poison_stats(engine.now)
            metrics.poison_stored = stored
            metrics.poison_cured = cured
            metrics.poison_dwells = dwells
        if context is not None:
            context.finish()
        if validation:
            _validate_final_state(server, engine.now, config)
        return ReplayResult(
            label=config.label,
            trace_name=trace.name,
            metrics=metrics,
            window=window,
            gap_tracker=gap_tracker,
            server=server,
            recorder=context.recorder if context is not None else None,
            timeseries=context.timeseries if context is not None else None,
            event_count=context.event_count if context is not None else 0,
            timings=timings,
        )


#: One adversary-injected arrival: (time, kind, qname) with kind 0 for
#: NXNS attack queries and 1 for flash-crowd queries.  The int kind also
#: orders same-instant injections deterministically (attack first).
_Injected = tuple[float, int, Name]


def _injected_queries(
    adversary: AdversarySpec,
    graft: AttackerZoneGraft | None,
    built: BuiltHierarchy,
    seed: int,
) -> list[_Injected]:
    """Every adversary-injected arrival, time-ordered."""
    entries: list[_Injected] = []
    if adversary.nxns is not None and graft is not None:
        for time, qname in adversary.nxns.query_stream(graft.apex):
            entries.append((time, 0, qname))
    if adversary.flash is not None:
        flash = adversary.flash
        for time, qname in flash_crowd_schedule(
            built.catalog,
            start=flash.start,
            duration=flash.duration,
            queries_per_minute=flash.queries_per_minute,
            hot_zones=flash.hot_zones,
            zipf_alpha=flash.zipf_alpha,
            seed=seed,
        ):
            entries.append((time, 1, qname))
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    return entries


def _replay_with_injections(
    engine: SimulationEngine,
    server: CachingServer,
    metrics: ReplayMetrics,
    trace: Trace,
    injected: list[_Injected],
) -> None:
    """The replay loop with adversary arrivals merged into the trace.

    A two-pointer merge over two already-sorted streams; on equal
    timestamps injected arrivals run first (their sort position is
    decided before the trace query is even seen), which is arbitrary
    but fixed — the property that matters for byte-identical logs.
    """
    index = 0
    total = len(injected)
    for query in trace:
        while index < total and injected[index][0] <= query.time:
            index = _run_injection(engine, server, metrics, injected, index)
        engine.advance_to(query.time)
        server.handle_stub_query(query.qname, query.rrtype, query.time)
    while index < total and injected[index][0] < trace.duration:
        index = _run_injection(engine, server, metrics, injected, index)


def _run_injection(
    engine: SimulationEngine,
    server: CachingServer,
    metrics: ReplayMetrics,
    injected: list[_Injected],
    index: int,
) -> int:
    """Execute one injected arrival; returns the advanced index."""
    time, kind, qname = injected[index]
    engine.advance_to(time)
    if kind == 0:
        server.handle_attack_query(qname, RRType.A, time)
    else:
        # A flash-crowd arrival is legitimate traffic: it runs (and is
        # counted) as a normal stub query, plus its own tally.
        metrics.flash_queries += 1
        server.handle_stub_query(qname, RRType.A, time)
    return index + 1


def _validate_final_state(
    server: CachingServer, now: float, config: ResilienceConfig
) -> None:
    """End-of-replay validation sweep (DESIGN.md §12).

    Runs the full-state differential audit plus the structural
    invariants; imported lazily so unvalidated replays never load the
    validation package.
    """
    from repro.validation.differential import DifferentialCache
    from repro.validation.invariants import (
        check_cache_invariants,
        check_renewal_invariants,
    )

    if isinstance(server.cache, DifferentialCache):
        server.cache.audit(now)
    check_cache_invariants(server.cache, now)
    if server.renewal is not None:
        check_renewal_invariants(
            server.renewal, server.cache, now,
            allow_stale_credit=(
                config.serve_stale or config.swr_grace is not None
            ),
        )


def _arm_attack_markers(
    engine: SimulationEngine,
    context: ObservationContext,
    attack: AttackSpec,
    horizon: float,
) -> None:
    """Emit attack.start / attack.end markers from the virtual clock.

    An end that falls beyond the trace horizon never fires (the replay
    stops first) — the log then simply has no ``attack.end``, which is
    itself informative.
    """
    bus = context.bus
    targets = "root+tlds" if attack.targets is None else str(len(attack.targets))

    def mark_start(now: float) -> None:
        bus.emit(EventKind.ATTACK_START, now,
                 duration=attack.duration, targets=targets)

    def mark_end(now: float) -> None:
        bus.emit(EventKind.ATTACK_END, now, targets=targets)

    engine.schedule(attack.start, mark_start)
    if attack.end <= horizon:
        engine.schedule(attack.end, mark_end)


def _arm_memory_sampler(
    engine: SimulationEngine,
    server: CachingServer,
    metrics: ReplayMetrics,
    interval: float,
    horizon: float,
) -> None:
    """Periodic cache-occupancy sampling (Figure 12's series)."""

    def sample(now: float) -> None:
        metrics.record_memory(
            MemorySample(
                time=now,
                zones_cached=server.cached_zone_count(now),
                records_cached=server.cached_record_count(now),
            )
        )
        next_time = now + interval
        if next_time <= horizon:
            engine.schedule(next_time, sample)

    engine.schedule(interval, sample)
