"""Trace replay: one caching server, one trace, one scheme, one verdict.

:func:`run_replay` is the single entry point every experiment goes
through.  It wires the scheme's :class:`ResilienceConfig` into a fresh
:class:`CachingServer`, applies (and afterwards undoes) the long-TTL
override on the shared hierarchy, installs the attack schedule, replays
the trace through the discrete-event engine, and returns everything the
figures/tables need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.gaps import GapTracker
from repro.core.caching_server import CachingServer
from repro.core.config import ResilienceConfig
from repro.hierarchy.builder import BuiltHierarchy
from repro.simulation.attack import AttackSchedule, AttackWindow, attack_on_root_and_tlds
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import MemorySample, ReplayMetrics, WindowCounters
from repro.simulation.network import Network
from repro.workload.trace import Trace

DAY = 86400.0
HOUR = 3600.0


@dataclass(frozen=True)
class AttackSpec:
    """A declarative attack request for a replay.

    ``targets`` of None means the paper's root+TLD target set.
    """

    start: float = 6 * DAY
    duration: float = 6 * HOUR
    targets: tuple | None = None

    @property
    def end(self) -> float:
        return self.start + self.duration

    def build_schedule(self, built: BuiltHierarchy) -> AttackSchedule:
        if self.targets is None:
            return attack_on_root_and_tlds(
                built.tree, start=self.start, duration=self.duration
            )
        window = AttackWindow(
            start=self.start, end=self.end, target_zones=frozenset(self.targets)
        )
        return AttackSchedule(built.tree, [window])


@dataclass
class ReplayResult:
    """Everything one replay produced."""

    label: str
    trace_name: str
    metrics: ReplayMetrics
    window: WindowCounters | None
    gap_tracker: GapTracker | None
    server: CachingServer

    @property
    def sr_attack_failure_rate(self) -> float:
        """SR failure fraction during the attack (0 without an attack)."""
        if self.window is None:
            return 0.0
        return self.window.sr_failure_rate

    @property
    def cs_attack_failure_rate(self) -> float:
        """CS failure fraction during the attack (0 without an attack)."""
        if self.window is None:
            return 0.0
        return self.window.cs_failure_rate


def run_replay(
    built: BuiltHierarchy,
    trace: Trace,
    config: ResilienceConfig,
    attack: AttackSpec | None = None,
    track_gaps: bool = False,
    memory_sample_interval: float | None = None,
    seed: int = 0,
) -> ReplayResult:
    """Replay ``trace`` through a fresh caching server running ``config``.

    The long-TTL override (if the config carries one) is applied to the
    shared hierarchy before the run and restored afterwards, so callers
    may reuse ``built`` across schemes.
    """
    tree = built.tree
    saved_state = None
    if config.long_ttl is not None:
        saved_state = tree.capture_irr_state()
        tree.apply_long_ttl(config.long_ttl)
    try:
        return _replay(
            built, trace, config, attack, track_gaps, memory_sample_interval, seed
        )
    finally:
        if saved_state is not None:
            tree.restore_irr_state(saved_state)


def _replay(
    built: BuiltHierarchy,
    trace: Trace,
    config: ResilienceConfig,
    attack: AttackSpec | None,
    track_gaps: bool,
    memory_sample_interval: float | None,
    seed: int,
) -> ReplayResult:
    engine = SimulationEngine()
    schedule = attack.build_schedule(built) if attack is not None else None
    network = Network(built.tree, attacks=schedule)
    metrics = ReplayMetrics()
    window = None
    if attack is not None:
        window = metrics.watch_window(attack.start, attack.end)
    gap_tracker = GapTracker() if track_gaps else None

    server = CachingServer(
        root_hints=built.tree.root_hints(),
        network=network,
        engine=engine,
        config=config,
        metrics=metrics,
        gap_observer=gap_tracker,
        seed=seed,
    )

    if memory_sample_interval is not None:
        _arm_memory_sampler(engine, server, metrics, memory_sample_interval,
                            trace.duration)

    for query in trace:
        engine.advance_to(query.time)
        server.handle_stub_query(query.qname, query.rrtype, query.time)
    engine.advance_to(trace.duration)

    return ReplayResult(
        label=config.label,
        trace_name=trace.name,
        metrics=metrics,
        window=window,
        gap_tracker=gap_tracker,
        server=server,
    )


def _arm_memory_sampler(
    engine: SimulationEngine,
    server: CachingServer,
    metrics: ReplayMetrics,
    interval: float,
    horizon: float,
) -> None:
    """Periodic cache-occupancy sampling (Figure 12's series)."""

    def sample(now: float) -> None:
        metrics.record_memory(
            MemorySample(
                time=now,
                zones_cached=server.cached_zone_count(now),
                records_cached=server.cached_record_count(now),
            )
        )
        next_time = now + interval
        if next_time <= horizon:
            engine.schedule(next_time, sample)

    engine.schedule(interval, sample)
