"""Standard experiment scenarios: one hierarchy, six traces, four scales.

Every experiment draws from one :class:`Scenario`: a synthetic hierarchy
plus traces TRC1–TRC5 (7 days, five "organisations") and TRC6 (one
month), mirroring the paper's Table 1 layout.  The scenario is built
deterministically from (scale, seed) and memoised per process, so the
whole bench suite shares one construction.

Scales (see DESIGN.md §6): failure *percentages*, CDF shapes and overhead
*ratios* are scale-stable, so laptop scales reproduce the paper's shapes.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from functools import lru_cache

from repro.hierarchy.builder import BuiltHierarchy, HierarchyConfig, build_hierarchy
from repro.workload.generator import TraceGenerator, WorkloadConfig
from repro.workload.trace import Trace

DAY = 86400.0

#: Environment variable overriding the default bench scale.
SCALE_ENV_VAR = "REPRO_SCALE"


class Scale(enum.Enum):
    """How big an experiment to run."""

    TINY = "tiny"
    """Unit-test scale: seconds end-to-end."""

    SMALL = "small"
    """Default bench scale: the full suite in minutes."""

    MEDIUM = "medium"
    """Closer to the paper's trace sizes; tens of minutes."""

    PAPER = "paper"
    """Table-1-sized traces (millions of queries); hours in pure Python."""

    @classmethod
    def from_env(cls, default: "Scale | None" = None) -> "Scale":
        """The scale named by $REPRO_SCALE, else ``default`` (SMALL)."""
        fallback = default or cls.SMALL
        raw = os.environ.get(SCALE_ENV_VAR)
        if not raw:
            return fallback
        try:
            return cls(raw.lower())
        except ValueError:
            valid = ", ".join(scale.value for scale in cls)
            raise ValueError(
                f"{SCALE_ENV_VAR}={raw!r} is not one of: {valid}"
            ) from None


@dataclass(frozen=True)
class ScenarioParameters:
    """Concrete sizes for one scale."""

    hierarchy: HierarchyConfig
    workload: WorkloadConfig
    month_workload: WorkloadConfig
    week_trace_count: int = 5


def _parameters_for(scale: Scale) -> ScenarioParameters:
    if scale is Scale.TINY:
        hierarchy = HierarchyConfig(
            num_tlds=8, num_slds=120, num_providers=3,
            root_server_count=5, tld_server_range=(2, 3),
            hosts_per_zone_range=(2, 5),
        )
        week = WorkloadConfig(
            duration_days=7.0, queries_per_day=1_500, num_clients=40,
            private_zones_per_client=8,
        )
        month = WorkloadConfig(
            duration_days=31.0, queries_per_day=900, num_clients=40,
            private_zones_per_client=8,
        )
    elif scale is Scale.SMALL:
        hierarchy = HierarchyConfig(num_tlds=40, num_slds=1_000, num_providers=8)
        week = WorkloadConfig(
            duration_days=7.0, queries_per_day=9_000, num_clients=250,
        )
        month = WorkloadConfig(
            duration_days=31.0, queries_per_day=6_000, num_clients=250,
        )
    elif scale is Scale.MEDIUM:
        hierarchy = HierarchyConfig(num_tlds=120, num_slds=8_000, num_providers=20)
        week = WorkloadConfig(
            duration_days=7.0, queries_per_day=80_000, num_clients=1_500,
            private_zones_per_client=25,
        )
        month = WorkloadConfig(
            duration_days=31.0, queries_per_day=50_000, num_clients=1_500,
            private_zones_per_client=25,
        )
    elif scale is Scale.PAPER:
        hierarchy = HierarchyConfig(num_tlds=260, num_slds=40_000, num_providers=60)
        week = WorkloadConfig(
            duration_days=7.0, queries_per_day=900_000, num_clients=8_000,
            private_zones_per_client=40,
        )
        month = WorkloadConfig(
            duration_days=31.0, queries_per_day=400_000, num_clients=8_000,
            private_zones_per_client=40,
        )
    else:  # pragma: no cover - exhaustive over the enum
        raise ValueError(f"unknown scale {scale}")
    return ScenarioParameters(hierarchy=hierarchy, workload=week, month_workload=month)


@dataclass
class Scenario:
    """A built hierarchy plus its trace set."""

    # Instances are built once in the parent and inherited by forked
    # replay workers copy-on-write; `repro audit` (REP011) proves the
    # parent never mutates them after the publish point.
    # repro: published

    scale: Scale
    seed: int
    built: BuiltHierarchy
    parameters: ScenarioParameters
    # repro: memo(traces: field=_traces,
    #   depends=[scale, seed, built, parameters], invalidator=none)
    _traces: dict[str, Trace] = field(default_factory=dict, repr=False)

    WEEK_TRACES = ("TRC1", "TRC2", "TRC3", "TRC4", "TRC5")
    MONTH_TRACE = "TRC6"

    def trace(self, name: str) -> Trace:
        """TRC1..TRC5 (7-day) or TRC6 (1-month), generated on first use."""
        cached = self._traces.get(name)
        if cached is not None:
            return cached
        if name == self.MONTH_TRACE:
            config = self.parameters.month_workload
            stream = 6
        else:
            try:
                stream = self.WEEK_TRACES.index(name) + 1
            except ValueError:
                raise KeyError(f"unknown trace {name!r}") from None
            config = self.parameters.workload
        generator = TraceGenerator(self.built.catalog, config, seed=self.seed)
        trace = generator.generate(name, stream=stream)
        self._traces[name] = trace
        return trace

    def week_traces(self, limit: int | None = None) -> list[Trace]:
        """TRC1..TRC5 (or the first ``limit`` of them)."""
        names = self.WEEK_TRACES[: limit or self.parameters.week_trace_count]
        return [self.trace(name) for name in names]

    @property
    def attack_start(self) -> float:
        """The paper's attack start: the beginning of day 7."""
        return 6 * DAY


@lru_cache(maxsize=4)
def make_scenario(scale: Scale = Scale.SMALL, seed: int = 7) -> Scenario:
    """Build (and memoise) the standard scenario for (scale, seed)."""
    parameters = _parameters_for(scale)
    built = build_hierarchy(parameters.hierarchy, seed=seed)
    return Scenario(scale=scale, seed=seed, built=built, parameters=parameters)
