"""Fleet replay: several caching servers over one shared virtual time.

The paper's Table 1 lists six caching servers from five organisations;
its §6 maximum-damage discussion defines damage "across all caching
servers (or stub-resolvers)".  :func:`run_fleet_replay` models exactly
that: one engine, one network, one attack — many independent resolvers,
each replaying its own organisation's trace.

The result exposes both per-organisation and aggregate failure rates, so
fleet-level questions ("how many lookups did the Internet lose?") have a
first-class answer.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.analysis.report import format_table
from repro.core.caching_server import CachingServer
from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec
from repro.experiments.parallel import (
    FleetMemberSummary,
    FleetSpec,
    FleetSummary,
    run_replays,
)
from repro.experiments.scenarios import Scenario
from repro.hierarchy.builder import BuiltHierarchy
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import ReplayMetrics, WindowCounters
from repro.simulation.network import Network
from repro.workload.trace import Trace, TraceQuery


@dataclass
class FleetMemberResult:
    """One organisation's replay outcome."""

    trace_name: str
    metrics: ReplayMetrics
    window: WindowCounters | None
    server: CachingServer

    @property
    def sr_queries(self) -> int:
        return self.metrics.sr_queries


def render_fleet_table(
    label: str,
    members: "Sequence[FleetMemberResult | FleetMemberSummary]",
    aggregate_rate: float,
) -> str:
    """The fleet table shared by full results and picklable summaries.

    ``members`` need ``trace_name``, ``sr_queries`` and ``window``.
    """
    body = []
    for member in members:
        window = member.window
        body.append(
            (
                member.trace_name,
                member.sr_queries,
                f"{window.sr_failure_rate * 100:.1f} %" if window else "-",
                f"{window.cs_failure_rate * 100:.1f} %" if window else "-",
            )
        )
    body.append(
        (
            "fleet",
            sum(member.sr_queries for member in members),
            f"{aggregate_rate * 100:.1f} %",
            "-",
        )
    )
    return format_table(
        ("Organisation", "Lookups", "SR failures (attack)",
         "CS failures (attack)"),
        body,
        title=f"Fleet replay — scheme: {label}",
    )


@dataclass
class FleetReplayResult:
    """Per-member results plus fleet-wide aggregates."""

    label: str
    members: list[FleetMemberResult]

    def aggregate_sr_failure_rate(self) -> float:
        """Fleet-wide SR failure fraction inside the attack window."""
        queries = sum(
            member.window.sr_queries for member in self.members
            if member.window is not None
        )
        failures = sum(
            member.window.sr_failures for member in self.members
            if member.window is not None
        )
        if queries == 0:
            return 0.0
        return failures / queries

    def total_failed_lookups(self) -> int:
        """The §6 damage currency: failed lookups across the fleet."""
        return sum(
            member.window.sr_failures for member in self.members
            if member.window is not None
        )

    def member(self, trace_name: str) -> FleetMemberResult:
        for entry in self.members:
            if entry.trace_name == trace_name:
                return entry
        raise KeyError(trace_name)

    def render(self) -> str:
        return render_fleet_table(
            self.label, self.members, self.aggregate_sr_failure_rate()
        )


def run_fleet_replay(
    built: BuiltHierarchy,
    traces: list[Trace],
    config: ResilienceConfig,
    attack: AttackSpec | None = None,
    seed: int = 0,
) -> FleetReplayResult:
    """Replay each trace through its own caching server, time-interleaved.

    All servers share the engine (so renewal timers and trace queries
    interleave correctly), the network, and the attack schedule; caches
    and metrics are private per server, exactly like independent
    organisations.
    """
    if not traces:
        raise ValueError("a fleet needs at least one trace")
    tree = built.tree
    saved_state = None
    if config.long_ttl is not None:
        saved_state = tree.capture_irr_state()
        tree.apply_long_ttl(config.long_ttl)
    try:
        return _run(built, traces, config, attack, seed)
    finally:
        if saved_state is not None:
            tree.restore_irr_state(saved_state)


def _run(
    built: BuiltHierarchy,
    traces: list[Trace],
    config: ResilienceConfig,
    attack: AttackSpec | None,
    seed: int,
) -> FleetReplayResult:
    engine = SimulationEngine()
    schedule = attack.build_schedule(built) if attack is not None else None
    network = Network(built.tree, attacks=schedule)

    members: list[FleetMemberResult] = []
    servers: list[CachingServer] = []
    for index, trace in enumerate(traces):
        metrics = ReplayMetrics()
        window = None
        if attack is not None:
            window = metrics.watch_window(attack.start, attack.end)
        server = CachingServer(
            root_hints=built.tree.root_hints(),
            network=network,
            clock=engine,
            config=config,
            metrics=metrics,
            seed=seed + index,
        )
        members.append(
            FleetMemberResult(
                trace_name=trace.name, metrics=metrics, window=window,
                server=server,
            )
        )
        servers.append(server)

    # Interleave all traces by timestamp; each query goes to its owner.
    def tagged(
        index: int, trace: Trace
    ) -> Iterator[tuple[float, int, TraceQuery]]:
        for query in trace:
            yield (query.time, index, query)

    streams = [tagged(index, trace) for index, trace in enumerate(traces)]
    for time, index, query in heapq.merge(*streams):
        engine.advance_to(time)
        servers[index].handle_stub_query(query.qname, query.rrtype, time)
    engine.advance_to(max(trace.duration for trace in traces))

    return FleetReplayResult(label=config.label, members=members)


def fleet_attack_comparison(
    scenario: Scenario,
    schemes: list[ResilienceConfig] | None = None,
    attack_hours: float = 6.0,
    trace_limit: int | None = None,
    seed: int = 0,
    workers: int | None = None,
) -> dict[str, FleetSummary]:
    """The standard fleet experiment: all organisations, per scheme.

    Each scheme's fleet replay is one job on the batch runner (a fleet
    shares an engine internally, so it cannot be split further); with
    several workers the schemes run concurrently.
    """
    schemes = schemes or [
        ResilienceConfig.vanilla(),
        ResilienceConfig.refresh(),
        ResilienceConfig.combination(),
    ]
    trace_names = Scenario.WEEK_TRACES[
        : trace_limit or scenario.parameters.week_trace_count
    ]
    attack = AttackSpec(start=scenario.attack_start,
                        duration=attack_hours * 3600.0)
    specs = [
        FleetSpec.for_scenario(scenario, trace_names, config, attack=attack,
                               seed=seed)
        for config in schemes
    ]
    summaries = run_replays(specs, workers=workers)
    return {
        summary.label: summary for summary in summaries
    }
