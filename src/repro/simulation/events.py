"""A cancellable priority queue of timed events.

Cancellation is lazy (the heap entry is tombstoned), which keeps both
``push`` and ``cancel`` O(log n) / O(1) and suits the renewal timers'
pattern of frequent reschedules.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

Action = Callable[[float], None]


class EventHandle:
    """A ticket for a scheduled event; lets the owner cancel it."""

    __slots__ = ("time", "seq", "action", "cancelled")

    def __init__(self, time: float, seq: int, action: Action) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (safe to call repeatedly)."""
        self.cancelled = True
        self.action = _noop

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


def _noop(_: float) -> None:
    return None


class EventQueue:
    """Min-heap of :class:`EventHandle`, ordered by (time, insertion seq)."""

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._seq = itertools.count()

    def push(self, time: float, action: Action) -> EventHandle:
        """Schedule ``action`` to run at ``time``; returns its handle."""
        handle = EventHandle(time, next(self._seq), action)
        heapq.heappush(self._heap, handle)
        return handle

    def is_empty(self) -> bool:
        """True when no entries remain, cancelled or not — O(1).

        A queue holding only cancelled tombstones reports non-empty; the
        caller's pop/peek loop discards those.  This is the fast-path
        check ``SimulationEngine.advance_to`` runs once per trace query.
        """
        return not self._heap

    def peek_time(self) -> float | None:
        """The time of the next live event, or None when empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> EventHandle | None:
        """Remove and return the next live event, or None when empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def __len__(self) -> int:
        """Number of live (non-cancelled) events.  O(n); for diagnostics."""
        return sum(1 for handle in self._heap if not handle.cancelled)

    def __bool__(self) -> bool:
        self._discard_cancelled()
        return bool(self._heap)
