"""A cancellable priority queue of timed events, flattened for speed.

The heap holds plain ``(time, seq, slot)`` tuples — compared at C speed,
with no per-event Python object and no ``__lt__`` dispatch — while the
actions live in preallocated parallel arrays indexed by ``slot``.  A
scheduled event is identified externally by an int *token* packing the
slot with a generation sequence number; cancellation just invalidates
the slot's generation (O(1)) and the stale heap tuple is discarded
lazily when it surfaces.  Freed slots are recycled through a free list,
so steady-state operation (the renewal timers' arm/cancel/rearm churn)
allocates only heap tuples.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable

from repro.dns.errors import InvariantError

Action = Callable[[float], None]

#: Bits reserved for the slot index inside a token; 2**32 concurrent
#: slots is far beyond any simulated timer population.
_SLOT_BITS = 32
_SLOT_MASK = (1 << _SLOT_BITS) - 1

_INFINITY = float("inf")


class EventQueue:
    """Min-heap of ``(time, seq, slot)``, ordered by (time, insertion seq).

    ``push`` returns an int token; pass it to :meth:`cancel` to prevent
    delivery.  Delivery order is strictly (time, then insertion order),
    exactly as the previous object-per-event implementation.
    """

    __slots__ = ("_heap", "_actions", "_gens", "_free", "_next_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int]] = []
        # Parallel slot arrays: the action to fire and the generation
        # (seq) it was scheduled under.  A generation of -1 marks a free
        # slot, so a stale heap tuple can never match it.
        self._actions: list[Action | None] = []
        self._gens: list[int] = []
        self._free: list[int] = []
        self._next_seq = 0
        self._live = 0

    def push(self, time: float, action: Action) -> int:
        """Schedule ``action`` to run at ``time``; returns a cancel token."""
        seq = self._next_seq
        self._next_seq = seq + 1
        free = self._free
        if free:
            slot = free.pop()
            self._actions[slot] = action
            self._gens[slot] = seq
        else:
            slot = len(self._actions)
            self._actions.append(action)
            self._gens.append(seq)
        heappush(self._heap, (time, seq, slot))
        self._live += 1
        return (seq << _SLOT_BITS) | slot

    def cancel(self, token: int) -> bool:
        """Prevent the event behind ``token`` from firing.

        Safe to call repeatedly and after delivery; returns True only
        when a pending event was actually cancelled.
        """
        slot = token & _SLOT_MASK
        seq = token >> _SLOT_BITS
        gens = self._gens
        if slot >= len(gens) or gens[slot] != seq:
            return False
        gens[slot] = -1
        self._actions[slot] = None
        self._free.append(slot)
        self._live -= 1
        return True

    def pop_due(self, limit: float) -> tuple[float, Action] | None:
        """Remove and return the next live event at or before ``limit``.

        Returns ``(time, action)``, or None when the next live event is
        later than ``limit`` (or the queue is drained).  This is the
        engine's batch-drain primitive: ``advance_to`` calls it in a
        tight loop instead of separate peek/pop rounds.
        """
        heap = self._heap
        gens = self._gens
        actions = self._actions
        while heap:
            head = heap[0]
            time = head[0]
            slot = head[2]
            if gens[slot] != head[1]:
                heappop(heap)  # stale tombstone of a cancelled event
                continue
            if time > limit:
                return None
            heappop(heap)
            action = actions[slot]
            gens[slot] = -1
            actions[slot] = None
            self._free.append(slot)
            self._live -= 1
            if action is None:  # pragma: no cover - generation match forbids it
                raise InvariantError(f"live slot {slot} holds no action")
            return (time, action)
        return None

    def pop(self) -> tuple[float, Action] | None:
        """Remove and return the next live event, or None when empty."""
        return self.pop_due(_INFINITY)

    def is_empty(self) -> bool:
        """True when no entries remain, cancelled or not — O(1).

        A queue holding only cancelled tombstones reports non-empty; the
        caller's drain loop discards those.  This is the fast-path check
        ``SimulationEngine.advance_to`` runs once per trace query.
        """
        return not self._heap

    def peek_time(self) -> float | None:
        """The time of the next live event, or None when empty."""
        heap = self._heap
        gens = self._gens
        while heap and gens[heap[0][2]] != heap[0][1]:
            heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def __len__(self) -> int:
        """Number of live (non-cancelled) events — O(1)."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
