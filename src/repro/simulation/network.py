"""Message delivery between the caching server and authoritative servers.

The network is deliberately simple — the paper's metrics depend on *which*
servers are reachable, not on packet dynamics — but it models the two
costs that shape resolver behaviour: per-hop round-trip latency and the
timeout paid for every query to a dead server.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.dns.errors import LameDelegationError
from repro.dns.message import Message, Question
from repro.simulation.attack import AttackSchedule
from repro.hierarchy.tree import ZoneTree


@dataclass(frozen=True)
class LatencyModel:
    """Latency accounting for resolution attempts.

    ``rtt`` is charged per answered query, ``timeout`` per query that a
    blocked/dead server swallows.  These feed the response-time metric
    only; virtual trace time does not advance with them (matching the
    paper's simulator, which measures availability, not latency).

    ``rtt_spread`` adds a deterministic per-address factor in
    ``[1-spread, 1+spread]`` so servers are distinguishable — what makes
    RTT-based server selection worth modelling.
    """

    rtt: float = 0.04
    timeout: float = 2.0
    rtt_spread: float = 0.5

    def rtt_for(self, address: str) -> float:
        """The stable round-trip time to ``address``."""
        if self.rtt_spread <= 0.0:
            return self.rtt
        factor = (zlib.crc32(address.encode("ascii")) % 1000) / 1000.0
        return self.rtt * (1.0 + self.rtt_spread * (2.0 * factor - 1.0))


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one CS -> AN query attempt."""

    message: Message | None
    latency: float

    @property
    def answered(self) -> bool:
        return self.message is not None


class Network:
    """Routes questions to authoritative servers, honouring attacks."""

    def __init__(
        self,
        tree: ZoneTree,
        attacks: AttackSchedule | None = None,
        latency: LatencyModel | None = None,
    ) -> None:
        self._tree = tree
        self._attacks = attacks
        self.latency = latency or LatencyModel()
        self.queries_sent = 0
        self.queries_lost = 0

    @property
    def attacks(self) -> AttackSchedule | None:
        return self._attacks

    def set_attacks(self, attacks: AttackSchedule | None) -> None:
        """Swap the attack schedule (used by scenario harnesses)."""
        self._attacks = attacks

    def query(self, address: str, question: Question, now: float) -> QueryResult:
        """Send ``question`` to the server at ``address``.

        Returns an unanswered result (``message is None``) when the
        address is blocked by an attack, unknown, or lame for the
        question; the caller pays the timeout either way.
        """
        self.queries_sent += 1
        if self._attacks is not None and self._attacks.is_blocked(address, now):
            self.queries_lost += 1
            return QueryResult(None, self.latency.timeout)
        server = self._tree.server_by_address(address)
        if server is None:
            self.queries_lost += 1
            return QueryResult(None, self.latency.timeout)
        try:
            message = server.respond(question)
        except LameDelegationError:
            # A real lame server answers REFUSED or garbage; either way
            # the resolver moves to the next server, same as a timeout
            # (but much faster).
            self.queries_lost += 1
            return QueryResult(None, self.latency.rtt_for(address))
        return QueryResult(message, self.latency.rtt_for(address))

    def is_reachable(self, address: str, now: float) -> bool:
        """Whether a query to ``address`` would currently be answered."""
        if self._attacks is not None and self._attacks.is_blocked(address, now):
            return False
        return self._tree.server_by_address(address) is not None
