"""Message delivery between the caching server and authoritative servers.

The network is deliberately simple — the paper's metrics depend on *which*
servers are reachable, not on packet dynamics — but it models the two
costs that shape resolver behaviour: per-hop round-trip latency and the
timeout paid for every query to a dead server.

An optional :class:`~repro.simulation.faults.FaultInjector` extends the
binary blocked/reachable model with the partial-failure regime: attack
windows with fractional intensity, background packet loss, latency
jitter and duty-cycled server flapping.  Without an injector the query
path is exactly the pre-fault code — the disabled layer costs nothing.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.dns.errors import LameDelegationError
from repro.dns.message import Message, Question
from repro.hierarchy.tree import ZoneTree
from repro.simulation.adversary import Poisoner
from repro.simulation.attack import AttackSchedule
from repro.simulation.faults import FaultInjector


@dataclass(frozen=True)
class LatencyModel:
    """Latency accounting for resolution attempts.

    ``rtt`` is charged per answered query, ``timeout`` per query that a
    blocked/dead server swallows.  These feed the response-time metric
    only; virtual trace time does not advance with them (matching the
    paper's simulator, which measures availability, not latency).

    ``rtt_spread`` adds a deterministic per-address factor in
    ``[1-spread, 1+spread]`` so servers are distinguishable — what makes
    RTT-based server selection worth modelling.
    """

    rtt: float = 0.04
    timeout: float = 2.0
    rtt_spread: float = 0.5
    # Per-address memo: rtt_for is pure, and the crc32-based spread is
    # recomputed for the same handful of addresses on every query.
    _memo: dict[str, float] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def rtt_for(self, address: str) -> float:
        """The stable round-trip time to ``address``."""
        if self.rtt_spread <= 0.0:
            return self.rtt
        value = self._memo.get(address)
        if value is None:
            factor = (zlib.crc32(address.encode("ascii")) % 1000) / 1000.0
            value = self.rtt * (1.0 + self.rtt_spread * (2.0 * factor - 1.0))
            self._memo[address] = value
        return value


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one CS -> AN query attempt.

    ``dropped_by`` names the fault-layer mechanism that swallowed the
    query (``"attack"``, ``"loss"`` or ``"flap"``); it stays None on the
    fault-free path so pre-fault event streams are unchanged.
    ``timed_out`` distinguishes silent drops (worth retransmitting) from
    fast negative answers like lame delegations (not worth it).
    """

    message: Message | None
    latency: float
    dropped_by: str | None = None
    timed_out: bool = False

    @property
    def answered(self) -> bool:
        return self.message is not None


class Network:
    """Routes questions to authoritative servers, honouring attacks.

    This is the simulated implementation of the
    :class:`~repro.core.transport.Upstream` protocol the caching server
    resolves through; ``repro serve`` swaps in a real UDP socket
    (:class:`repro.serve.upstream.UdpUpstream`) behind the same two
    members (``query`` / ``query_timeout``).
    """

    def __init__(
        self,
        tree: ZoneTree,
        attacks: AttackSchedule | None = None,
        latency: LatencyModel | None = None,
        faults: FaultInjector | None = None,
        poisoner: Poisoner | None = None,
    ) -> None:
        self._tree = tree
        self._attacks = attacks
        self._faults = faults
        self._poisoner = poisoner
        self.latency = latency or LatencyModel()
        self.queries_sent = 0
        self.queries_lost = 0

    @property
    def query_timeout(self) -> float:
        """Seconds one unanswered query costs (the Upstream contract)."""
        return self.latency.timeout

    @property
    def attacks(self) -> AttackSchedule | None:
        return self._attacks

    @property
    def faults(self) -> FaultInjector | None:
        return self._faults

    def set_attacks(self, attacks: AttackSchedule | None) -> None:
        """Swap the attack schedule (used by scenario harnesses)."""
        self._attacks = attacks

    @property
    def poisoner(self) -> Poisoner | None:
        return self._poisoner

    def set_poisoner(self, poisoner: Poisoner | None) -> None:
        """Arm (or disarm) the cache-poisoning forger."""
        self._poisoner = poisoner

    def query(self, address: str, question: Question, now: float) -> QueryResult:
        """Send ``question`` to the server at ``address``.

        Returns an unanswered result (``message is None``) when the
        address is blocked by an attack, dropped by the fault model,
        unknown, or lame for the question; the caller pays the timeout
        either way.
        """
        self.queries_sent += 1
        faults = self._faults
        jitter = 1.0
        if faults is None:
            if self._attacks is not None and self._attacks.is_blocked(address, now):
                self.queries_lost += 1
                return QueryResult(None, self.latency.timeout, timed_out=True)
        else:
            ordinal = faults.next_ordinal(address)
            dropped = self._fault_verdict(faults, address, ordinal, now)
            if dropped is not None:
                self.queries_lost += 1
                return QueryResult(
                    None, self.latency.timeout, dropped_by=dropped,
                    timed_out=True,
                )
            jitter = faults.jitter_factor(address, ordinal)
        server = self._tree.server_by_address(address)
        if server is None:
            self.queries_lost += 1
            return QueryResult(None, self.latency.timeout, timed_out=True)
        try:
            message = server.respond(question)
        except LameDelegationError:
            # A real lame server answers REFUSED or garbage; either way
            # the resolver moves to the next server, same as a timeout
            # (but much faster — and not worth a retransmit).
            self.queries_lost += 1
            return QueryResult(None, self.latency.rtt_for(address) * jitter)
        if self._poisoner is not None:
            # An off-path forger races the honest answer; a won race
            # substitutes the forgery wholesale (the honest packet
            # arrives second and is discarded, as in a real race).
            forged = self._poisoner.race(address, question, now)
            if forged is not None:
                message = forged
        return QueryResult(message, self.latency.rtt_for(address) * jitter)

    def _fault_verdict(
        self, faults: FaultInjector, address: str, ordinal: int, now: float
    ) -> str | None:
        """Which fault mechanism (if any) swallows this query attempt."""
        if self._attacks is not None:
            intensity = self._attacks.block_intensity(address, now)
            if faults.attack_drops(address, ordinal, intensity):
                return "attack"
        if faults.flap_down(address, now):
            return "flap"
        if faults.loss_drops(address, ordinal):
            return "loss"
        return None

    def is_reachable(self, address: str, now: float) -> bool:
        """Whether a query to ``address`` would currently be answered.

        Probabilistic faults (partial intensity, background loss) do not
        make an address unreachable — only full blocks and a flap in its
        down phase do.
        """
        if self._attacks is not None and self._attacks.is_blocked(address, now):
            return False
        if self._faults is not None and self._faults.flap_down(address, now):
            return False
        return self._tree.server_by_address(address) is not None
