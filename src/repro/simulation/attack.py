"""DDoS attack modelling: windows of unreachable authoritative servers.

The paper's evaluation scenario: "at the beginning of the seventh day a
DDoS attack completely blocks the queries sent to the root zone and the
top level domains", with durations of 3 to 24 hours.
:func:`attack_on_root_and_tlds` builds exactly that; arbitrary target
sets support the §6 discussion (attacks on single zones, on providers,
maximum-damage searches).

Beyond the paper, every window carries an *intensity* — the probability
in [0, 1] that a query to a targeted server is dropped.  1.0 (the
default) reproduces the paper's total blackout; fractional intensities
model the partial-failure regime of Moura et al. (IMC 2018) and are
resolved per query by :mod:`repro.simulation.faults`.

Lookup cost: ``is_blocked``/``block_intensity`` run once per CS→AN
query, so the schedule precomputes a sorted boundary timeline and
memoises the address→intensity map per *segment* (a maximal span with a
fixed set of active windows).  A query then costs one bisect plus one
dict probe instead of a linear scan over all windows.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.dns.name import Name, root_name
from repro.hierarchy.tree import ZoneTree

DAY = 86400.0
HOUR = 3600.0


@dataclass(frozen=True)
class AttackWindow:
    """One attack: the listed zones' servers drop queries in [start, end).

    ``intensity`` is the per-query drop probability: 1.0 is the paper's
    total blackout, anything lower needs a fault injector on the network
    to resolve the per-query coin flips.
    """

    start: float
    end: float
    target_zones: frozenset[Name]
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"attack window [{self.start}, {self.end}) is empty")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(
                f"attack intensity must be in [0, 1], got {self.intensity}"
            )

    def active_at(self, now: float) -> bool:
        """Whether the attack is in progress at virtual time ``now``."""
        return self.start <= now < self.end

    @property
    def duration(self) -> float:
        return self.end - self.start


class AttackSchedule:
    """A set of attack windows, resolvable to blocked server addresses.

    A server is blocked while *any* zone it serves is under an active
    attack — flooding a server takes out everything it hosts, which is
    why provider-hosted customers suffer when their provider is hit.
    Overlapping windows combine by maximum intensity.
    """

    def __init__(self, tree: ZoneTree, windows: list[AttackWindow] | None = None) -> None:
        self._tree = tree
        self._windows: list[AttackWindow] = []
        self._blocked_by_window: list[frozenset[str]] = []
        # Per-query lookup structure, built lazily: sorted window edges
        # plus a memoised address -> intensity map per segment between
        # consecutive edges (the active window set is constant there).
        self._boundaries: list[float] | None = None
        self._segment_maps: dict[int, dict[str, float]] = {}
        for window in windows or []:
            self.add_window(window)

    def add_window(self, window: AttackWindow) -> None:
        """Register an attack window (addresses are resolved eagerly)."""
        blocked: set[str] = set()
        for zone_name in window.target_zones:
            blocked.update(self._tree.addresses_for_zone(zone_name))
        self._windows.append(window)
        self._blocked_by_window.append(frozenset(blocked))
        self._boundaries = None
        self._segment_maps.clear()

    def windows(self) -> tuple[AttackWindow, ...]:
        return tuple(self._windows)

    def _segment_index(self, now: float) -> int:
        boundaries = self._boundaries
        if boundaries is None:
            edges: set[float] = set()
            for window in self._windows:
                edges.add(window.start)
                edges.add(window.end)
            boundaries = sorted(edges)
            self._boundaries = boundaries
        return bisect_right(boundaries, now)

    def _segment_map(self, segment: int) -> dict[str, float]:
        cached = self._segment_maps.get(segment)
        if cached is not None:
            return cached
        intensities: dict[str, float] = {}
        # Segment 0 precedes every edge (nothing active); any later
        # segment is fully characterised by its left boundary, because
        # window starts/ends are themselves edges.
        boundaries = self._boundaries
        if segment > 0 and boundaries:
            representative = boundaries[segment - 1]
            for window, blocked in zip(self._windows, self._blocked_by_window):
                if not window.active_at(representative):
                    continue
                for address in blocked:
                    if window.intensity > intensities.get(address, -1.0):
                        intensities[address] = window.intensity
        self._segment_maps[segment] = intensities
        return intensities

    def block_intensity(self, address: str, now: float) -> float:
        """The drop probability for ``address`` at ``now`` (0.0 if safe)."""
        return self._segment_map(self._segment_index(now)).get(address, 0.0)

    def is_blocked(self, address: str, now: float) -> bool:
        """Whether ``address`` is fully unreachable at ``now``."""
        return self.block_intensity(address, now) >= 1.0

    def any_active(self, now: float) -> bool:
        """Whether any attack is in progress at ``now``."""
        return any(window.active_at(now) for window in self._windows)

    def blocked_zone_names(self, now: float) -> set[Name]:
        """Zones under active attack at ``now``."""
        names: set[Name] = set()
        for window in self._windows:
            if window.active_at(now):
                names.update(window.target_zones)
        return names


def attack_on_root_and_tlds(
    tree: ZoneTree,
    start: float = 6 * DAY,
    duration: float = 6 * HOUR,
    intensity: float = 1.0,
) -> AttackSchedule:
    """The paper's scenario: root + every TLD blocked from ``start``.

    Defaults match the evaluation: attack begins at the start of day 7
    of a 7-day trace; the headline comparisons use a 6-hour attack.
    """
    targets = frozenset([root_name(), *tree.tld_names()])
    window = AttackWindow(
        start=start, end=start + duration, target_zones=targets,
        intensity=intensity,
    )
    return AttackSchedule(tree, [window])


def attack_on_zones(
    tree: ZoneTree,
    zones: list[Name],
    start: float = 6 * DAY,
    duration: float = 6 * HOUR,
    intensity: float = 1.0,
) -> AttackSchedule:
    """An attack on an arbitrary zone set (paper §6's other attack classes).

    Raises:
        ValueError: when ``zones`` is empty — a window that blocks
            nothing is always a caller bug, not a scenario.
    """
    if not zones:
        raise ValueError("attack_on_zones needs at least one target zone")
    window = AttackWindow(
        start=start, end=start + duration, target_zones=frozenset(zones),
        intensity=intensity,
    )
    return AttackSchedule(tree, [window])


@dataclass
class AttackBudgetPlan:
    """A budgeted target list for maximum-damage exploration (paper §6).

    ``budget`` counts attacked zones; the explorer in
    :mod:`repro.experiments.max_damage` fills ``targets`` greedily.
    """

    budget: int
    targets: list[Name] = field(default_factory=list)

    def remaining(self) -> int:
        return self.budget - len(self.targets)
