"""DDoS attack modelling: windows of unreachable authoritative servers.

The paper's evaluation scenario: "at the beginning of the seventh day a
DDoS attack completely blocks the queries sent to the root zone and the
top level domains", with durations of 3 to 24 hours.
:func:`attack_on_root_and_tlds` builds exactly that; arbitrary target
sets support the §6 discussion (attacks on single zones, on providers,
maximum-damage searches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.name import Name, root_name
from repro.hierarchy.tree import ZoneTree

DAY = 86400.0
HOUR = 3600.0


@dataclass(frozen=True)
class AttackWindow:
    """One attack: the listed zones' servers drop all queries in [start, end)."""

    start: float
    end: float
    target_zones: frozenset[Name]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"attack window [{self.start}, {self.end}) is empty")

    def active_at(self, now: float) -> bool:
        """Whether the attack is in progress at virtual time ``now``."""
        return self.start <= now < self.end

    @property
    def duration(self) -> float:
        return self.end - self.start


class AttackSchedule:
    """A set of attack windows, resolvable to blocked server addresses.

    A server is blocked while *any* zone it serves is under an active
    attack — flooding a server takes out everything it hosts, which is
    why provider-hosted customers suffer when their provider is hit.
    """

    def __init__(self, tree: ZoneTree, windows: list[AttackWindow] | None = None) -> None:
        self._tree = tree
        self._windows: list[AttackWindow] = []
        self._blocked_by_window: list[frozenset[str]] = []
        for window in windows or []:
            self.add_window(window)

    def add_window(self, window: AttackWindow) -> None:
        """Register an attack window (addresses are resolved eagerly)."""
        blocked: set[str] = set()
        for zone_name in window.target_zones:
            blocked.update(self._tree.addresses_for_zone(zone_name))
        self._windows.append(window)
        self._blocked_by_window.append(frozenset(blocked))

    def windows(self) -> tuple[AttackWindow, ...]:
        return tuple(self._windows)

    def is_blocked(self, address: str, now: float) -> bool:
        """Whether ``address`` is unreachable at ``now``."""
        for window, blocked in zip(self._windows, self._blocked_by_window):
            if window.active_at(now) and address in blocked:
                return True
        return False

    def any_active(self, now: float) -> bool:
        """Whether any attack is in progress at ``now``."""
        return any(window.active_at(now) for window in self._windows)

    def blocked_zone_names(self, now: float) -> set[Name]:
        """Zones under active attack at ``now``."""
        names: set[Name] = set()
        for window in self._windows:
            if window.active_at(now):
                names.update(window.target_zones)
        return names


def attack_on_root_and_tlds(
    tree: ZoneTree, start: float = 6 * DAY, duration: float = 6 * HOUR
) -> AttackSchedule:
    """The paper's scenario: root + every TLD blocked from ``start``.

    Defaults match the evaluation: attack begins at the start of day 7
    of a 7-day trace; the headline comparisons use a 6-hour attack.
    """
    targets = frozenset([root_name(), *tree.tld_names()])
    window = AttackWindow(start=start, end=start + duration, target_zones=targets)
    return AttackSchedule(tree, [window])


def attack_on_zones(
    tree: ZoneTree,
    zones: list[Name],
    start: float = 6 * DAY,
    duration: float = 6 * HOUR,
) -> AttackSchedule:
    """An attack on an arbitrary zone set (paper §6's other attack classes)."""
    window = AttackWindow(
        start=start, end=start + duration, target_zones=frozenset(zones)
    )
    return AttackSchedule(tree, [window])


@dataclass
class AttackBudgetPlan:
    """A budgeted target list for maximum-damage exploration (paper §6).

    ``budget`` counts attacked zones; the explorer in
    :mod:`repro.experiments.max_damage` fills ``targets`` greedily.
    """

    budget: int
    targets: list[Name] = field(default_factory=list)

    def remaining(self) -> int:
        return self.budget - len(self.targets)
