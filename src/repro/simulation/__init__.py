"""Discrete-event simulation substrate.

The paper evaluates its caching schemes with a trace-driven simulator;
this package is that simulator's foundation:

* :mod:`repro.simulation.events` / :mod:`repro.simulation.engine` -- a
  small discrete-event engine (timer wheel over a heap) driving virtual
  time.
* :mod:`repro.simulation.attack` -- DDoS attack windows that take sets of
  zones' authoritative servers offline.
* :mod:`repro.simulation.network` -- delivers questions to authoritative
  servers, honouring attack windows and modelling latency/timeouts.
* :mod:`repro.simulation.metrics` -- the counters behind every figure and
  table: SR/CS failure rates, message counts, cache-size samples.
"""

from repro.simulation.attack import AttackSchedule, AttackWindow, attack_on_root_and_tlds
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import EventQueue
from repro.simulation.metrics import MemorySample, ReplayMetrics
from repro.simulation.network import LatencyModel, Network

__all__ = [
    "AttackSchedule",
    "AttackWindow",
    "EventQueue",
    "LatencyModel",
    "MemorySample",
    "Network",
    "ReplayMetrics",
    "SimulationEngine",
    "attack_on_root_and_tlds",
]
