"""Counters and samplers behind every figure and table.

Two granularities:

* whole-run totals (Table 1 "requests out", Table 2 message overhead);
* per-window totals (the attack-period failure rates of Figures 4–11).

Memory samples (Figure 12) are a time series of cache sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MemorySample:
    """Cache occupancy at one instant."""

    time: float
    zones_cached: int
    records_cached: int


@dataclass
class WindowCounters:
    """Failure accounting restricted to one time window."""

    start: float
    end: float
    sr_queries: int = 0
    sr_failures: int = 0
    cs_queries: int = 0
    cs_failures: int = 0

    def contains(self, now: float) -> bool:
        return self.start <= now < self.end

    @property
    def sr_failure_rate(self) -> float:
        """Fraction of stub-resolver queries that failed, in [0, 1]."""
        if self.sr_queries == 0:
            return 0.0
        return self.sr_failures / self.sr_queries

    @property
    def cs_failure_rate(self) -> float:
        """Fraction of caching-server queries that failed, in [0, 1]."""
        if self.cs_queries == 0:
            return 0.0
        return self.cs_failures / self.cs_queries


@dataclass
class ReplayMetrics:
    """Everything one trace replay measures.

    CS ("requests out") counters distinguish *demand* queries — those
    triggered by resolving a stub query — from *renewal* queries issued
    proactively by a renewal policy.  Failure rates use demand queries
    (the paper's "queries from the CSes"); message overhead uses the sum.
    """

    # Stub-resolver side.
    sr_queries: int = 0
    sr_failures: int = 0
    sr_cache_hits: int = 0
    sr_nxdomain: int = 0
    sr_validation_failures: int = 0
    sr_stale_hits: int = 0

    # Renewal 2.0 accounting (zero unless `swr` / `decoupled` is armed).
    swr_refreshes: int = 0
    invalidations: int = 0

    # Caching-server side.
    cs_demand_queries: int = 0
    cs_demand_failures: int = 0
    cs_renewal_queries: int = 0
    cs_renewal_failures: int = 0

    # Latency (virtual seconds spent waiting on the network).
    total_latency: float = 0.0

    # Traffic in octets (approximate wire sizes; see Message.wire_size).
    bytes_out: int = 0
    bytes_in: int = 0

    # Optional attack-window accounting.
    windows: list[WindowCounters] = field(default_factory=list)

    # Cache-size time series (Figure 12).
    memory_samples: list[MemorySample] = field(default_factory=list)

    # Adversary accounting (all zero without an AdversarySpec; attack
    # stub queries are counted here and NOT in sr_queries, so the
    # availability figures stay legitimate-traffic-only and collateral
    # damage remains measurable).
    attack_stub_queries: int = 0
    attack_cs_queries: int = 0
    attack_failures: int = 0
    flash_queries: int = 0

    # Defense accounting.
    budget_exhaustions: int = 0
    nxns_capped: int = 0

    # Poisoning accounting (copied from the poisoner and the cache's
    # taint registry when the replay finalises).
    poison_attempts: int = 0
    poison_wins: int = 0
    poison_stored: int = 0
    poison_cured: int = 0
    poison_dwells: list[float] = field(default_factory=list)

    # -- configuration -------------------------------------------------------

    def watch_window(self, start: float, end: float) -> WindowCounters:
        """Track failures separately inside [start, end)."""
        window = WindowCounters(start=start, end=end)
        self.windows.append(window)
        return window

    # -- recording ------------------------------------------------------------

    def record_sr_query(self, now: float, failed: bool, cache_hit: bool = False,
                        nxdomain: bool = False,
                        validation_failed: bool = False,
                        stale: bool = False) -> None:
        self.sr_queries += 1
        if failed:
            self.sr_failures += 1
        if cache_hit:
            self.sr_cache_hits += 1
        if nxdomain:
            self.sr_nxdomain += 1
        if validation_failed:
            self.sr_validation_failures += 1
        if stale:
            self.sr_stale_hits += 1
        for window in self.windows:
            if window.contains(now):
                window.sr_queries += 1
                if failed:
                    window.sr_failures += 1

    def record_cs_query(self, now: float, failed: bool, renewal: bool = False) -> None:
        if renewal:
            self.cs_renewal_queries += 1
            if failed:
                self.cs_renewal_failures += 1
            return
        self.cs_demand_queries += 1
        if failed:
            self.cs_demand_failures += 1
        for window in self.windows:
            if window.contains(now):
                window.cs_queries += 1
                if failed:
                    window.cs_failures += 1

    def record_latency(self, seconds: float) -> None:
        self.total_latency += seconds

    def record_traffic(self, bytes_out: int, bytes_in: int) -> None:
        self.bytes_out += bytes_out
        self.bytes_in += bytes_in

    def record_exchange(
        self,
        now: float,
        failed: bool,
        renewal: bool,
        bytes_out: int,
        bytes_in: int,
        latency: float,
    ) -> None:
        """One CS query attempt's full bookkeeping in a single call.

        Equivalent to ``record_cs_query`` + ``record_traffic`` (+
        ``record_latency`` for demand traffic); fused because the trio
        runs for every query the resolver sends.
        """
        self.bytes_out += bytes_out
        self.bytes_in += bytes_in
        if renewal:
            self.cs_renewal_queries += 1
            if failed:
                self.cs_renewal_failures += 1
            return
        self.total_latency += latency
        self.cs_demand_queries += 1
        if failed:
            self.cs_demand_failures += 1
        for window in self.windows:
            if window.contains(now):
                window.cs_queries += 1
                if failed:
                    window.cs_failures += 1

    @property
    def total_bytes(self) -> int:
        """Total traffic (both directions) in octets."""
        return self.bytes_out + self.bytes_in

    def byte_overhead_vs(self, baseline: "ReplayMetrics") -> float:
        """Relative change in total traffic bytes vs ``baseline``.

        An empty baseline (no bytes moved — e.g. an empty trace) reads
        as zero overhead, matching the ``<= 0.0`` convention in
        ``analysis/``.
        """
        if baseline.total_bytes <= 0:
            return 0.0
        return (self.total_bytes - baseline.total_bytes) / baseline.total_bytes

    def record_memory(self, sample: MemorySample) -> None:
        self.memory_samples.append(sample)

    # -- reads ----------------------------------------------------------------

    @property
    def total_outgoing(self) -> int:
        """All CS -> AN messages (demand + renewal): Table 2's currency."""
        return self.cs_demand_queries + self.cs_renewal_queries

    @property
    def upstream_queries(self) -> int:
        """Alias of :attr:`total_outgoing` — the equal-budget currency
        the Renewal 2.0 comparison normalises schemes by."""
        return self.total_outgoing

    @property
    def stale_answer_rate(self) -> float:
        """Fraction of stub answers served from lapsed records."""
        if self.sr_queries == 0:
            return 0.0
        return self.sr_stale_hits / self.sr_queries

    @property
    def sr_failure_rate(self) -> float:
        if self.sr_queries == 0:
            return 0.0
        return self.sr_failures / self.sr_queries

    @property
    def cs_failure_rate(self) -> float:
        if self.cs_demand_queries == 0:
            return 0.0
        return self.cs_demand_failures / self.cs_demand_queries

    @property
    def amplification_factor(self) -> float:
        """CS-side queries per injected attack query (the NXNS payoff)."""
        if self.attack_stub_queries == 0:
            return 0.0
        return self.attack_cs_queries / self.attack_stub_queries

    @property
    def mean_latency(self) -> float:
        """Average network wait per stub query (virtual seconds)."""
        if self.sr_queries == 0:
            return 0.0
        return self.total_latency / self.sr_queries

    def message_overhead_vs(self, baseline: "ReplayMetrics") -> float:
        """Relative change in outgoing messages vs ``baseline``.

        +0.76 means 76 % more messages; -0.1 means 10 % fewer (the paper's
        Table 2 convention).  An empty baseline reads as zero overhead.
        """
        if baseline.total_outgoing <= 0:
            return 0.0
        return (self.total_outgoing - baseline.total_outgoing) / baseline.total_outgoing
