"""Adversary 2.0: NXNS amplification, cache poisoning, flash crowds.

The paper models a DDoS as brute-force unavailability of authoritative
servers; this module adds the three adversarial workloads the follow-on
literature studies *against the resolver itself*:

* **NXNS amplification** (Afek et al., USENIX Security 2020) — queries
  into an attacker-controlled zone whose delegations name many
  unresolvable out-of-bailiwick servers, so every attack query fans out
  into a storm of failing CS-side sub-resolutions against innocent
  zones.  The zone itself is grafted by
  :func:`repro.hierarchy.builder.graft_attacker_zone`.
* **Cache poisoning** — an off-path forger racing legitimate answers at
  the network layer.  A won race substitutes a forged authoritative
  answer; whether it *sticks* is decided downstream by the ordinary RFC
  2181 ranking in the cache, which is exactly the point: defenses are
  measured by poison dwell time, not by fiat.
* **Flash crowds** — a scheduled Zipf-skewed query surge on a few hot
  names, stressing cache admission rather than the upstream path.

Mirroring :mod:`repro.simulation.faults`, each family splits into a
frozen picklable spec riding inside
:class:`~repro.experiments.parallel.ReplaySpec` and a live per-replay
counterpart.  Every stochastic choice is a pure BLAKE2b draw keyed on
``(seed, stream, address, ordinal)`` with the adversary's *own*
per-address ordinals, so draws are byte-identical at any worker count
and independent of whether a :class:`~repro.simulation.faults
.FaultInjector` is present.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.message import Message, Question
from repro.dns.name import Name
from repro.dns.records import ResourceRecord, RRset
from repro.dns.rrtypes import RRType
from repro.simulation.faults import unit_hash

DAY = 86400.0
HOUR = 3600.0
MINUTE = 60.0


@dataclass(frozen=True)
class NxnsAttackSpec:
    """One NXNS amplification campaign (frozen, picklable)."""

    # repro: pickled-boundary

    start: float = 6 * DAY
    """Virtual time the attack query stream begins."""

    duration: float = 6 * HOUR
    """Length of the attack window in seconds."""

    queries_per_minute: float = 60.0
    """Attack queries injected at the resolver's stub interface."""

    fan_out: int = 10
    """Unresolvable NS names per attacker delegation (the amplifier)."""

    delegations: int = 50
    """Delegated children in the attacker zone the queries cycle over."""

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.queries_per_minute <= 0.0:
            raise ValueError(
                f"queries_per_minute must be positive, "
                f"got {self.queries_per_minute}"
            )
        if self.fan_out < 1 or self.delegations < 1:
            raise ValueError("fan_out and delegations must be positive")

    def query_stream(self, apex: Name) -> tuple[tuple[float, Name], ...]:
        """The (time, qname) attack arrivals against a grafted ``apex``.

        Each qname is fresh (cache-busting ``q<i>`` label) under one of
        the attacker's delegated children, cycled round-robin so every
        amplifying NS set is exercised.
        """
        interval = MINUTE / self.queries_per_minute
        count = int(self.duration / interval)
        return tuple(
            (
                self.start + index * interval,
                apex.child(f"s{index % self.delegations}").child(f"q{index}"),
            )
            for index in range(count)
        )


@dataclass(frozen=True)
class PoisonAttackSpec:
    """An off-path forger racing CS→AN answers (frozen, picklable)."""

    # repro: pickled-boundary

    rate: float = 0.05
    """Probability an answered A-query exchange is raced at all."""

    success: float = 0.5
    """Probability a raced exchange is *won* before entropy defenses;
    each bit of ``source_entropy_bits`` on the resolver halves it."""

    ttl: float = 3600.0
    """TTL the forged records advertise (what the attacker wants)."""

    address: str = "198.51.100.66"
    """Where forged answers point (TEST-NET-2: recognisably bogus)."""

    start: float = 0.0
    """Virtual time the forger switches on."""

    duration: "float | None" = None
    """Attack window length; None means until the replay ends."""

    def __post_init__(self) -> None:
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {self.rate}")
        if not 0.0 < self.success <= 1.0:
            raise ValueError(f"success must be in (0, 1], got {self.success}")
        if self.ttl <= 0.0:
            raise ValueError(f"ttl must be positive, got {self.ttl}")
        if self.start < 0.0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration is not None and self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class FlashCrowdSpec:
    """A scheduled legitimate-traffic surge on a few hot names."""

    # repro: pickled-boundary

    start: float = 6 * DAY
    """Virtual time the crowd arrives."""

    duration: float = 1 * HOUR
    """How long the surge lasts."""

    queries_per_minute: float = 600.0
    """Surge arrival rate (on top of the base trace)."""

    hot_zones: int = 5
    """Number of zones the crowd concentrates on."""

    zipf_alpha: float = 1.2
    """Skew of the crowd's popularity distribution over the hot set."""

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.queries_per_minute <= 0.0:
            raise ValueError(
                f"queries_per_minute must be positive, "
                f"got {self.queries_per_minute}"
            )
        if self.hot_zones < 1:
            raise ValueError(f"hot_zones must be >= 1, got {self.hot_zones}")
        if self.zipf_alpha <= 0.0:
            raise ValueError(
                f"zipf_alpha must be positive, got {self.zipf_alpha}"
            )


@dataclass(frozen=True)
class AdversarySpec:
    """Declarative adversary model for one replay (frozen, picklable).

    Rides inside :class:`~repro.experiments.parallel.ReplaySpec` exactly
    like ``FaultSpec``; worker processes rebuild their own live
    :class:`Adversary` from it, so nothing unpicklable crosses the
    process boundary.
    """

    # repro: pickled-boundary

    nxns: "NxnsAttackSpec | None" = None
    poison: "PoisonAttackSpec | None" = None
    flash: "FlashCrowdSpec | None" = None

    @property
    def inert(self) -> bool:
        """Whether this spec mounts no attack at all."""
        return self.nxns is None and self.poison is None and self.flash is None

    def build(self, seed: int = 0, entropy_bits: int = 0) -> "Adversary":
        """The live adversary for one replay (mirrors FaultSpec.build).

        ``entropy_bits`` is the *resolver's* source-port/0x20 entropy
        defense (:attr:`~repro.core.config.ResilienceConfig
        .source_entropy_bits`); it belongs to the defender but is
        resolved here because it scales the forger's race odds.
        """
        return Adversary(self, seed=seed, entropy_bits=entropy_bits)


class Poisoner:
    """Live forger state: per-address ordinals + memoized forgeries.

    One poisoner belongs to exactly one replay.  The ordinal counters
    are the poisoner's own (never shared with the fault injector), so
    the draw sequence is identical whether or not faults are configured.
    """

    __slots__ = ("spec", "seed", "entropy_bits", "attempts", "wins",
                 "_ordinals", "_forged")

    def __init__(
        self, spec: PoisonAttackSpec, seed: int = 0, entropy_bits: int = 0
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.entropy_bits = entropy_bits
        self.attempts = 0
        self.wins = 0
        self._ordinals: dict[str, int] = {}
        # Forged responses memoized per question so repeated wins reuse
        # one Message object (and its ingest-plan memo), like the
        # authoritative response cache does for honest answers.
        self._forged: dict[tuple[Name, RRType], Message] = {}

    def race(
        self, address: str, question: Question, now: float
    ) -> Message | None:
        """The forged message substituted for this exchange, if the race
        is attempted and won; None otherwise."""
        spec = self.spec
        if question.rrtype != RRType.A:
            return None
        if now < spec.start:
            return None
        if spec.duration is not None and now >= spec.start + spec.duration:
            return None
        ordinal = self._ordinals.get(address, 0)
        self._ordinals[address] = ordinal + 1
        if unit_hash(self.seed, "poison-attempt", address, ordinal) >= spec.rate:
            return None
        self.attempts += 1
        odds = spec.success * 2.0 ** -self.entropy_bits
        if unit_hash(self.seed, "poison-race", address, ordinal) >= odds:
            return None
        self.wins += 1
        return self._forge(question)

    def _forge(self, question: Question) -> Message:
        key = (question.name, question.rrtype)
        message = self._forged.get(key)
        if message is None:
            rrset = RRset.from_records([
                ResourceRecord(
                    question.name, RRType.A, self.spec.ttl, self.spec.address
                )
            ])
            message = Message(
                question=question,
                authoritative=True,
                answer=(rrset,),
                message_id=0,
                forged=True,
            )
            self._forged[key] = message
        return message


class Adversary:
    """Live per-replay adversary built from an :class:`AdversarySpec`."""

    __slots__ = ("spec", "seed", "poisoner")

    def __init__(
        self, spec: AdversarySpec, seed: int = 0, entropy_bits: int = 0
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.poisoner: Poisoner | None = (
            Poisoner(spec.poison, seed=seed, entropy_bits=entropy_bits)
            if spec.poison is not None
            else None
        )
