"""The discrete-event simulation engine.

The engine owns virtual time.  Trace replay drives it with
:meth:`SimulationEngine.advance_to` — between two trace queries, every
timer (renewal refetches, metric sampling) due in the interval fires in
timestamp order.  Components schedule work with :meth:`schedule` /
:meth:`schedule_in`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.dns.errors import InvariantError
from repro.obs.events import EventKind
from repro.simulation.events import EventHandle, EventQueue

if TYPE_CHECKING:
    from repro.obs.events import EventBus

_TIMER_FIRED = EventKind.TIMER_FIRED


class SimulationEngine:
    """Virtual clock plus event queue.

    ``observer`` is the optional observability bus (DESIGN.md §10); when
    set, each timer firing emits an ``engine.timer`` event.  The None
    checks live inside the fire loops so the empty-queue fast path in
    :meth:`advance_to` stays untouched.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = start_time
        self._queue = EventQueue()
        self._running = False
        self.observer: "EventBus | None" = None

    def schedule(self, time: float, action: Callable[[float], None]) -> EventHandle:
        """Run ``action(fire_time)`` at absolute virtual ``time``.

        Scheduling in the past is clamped to "immediately" (fires at the
        current time on the next advance), mirroring how a real timer API
        treats overdue deadlines.
        """
        return self._queue.push(max(time, self.now), action)

    def schedule_in(self, delay: float, action: Callable[[float], None]) -> EventHandle:
        """Run ``action`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self._queue.push(self.now + delay, action)

    def advance_to(self, time: float) -> int:
        """Advance the clock to ``time``, firing every event due on the way.

        Events scheduled by firing events are honoured as long as they
        fall within the interval.  Returns the number of events fired.

        Raises:
            ValueError: when asked to move time backwards.
        """
        if time < self.now:
            raise ValueError(f"cannot advance backwards: {time} < {self.now}")
        queue = self._queue
        if queue.is_empty():
            # Fast path: no timers at all (vanilla replays schedule none),
            # so the advance is just a clock assignment.
            self.now = time
            return 0
        fired = 0
        observer = self.observer
        while True:
            next_time = queue.peek_time()
            if next_time is None or next_time > time:
                break
            handle = queue.pop()
            if handle is None:
                raise InvariantError(
                    "event queue emptied between peek and pop"
                )
            self.now = handle.time
            if observer is not None:
                observer.emit(_TIMER_FIRED, handle.time)
            handle.action(handle.time)
            fired += 1
        self.now = time
        return fired

    def run(self, until: float | None = None) -> int:
        """Drain the queue (optionally only up to ``until``).

        Returns the number of events fired.
        """
        if until is not None:
            return self.advance_to(until)
        fired = 0
        observer = self.observer
        while True:
            handle = self._queue.pop()
            if handle is None:
                return fired
            self.now = handle.time
            if observer is not None:
                observer.emit(_TIMER_FIRED, handle.time)
            handle.action(handle.time)
            fired += 1

    def pending_events(self) -> int:
        """Live events still queued (diagnostic)."""
        return len(self._queue)
