"""The discrete-event simulation engine.

The engine owns virtual time.  Trace replay drives it with
:meth:`SimulationEngine.advance_to` — between two trace queries, every
timer (renewal refetches, metric sampling) due in the interval fires in
timestamp order.  Components schedule work with :meth:`schedule` /
:meth:`schedule_in`; both return an int token that :meth:`cancel`
accepts (see :class:`~repro.simulation.events.EventQueue`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.obs.events import EventKind
from repro.simulation.events import EventQueue

if TYPE_CHECKING:
    from repro.core.clock import VirtualClock
    from repro.obs.events import EventBus

_TIMER_FIRED = EventKind.TIMER_FIRED


class SimulationEngine:
    """Virtual clock plus event queue.

    ``observer`` is the optional observability bus (DESIGN.md §10); when
    set, each timer firing emits an ``engine.timer`` event.  The None
    checks live inside the fire loops so the empty-queue fast path in
    :meth:`advance_to` stays untouched.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = start_time
        self._queue = EventQueue()
        self._running = False
        self.observer: "EventBus | None" = None

    def schedule(self, time: float, action: Callable[[float], None]) -> int:
        """Run ``action(fire_time)`` at absolute virtual ``time``.

        Scheduling in the past is clamped to "immediately" (fires at the
        current time on the next advance), mirroring how a real timer API
        treats overdue deadlines.  Returns a cancel token.
        """
        return self._queue.push(max(time, self.now), action)

    def schedule_in(self, delay: float, action: Callable[[float], None]) -> int:
        """Run ``action`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self._queue.push(self.now + delay, action)

    def cancel(self, token: int) -> bool:
        """Cancel a scheduled event; True when it was still pending."""
        return self._queue.cancel(token)

    def advance_to(self, time: float) -> int:
        """Advance the clock to ``time``, firing every event due on the way.

        Events scheduled by firing events are honoured as long as they
        fall within the interval.  Returns the number of events fired.

        Raises:
            ValueError: when asked to move time backwards.
        """
        if time < self.now:
            raise ValueError(f"cannot advance backwards: {time} < {self.now}")
        queue = self._queue
        if queue.is_empty():
            # Fast path: no timers at all (vanilla replays schedule none),
            # so the advance is just a clock assignment.
            self.now = time
            return 0
        fired = 0
        observer = self.observer
        pop_due = queue.pop_due
        while True:
            item = pop_due(time)
            if item is None:
                break
            fire_time, action = item
            self.now = fire_time
            if observer is not None:
                observer.emit(_TIMER_FIRED, fire_time)
            action(fire_time)
            fired += 1
        self.now = time
        return fired

    def run(self, until: float | None = None) -> int:
        """Drain the queue (optionally only up to ``until``).

        Returns the number of events fired.
        """
        if until is not None:
            return self.advance_to(until)
        fired = 0
        observer = self.observer
        pop = self._queue.pop
        while True:
            item = pop()
            if item is None:
                return fired
            fire_time, action = item
            self.now = fire_time
            if observer is not None:
                observer.emit(_TIMER_FIRED, fire_time)
            action(fire_time)
            fired += 1

    def pending_events(self) -> int:
        """Live events still queued (diagnostic)."""
        return len(self._queue)

    def clock(self) -> "VirtualClock":
        """This engine viewed through the :class:`~repro.core.clock.Clock`
        protocol (the virtual half of the virtual/wall split, DESIGN §15)."""
        from repro.core.clock import VirtualClock

        return VirtualClock(self)
