"""Deterministic fault injection: partial attacks, loss, jitter, flapping.

The paper's evaluation models a DDoS as total unavailability of the
targeted servers; the interesting regime studied by the follow-on
literature (Moura et al., "When the Dike Breaks", IMC 2018) is *partial*
failure — attacks that drop a fraction of queries, background packet
loss, latency jitter, and servers that flap in and out of reachability.
This module is the declarative fault model the :class:`~repro.
simulation.network.Network` consults before handing a query to a server.

Two shapes, mirroring the observability subsystem:

* :class:`FaultSpec` — a frozen, picklable description that rides inside
  :class:`~repro.experiments.parallel.ReplaySpec` exactly like
  ``ObservationSpec``, so worker processes rebuild their own injectors.
* :class:`FaultInjector` — the live per-replay counterpart holding the
  per-address query ordinals.

Determinism
-----------

No ``random.Random`` stream is involved: every stochastic choice is a
pure function of ``(seed, stream, address, query ordinal)`` hashed
through BLAKE2b (:func:`unit_hash`).  The nth query to a given address
therefore sees the same coin flips regardless of how queries to *other*
addresses interleave, which is what keeps event logs byte-identical at
any worker count (``repro check`` REP001/REP002 stay clean because no
wall clock and no hidden RNG state exist here).

Server flapping is deliberately non-stochastic: an affected address is
down whenever ``(now + phase) mod flap_period`` falls past the duty
fraction, with the phase itself hashed from the address so servers do
not flap in unison.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

_TWO_64 = float(2**64)


def unit_hash(seed: int, stream: str, address: str, ordinal: int) -> float:
    """A uniform draw in [0, 1) keyed on (seed, stream, address, ordinal).

    Pure and platform-stable (BLAKE2b over a canonical byte string), so
    replays are byte-identical across processes, hosts and Python
    versions — the property a shared ``random.Random`` could not give
    once queries interleave differently across worker counts.
    """
    key = f"{seed}|{stream}|{address}|{ordinal}".encode("utf-8")
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") / _TWO_64


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault model for one replay (frozen, picklable).

    All-default instances describe a fault-free network; the harness
    still builds an injector from them when an attack window carries a
    partial intensity, because the intensity roll needs the stream-split
    draws.
    """

    background_loss: float = 0.0
    """Probability in [0, 1] that any CS→AN query is silently dropped,
    independent of attacks (ambient packet loss)."""

    jitter: float = 0.0
    """Per-query latency jitter fraction in [0, 1]: an answered query's
    RTT is scaled by a factor drawn uniformly from [1-jitter, 1+jitter]."""

    flap_period: "float | None" = None
    """Duty cycle length in seconds for flapping servers; None disables
    flapping entirely."""

    flap_duty: float = 1.0
    """Fraction of each flap period an affected server is *up*; 1.0
    means never down, 0.0 means always down."""

    flap_addresses: "tuple[str, ...]" = ()
    """Addresses subject to flapping.  Empty means every address flaps
    (each with its own hashed phase) when ``flap_period`` is set."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.background_loss <= 1.0:
            raise ValueError(
                f"background_loss must be in [0, 1], got {self.background_loss}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.flap_period is not None and self.flap_period <= 0.0:
            raise ValueError(
                f"flap_period must be positive, got {self.flap_period}"
            )
        if not 0.0 <= self.flap_duty <= 1.0:
            raise ValueError(
                f"flap_duty must be in [0, 1], got {self.flap_duty}"
            )

    @property
    def flapping_enabled(self) -> bool:
        return self.flap_period is not None and self.flap_duty < 1.0

    @property
    def inert(self) -> bool:
        """Whether this spec injects no faults at all."""
        return (
            self.background_loss <= 0.0
            and self.jitter <= 0.0
            and not self.flapping_enabled
        )

    def build(self, seed: int = 0) -> "FaultInjector":
        """The live injector for one replay (mirrors ObservationSpec.build)."""
        return FaultInjector(self, seed=seed)


class FaultInjector:
    """Live fault state for one replay: spec + per-address query ordinals.

    One injector belongs to exactly one replay (the harness builds it
    next to the :class:`~repro.simulation.network.Network`), so the
    ordinal counters reset with every run and the draw sequence is a
    pure function of the replay spec.
    """

    __slots__ = ("spec", "seed", "_ordinals", "_flap_set")

    def __init__(self, spec: FaultSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        self._ordinals: dict[str, int] = {}
        self._flap_set: "frozenset[str] | None" = (
            frozenset(spec.flap_addresses) if spec.flap_addresses else None
        )

    def next_ordinal(self, address: str) -> int:
        """This query's per-address ordinal (the RNG stream position)."""
        ordinal = self._ordinals.get(address, 0)
        self._ordinals[address] = ordinal + 1
        return ordinal

    def unit(self, stream: str, address: str, ordinal: int) -> float:
        """The stream-split uniform draw for one query attempt."""
        return unit_hash(self.seed, stream, address, ordinal)

    def attack_drops(self, address: str, ordinal: int, intensity: float) -> bool:
        """Whether a partial attack of ``intensity`` swallows this query."""
        if intensity <= 0.0:
            return False
        if intensity >= 1.0:
            return True
        return self.unit("attack", address, ordinal) < intensity

    def loss_drops(self, address: str, ordinal: int) -> bool:
        """Whether background packet loss swallows this query."""
        loss = self.spec.background_loss
        if loss <= 0.0:
            return False
        return self.unit("loss", address, ordinal) < loss

    def flap_down(self, address: str, now: float) -> bool:
        """Whether ``address`` is in the down phase of its duty cycle."""
        period = self.spec.flap_period
        if period is None or self.spec.flap_duty >= 1.0:
            return False
        if self._flap_set is not None and address not in self._flap_set:
            return False
        phase = unit_hash(self.seed, "flap-phase", address, 0) * period
        return (now + phase) % period >= self.spec.flap_duty * period

    def jitter_factor(self, address: str, ordinal: int) -> float:
        """The RTT multiplier for one answered query (1.0 without jitter)."""
        jitter = self.spec.jitter
        if jitter <= 0.0:
            return 1.0
        draw = self.unit("jitter", address, ordinal)
        return 1.0 + jitter * (2.0 * draw - 1.0)
