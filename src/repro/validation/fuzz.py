"""Seeded op-sequence fuzzing for the differential cache, plus the
regression corpus that reproduces each bug the subsystem has caught.

No third-party fuzzing framework: sequences come from a seeded
``random.Random`` so every failure is reproducible from ``(seed,
round)`` alone and the determinism lint (REP002) stays happy.

Two layers:

* **Corpus** — hand-written op sequences, one per fixed bug, replayed
  through :func:`apply_ops` on every ``repro validate`` run.  If a fix
  regresses, the corresponding case fails with a
  :class:`~repro.validation.errors.DivergenceError` naming the
  operation.
* **Fuzzer** — :func:`run_fuzz` generates random put/get/expiry/
  eviction/purge orderings (including occasional backwards-clock reads,
  which the incremental counters must survive via their scan fallback)
  against randomly sized caches, auditing the full state periodically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.cache import DnsCache
from repro.core.policies import LRUPolicy
from repro.core.renewal import RenewalManager
from repro.dns.name import Name
from repro.dns.ranking import Rank
from repro.dns.records import ResourceRecord, RRset
from repro.dns.rrtypes import RRType
from repro.simulation.engine import SimulationEngine
from repro.validation.differential import DifferentialCache
from repro.validation.errors import InvariantViolation, ValidationError
from repro.validation.invariants import (
    check_cache_invariants,
    check_renewal_invariants,
)

#: An op is ``(opcode, *args)``; see :func:`apply_ops` for the opcodes.
Op = tuple[object, ...]


def make_rrset(owner: str, rrtype: RRType, ttl: float, data: str) -> RRset:
    """A single-record RRset for op sequences (Name-valued where needed)."""
    name = Name.from_text(owner)
    rdata: Name | str = data
    if rrtype in (RRType.NS, RRType.CNAME, RRType.PTR):
        rdata = Name.from_text(data)
    return RRset.from_records([ResourceRecord(name, rrtype, ttl, rdata)])


def apply_ops(cache: DifferentialCache, ops: tuple[Op, ...] | list[Op]) -> None:
    """Replay an op sequence; any divergence raises out of the cache.

    Opcodes (absolute virtual times throughout):

    * ``("put", owner, rrtype, ttl, rank, now, refresh, data)``
    * ``("get", owner, rrtype, now)``
    * ``("get_stale", owner, rrtype, now, max_stale)``
    * ``("put_negative", owner, rrtype, now, ttl)``
    * ``("get_negative", owner, rrtype, now)``
    * ``("remove", owner, rrtype)``
    * ``("purge", now, older_than)``
    * ``("best_zone", qname, now, allow_stale)``
    * ``("counts", now)`` — query every occupancy figure
    * ``("check", now)`` — cache invariants plus a full-state audit
    """
    for op in ops:
        opcode = op[0]
        if opcode == "put":
            _, owner, rrtype, ttl, rank, now, refresh, data = op
            cache.put(make_rrset(owner, rrtype, ttl, data), rank, now,
                      refresh=refresh)
        elif opcode == "get":
            _, owner, rrtype, now = op
            cache.get(Name.from_text(owner), rrtype, now)
        elif opcode == "get_stale":
            _, owner, rrtype, now, max_stale = op
            cache.get_stale(Name.from_text(owner), rrtype, now, max_stale)
        elif opcode == "put_negative":
            _, owner, rrtype, now, ttl = op
            cache.put_negative(Name.from_text(owner), rrtype, now, ttl)
        elif opcode == "get_negative":
            _, owner, rrtype, now = op
            cache.get_negative(Name.from_text(owner), rrtype, now)
        elif opcode == "remove":
            _, owner, rrtype = op
            cache.remove(Name.from_text(owner), rrtype)
        elif opcode == "purge":
            _, now, older_than = op
            cache.purge_expired(now, older_than)
        elif opcode == "best_zone":
            _, qname, now, allow_stale = op
            cache.best_zone_for(Name.from_text(qname), now,
                                allow_stale=allow_stale)
        elif opcode == "counts":
            (_, now) = op
            cache.live_entry_count(now)
            cache.live_record_count(now)
            cache.live_zone_count(now)
            cache.total_entry_count()
        elif opcode == "check":
            (_, now) = op
            check_cache_invariants(cache, now)
            cache.audit(now)
        else:
            raise ValueError(f"unknown opcode {opcode!r}")


@dataclass(frozen=True)
class CorpusCase:
    """One regression scenario: a cache shape plus an op sequence."""

    name: str
    rationale: str
    max_entries: int | None
    max_effective_ttl: float | None
    ops: tuple[Op, ...]


#: Each case reproduces one bug this subsystem flushed out; the oracle
#: implements the *fixed* semantics, so reintroducing the bug makes the
#: case diverge on the documented operation.
CORPUS: tuple[CorpusCase, ...] = (
    CorpusCase(
        name="lru-recency-on-refresh",
        rationale=(
            "a refresh/replace store must move the entry to the MRU end; "
            "the old in-place overwrite left it coldest and the next "
            "eviction dropped the entry that was just refreshed"
        ),
        max_entries=2,
        max_effective_ttl=None,
        ops=(
            ("put", "a.test.", RRType.A, 100.0, Rank.AUTH_ANSWER, 0.0,
             False, "10.0.0.1"),
            ("put", "b.test.", RRType.A, 100.0, Rank.AUTH_ANSWER, 1.0,
             False, "10.0.0.2"),
            # Refresh `a`: with the fix it becomes most recently used.
            ("put", "a.test.", RRType.A, 100.0, Rank.AUTH_ANSWER, 2.0,
             True, "10.0.0.1"),
            # Capacity eviction must now pick `b`, not the refreshed `a`.
            ("put", "c.test.", RRType.A, 100.0, Rank.AUTH_ANSWER, 3.0,
             False, "10.0.0.3"),
            ("get", "a.test.", RRType.A, 4.0),
            ("get", "b.test.", RRType.A, 4.0),
            ("check", 4.0),
        ),
    ),
    CorpusCase(
        name="lru-recency-on-dead-overwrite",
        rationale=(
            "overwriting an expired tombstone is a fresh store and must "
            "land at the MRU end on bounded caches"
        ),
        max_entries=2,
        max_effective_ttl=None,
        ops=(
            ("put", "a.test.", RRType.A, 1.0, Rank.AUTH_ANSWER, 0.0,
             False, "10.0.0.1"),
            ("put", "b.test.", RRType.A, 100.0, Rank.AUTH_ANSWER, 0.5,
             False, "10.0.0.2"),
            # `a` expired at t=1; restore it over its own tombstone.
            ("put", "a.test.", RRType.A, 100.0, Rank.AUTH_ANSWER, 2.0,
             False, "10.0.0.1"),
            ("put", "c.test.", RRType.A, 100.0, Rank.AUTH_ANSWER, 3.0,
             False, "10.0.0.3"),
            ("get", "a.test.", RRType.A, 4.0),
            ("check", 4.0),
        ),
    ),
    CorpusCase(
        name="negative-entries-in-totals",
        rationale=(
            "negative entries occupy memory and must show up in "
            "total_entry_count; the old count hid them"
        ),
        max_entries=None,
        max_effective_ttl=None,
        ops=(
            ("put_negative", "ghost.test.", RRType.A, 0.0, 30.0),
            ("counts", 1.0),
            ("get_negative", "ghost.test.", RRType.A, 1.0),
            ("check", 1.0),
        ),
    ),
    CorpusCase(
        name="negative-entries-purged",
        rationale=(
            "lapsed negative entries must be dropped by purge_expired "
            "instead of accumulating forever"
        ),
        max_entries=None,
        max_effective_ttl=None,
        ops=(
            ("put_negative", "ghost.test.", RRType.A, 0.0, 10.0),
            ("put_negative", "fresh.test.", RRType.MX, 0.0, 500.0),
            ("put", "live.test.", RRType.A, 5.0, Rank.AUTH_ANSWER, 0.0,
             False, "10.0.0.1"),
            # At t=100 the first negative and the tombstone are stale.
            ("purge", 100.0, 0.0),
            ("counts", 100.0),
            ("get_negative", "fresh.test.", RRType.MX, 100.0),
            ("check", 100.0),
        ),
    ),
    CorpusCase(
        name="stale-read-boundary",
        rationale=(
            "get_stale's max_stale bound is inclusive: a record exactly "
            "max_stale seconds past expiry is still served, one tick "
            "later it is not — the SWR grace window and the serve-stale "
            "comparator both lean on this edge"
        ),
        max_entries=None,
        max_effective_ttl=None,
        ops=(
            # Expires at t=10; stale reads probe the max_stale boundary.
            ("put", "edge.test.", RRType.A, 10.0, Rank.AUTH_ANSWER, 0.0,
             False, "10.0.0.1"),
            ("get", "edge.test.", RRType.A, 40.0),           # miss (lapsed)
            ("get_stale", "edge.test.", RRType.A, 40.0, 30.0),   # == bound
            ("get_stale", "edge.test.", RRType.A, 40.5, 30.0),   # > bound
            ("get_stale", "edge.test.", RRType.A, 40.0, 0.0),    # zero grace
            ("get_stale", "edge.test.", RRType.A, 10.0, 0.0),    # at expiry
            ("get_stale", "edge.test.", RRType.A, 500.0, None),  # unbounded
            ("check", 40.0),
        ),
    ),
    CorpusCase(
        name="invalidation-evict-shape",
        rationale=(
            "the decoupled update channel evicts a migrated zone's NS "
            "plus the glue it named; stale reads, best_zone and the "
            "counters must all agree the zone is gone"
        ),
        max_entries=None,
        max_effective_ttl=None,
        ops=(
            ("put", "z.test.", RRType.NS, 100.0, Rank.AUTH_AUTHORITY, 0.0,
             False, "ns1.z.test."),
            ("put", "ns1.z.test.", RRType.A, 100.0, Rank.ADDITIONAL, 0.0,
             False, "10.0.0.1"),
            ("best_zone", "host.z.test.", 1.0, False),
            # The invalidation: glue first, then the NS set (the order
            # CachingServer.handle_invalidation performs the eviction).
            ("remove", "ns1.z.test.", RRType.A),
            ("remove", "z.test.", RRType.NS),
            ("get_stale", "z.test.", RRType.NS, 2.0, None),
            ("best_zone", "host.z.test.", 2.0, True),
            ("counts", 2.0),
            ("check", 2.0),
        ),
    ),
    CorpusCase(
        name="negative-entries-removed",
        rationale=(
            "remove() must clear the negative verdict under the same key "
            "(after a delegation change the old NXDOMAIN is obsolete)"
        ),
        max_entries=None,
        max_effective_ttl=None,
        ops=(
            ("put", "host.test.", RRType.A, 100.0, Rank.AUTH_ANSWER, 0.0,
             False, "10.0.0.1"),
            ("put_negative", "host.test.", RRType.MX, 0.0, 1000.0),
            ("remove", "host.test.", RRType.MX),
            ("get_negative", "host.test.", RRType.MX, 1.0),
            ("counts", 1.0),
            ("check", 1.0),
        ),
    ),
)


def run_corpus() -> int:
    """Replay every corpus case; returns the number of cases run."""
    for case in CORPUS:
        cache = DifferentialCache(
            max_effective_ttl=case.max_effective_ttl,
            max_entries=case.max_entries,
        )
        try:
            apply_ops(cache, case.ops)
        except ValidationError as err:
            raise type(err)(f"corpus case {case.name!r}: {err}") from err
    return len(CORPUS)


# -- renewal regression scenarios --------------------------------------------


def _renewal_rig(
    credit: float,
) -> tuple[SimulationEngine, DnsCache, RenewalManager, list[float]]:
    """An engine + cache + manager whose refetch re-offers the same NS.

    The refetch mimics the caching server's ingest of a same-rank,
    same-data response with ``refresh=False``: the put does not restart
    the TTL, so the cached expiry stays inside the renewal lead — the
    exact shape that used to leave the zone timerless with stranded
    credit ("silent drop").
    """
    engine = SimulationEngine()
    cache = DnsCache()
    calls: list[float] = []
    manager = RenewalManager(
        LRUPolicy(credit=credit), engine, cache,
        refetch=lambda zone, now: _refetch_same_data(cache, zone, now, calls),
    )
    return engine, cache, manager, calls


def _refetch_same_data(
    cache: DnsCache, zone: Name, now: float, calls: list[float]
) -> bool:
    calls.append(now)
    ns = make_rrset(str(zone), RRType.NS, 10.0, "ns1." + str(zone))
    cache.put(ns, Rank.AUTH_AUTHORITY, now, refresh=False)
    return True


def run_renewal_corpus() -> int:
    """Scripted renewal scenarios guarding the silent-drop fix.

    Returns the number of scenarios; raises
    :class:`~repro.validation.errors.InvariantViolation` when the
    renewal manager's post-conditions do not hold.
    """
    # Scenario 1: "successful" refetches that never move the expiry
    # forward must keep renewing (immediate rearm) until the credit is
    # spent, then lapse — never silently strand credit.
    engine, cache, manager, calls = _renewal_rig(credit=2.0)
    zone = Name.from_text("slow.test.")
    ns = make_rrset("slow.test.", RRType.NS, 10.0, "ns1.slow.test.")
    result = cache.put(ns, Rank.AUTH_AUTHORITY, engine.now, refresh=False)
    if result.expires_at is None:
        raise InvariantViolation("renewal rig: initial NS store rejected",
                                 check="renewal-scenario")
    manager.note_zone_use(zone, 10.0, engine.now)
    manager.note_irrs_cached(zone, result.expires_at)
    engine.run()
    check_renewal_invariants(manager, cache, now=engine.now + 100.0)
    if len(calls) != 2:
        raise InvariantViolation(
            f"renewal scenario short-ttl-rearm: expected 2 refetches "
            f"(one per credit), saw {len(calls)} — a successful refetch "
            f"that left the expiry inside the lead was dropped",
            check="renewal-silent-drop",
        )
    if manager.lapses != 1:
        raise InvariantViolation(
            f"renewal scenario short-ttl-rearm: expected exactly 1 lapse "
            f"after the credit ran out, saw {manager.lapses}",
            check="renewal-silent-drop",
        )

    # Scenario 2: a timer firing for an evicted zone cleans up quietly —
    # no lapse is counted and no credit is left behind.
    engine, cache, manager, _calls = _renewal_rig(credit=3.0)
    zone = Name.from_text("gone.test.")
    ns = make_rrset("gone.test.", RRType.NS, 10.0, "ns1.gone.test.")
    result = cache.put(ns, Rank.AUTH_AUTHORITY, engine.now, refresh=False)
    manager.note_zone_use(zone, 10.0, engine.now)
    manager.note_irrs_cached(zone, result.expires_at or 10.0)
    cache.remove(zone, RRType.NS)  # capacity eviction, no forget_zone
    engine.run()
    check_renewal_invariants(manager, cache, now=engine.now + 100.0)
    if manager.lapses != 0:
        raise InvariantViolation(
            f"renewal scenario evicted-zone: eviction must not count as "
            f"a lapse, saw lapses={manager.lapses}",
            check="renewal-eviction-lapse",
        )

    # Scenario 3: failed refetches land in renewals_failed so the
    # attempted == succeeded + failed identity is checkable.
    engine = SimulationEngine()
    cache = DnsCache()
    manager = RenewalManager(
        LRUPolicy(credit=3.0), engine, cache,
        refetch=lambda _zone, _now: False,
    )
    zone = Name.from_text("down.test.")
    ns = make_rrset("down.test.", RRType.NS, 10.0, "ns1.down.test.")
    result = cache.put(ns, Rank.AUTH_AUTHORITY, engine.now, refresh=False)
    manager.note_zone_use(zone, 10.0, engine.now)
    manager.note_irrs_cached(zone, result.expires_at or 10.0)
    engine.run()
    check_renewal_invariants(manager, cache, now=engine.now + 100.0)
    if (manager.renewals_attempted, manager.renewals_failed) != (1, 1):
        raise InvariantViolation(
            f"renewal scenario failed-refetch: expected attempted=1 "
            f"failed=1, saw attempted={manager.renewals_attempted} "
            f"failed={manager.renewals_failed}",
            check="renewal-accounting",
        )
    return 3


# -- the fuzzer ---------------------------------------------------------------


@dataclass(frozen=True)
class FuzzReport:
    """What a fuzz run covered."""

    rounds: int
    ops: int
    seed: int


_OWNERS = (
    "z1.test.", "z2.test.", "z3.test.",
    "h1.z1.test.", "h2.z1.test.", "h1.z2.test.",
    "h1.z3.test.", "deep.h1.z1.test.",
)
_ZONE_OWNERS = ("z1.test.", "z2.test.", "z3.test.")
_RRTYPES = (RRType.A, RRType.NS, RRType.AAAA, RRType.MX)
_TTLS = (0.5, 1.0, 5.0, 20.0, 60.0, 300.0)
_RANKS = (Rank.ADDITIONAL, Rank.NON_AUTH_AUTHORITY, Rank.AUTH_AUTHORITY,
          Rank.AUTH_ANSWER)
_A_DATA = ("10.0.0.1", "10.0.0.2")
_NS_DATA = ("ns1.glue.test.", "ns2.glue.test.")
_CAPACITIES = (None, 2, 3, 4, 6, 8)
_TTL_CAPS = (None, None, 50.0, 200.0)


def _random_op(rng: random.Random, now: float) -> Op:
    """One weighted random operation at (or slightly before) ``now``."""
    roll = rng.random()
    owner = rng.choice(_OWNERS)
    rrtype = rng.choice(_RRTYPES)
    # Occasional backwards-clock reads exercise the counters' linear
    # scan fallback (`_sync_counts` returning False).
    read_now = now - rng.uniform(0.0, 5.0) if rng.random() < 0.1 else now
    if roll < 0.35:
        data = rng.choice(_NS_DATA if rrtype == RRType.NS else _A_DATA)
        if rrtype == RRType.NS:
            owner = rng.choice(_ZONE_OWNERS)
        return ("put", owner, rrtype, rng.choice(_TTLS), rng.choice(_RANKS),
                now, rng.random() < 0.3, data)
    if roll < 0.60:
        return ("get", owner, rrtype, read_now)
    if roll < 0.66:
        # 0.0 pins the at-expiry edge; 5.0 sits inside typical TTL+grace
        # windows so the inclusive-boundary comparison is exercised.
        max_stale = rng.choice((None, 0.0, 1.0, 5.0, 30.0))
        return ("get_stale", owner, rrtype, read_now, max_stale)
    if roll < 0.72:
        return ("put_negative", owner, rrtype, now, rng.choice(_TTLS))
    if roll < 0.78:
        return ("get_negative", owner, rrtype, read_now)
    if roll < 0.84:
        return ("remove", owner, rrtype)
    if roll < 0.88:
        return ("purge", now, rng.choice((0.0, 10.0, 120.0)))
    if roll < 0.94:
        return ("best_zone", rng.choice(_OWNERS), read_now,
                rng.random() < 0.3)
    return ("counts", read_now)


def run_fuzz(
    rounds: int = 200,
    seed: int = 0,
    ops_per_round: int = 120,
) -> FuzzReport:
    """Fuzz the differential cache; raises on the first divergence.

    Each round draws a fresh cache shape (capacity, TTL cap) and op
    sequence from ``Random(seed * 1_000_003 + round)``, so a failure
    reported as "round R (seed S)" replays exactly.
    """
    total_ops = 0
    for round_index in range(rounds):
        round_seed = seed * 1_000_003 + round_index
        rng = random.Random(round_seed)
        cache = DifferentialCache(
            max_effective_ttl=rng.choice(_TTL_CAPS),
            max_entries=rng.choice(_CAPACITIES),
        )
        now = 0.0
        try:
            for op_index in range(ops_per_round):
                now += rng.choice((0.0, 0.5, 1.0, 3.0, 10.0, 30.0))
                apply_ops(cache, (_random_op(rng, now),))
                total_ops += 1
                if op_index % 20 == 19:
                    check_cache_invariants(cache, now)
            check_cache_invariants(cache, now)
            cache.audit(now)
        except ValidationError as err:
            raise type(err)(
                f"fuzz round {round_index} (seed {round_seed}): {err}"
            ) from err
    return FuzzReport(rounds=rounds, ops=total_ops, seed=seed)
