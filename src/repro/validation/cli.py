"""The ``repro validate`` subcommand: corpus, fuzzing, differential replay.

Three stages, fail-fast, exit code 1 with the diverging operation named:

1. **Corpus** — the hand-written regression sequences (one per fixed
   bug) plus the scripted renewal scenarios.
2. **Fuzz** — ``--fuzz-rounds`` rounds of seeded random op sequences
   against the differential cache.
3. **Replay** — real TINY traces replayed with the cache shadowed by
   the oracle and the invariants checked at the end.  ``--smoke`` runs
   a single short trace under the headline combination scheme (CI);
   the default runs the full 7-day TRC1 under every scheme family.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.scenarios import Scale, make_scenario
from repro.validation.errors import ValidationError
from repro.validation.fuzz import run_corpus, run_fuzz, run_renewal_corpus
from repro.workload.generator import TraceGenerator, WorkloadConfig

DAY = 86400.0
HOUR = 3600.0


def _replay_plan(smoke: bool) -> list[ResilienceConfig]:
    """The scheme families a differential replay sweeps."""
    bounded = replace(
        ResilienceConfig.refresh(), cache_capacity=256,
        label="refresh+cap256",
    )
    if smoke:
        return [
            ResilienceConfig.combination(),
            bounded,
            ResilienceConfig.swr(),
            ResilienceConfig.decoupled(7.0),
        ]
    return [
        ResilienceConfig.refresh(),
        ResilienceConfig.refresh_renew("a-lfu", 3.0),
        ResilienceConfig.refresh_long_ttl(7.0),
        ResilienceConfig.combination(),
        bounded,
        ResilienceConfig.swr(),
        ResilienceConfig.decoupled(7.0),
    ]


def run_validate(
    fuzz_rounds: int = 200,
    fuzz_seed: int = 0,
    seed: int = 7,
    smoke: bool = False,
    skip_replay: bool = False,
) -> int:
    """Run the whole validation suite; returns the process exit code."""
    try:
        cases = run_corpus()
        scenarios = run_renewal_corpus()
        print(f"corpus: {cases} cache cases + {scenarios} renewal "
              f"scenarios green")
        report = run_fuzz(rounds=fuzz_rounds, seed=fuzz_seed)
        print(f"fuzz: {report.rounds} rounds / {report.ops:,} ops "
              f"(seed {report.seed}) — no divergence")
        if not skip_replay:
            _run_differential_replays(seed=seed, smoke=smoke)
    except ValidationError as error:
        print(f"validation FAILED: {error}", file=sys.stderr)
        return 1
    print("validation: all stages green")
    return 0


def _run_differential_replays(seed: int, smoke: bool) -> None:
    scenario = make_scenario(Scale.TINY, seed=seed)
    if smoke:
        # A short bespoke trace (one day, attack mid-day) keeps the CI
        # smoke leg quick while still crossing an attack window with
        # eviction pressure.
        generator = TraceGenerator(
            scenario.built.catalog,
            WorkloadConfig(duration_days=1.0, queries_per_day=1500.0,
                           num_clients=20),
            seed=seed,
        )
        trace = generator.generate("VAL-SMOKE", stream=101)
        attack = AttackSpec(start=0.5 * DAY, duration=2 * HOUR)
    else:
        trace = scenario.trace("TRC1")
        attack = AttackSpec(start=scenario.attack_start, duration=6 * HOUR)
    for config in _replay_plan(smoke):
        result = run_replay(
            scenario.built, trace, config, attack=attack, seed=seed,
            memory_sample_interval=6 * HOUR, validation=True,
        )
        checked = getattr(result.server.cache, "ops_checked", 0)
        print(f"replay {trace.name}/{config.label}: "
              f"{result.metrics.sr_queries:,} stub queries, "
              f"{checked:,} shadowed cache ops — no divergence")


def add_validate_parser(
    subparsers: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> None:
    """Register ``validate`` on the main CLI's subparser set."""
    validate = subparsers.add_parser(
        "validate",
        help="differential cache validation: corpus, fuzz, shadowed replay",
    )
    validate.add_argument("--fuzz-rounds", type=int, default=200,
                          help="random op-sequence rounds (default 200)")
    validate.add_argument("--fuzz-seed", type=int, default=0,
                          help="base seed for the fuzzer")
    validate.add_argument("--seed", type=int, default=7,
                          help="scenario seed for the differential replay")
    validate.add_argument("--smoke", action="store_true",
                          help="short replay leg (CI): one day, the smoke "
                               "scheme set (combination, bounded, swr, "
                               "decoupled)")
    validate.add_argument("--skip-replay", action="store_true",
                          help="corpus + fuzz only")
    validate.set_defaults(func=_cmd_validate)


def _cmd_validate(args: argparse.Namespace) -> int:
    return run_validate(
        fuzz_rounds=args.fuzz_rounds,
        fuzz_seed=args.fuzz_seed,
        seed=args.seed,
        smoke=args.smoke,
        skip_replay=args.skip_replay,
    )
