"""A deliberately naive reference model of :class:`~repro.core.cache.DnsCache`.

The production cache earns its speed with incremental occupancy
counters, a lazy expiry heap, dict-order LRU tricks and method
rebinding.  Every one of those optimisations is a place where a bug can
hide.  :class:`OracleCache` reimplements the *semantics* with none of
the machinery:

* storage is a plain list scanned linearly on every call;
* recency is the list order itself (index 0 is coldest);
* every occupancy figure is recomputed from scratch, every time;
* there is no observer fast path, no counting switch, no heap.

The code is meant to be checkable by eye against the documented cache
contract.  :class:`~repro.validation.differential.DifferentialCache`
drives this model in lockstep with the real one and flags the first
disagreement.

The oracle intentionally shares the public *types* of the real cache
(:class:`PutResult`, ranks, RRsets) — only the logic is independent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cache import PutResult
from repro.dns.name import Name
from repro.dns.ranking import Rank
from repro.dns.records import RRset
from repro.dns.rrtypes import RRType

Key = tuple[Name, RRType]


@dataclass(slots=True)
class OracleEntry:
    """One cached RRset; field-compatible with ``CacheEntry``."""

    rrset: RRset
    rank: Rank
    stored_at: float
    expires_at: float
    published_ttl: float
    tainted: bool = False

    def is_live(self, now: float) -> bool:
        return now < self.expires_at


class OracleCache:
    """Linear-scan reference implementation of the DnsCache contract."""

    def __init__(
        self,
        max_effective_ttl: float | None = None,
        max_entries: int | None = None,
        harden_ranking: bool = False,
        protect_irrs: bool = False,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_effective_ttl = max_effective_ttl
        self.max_entries = max_entries
        self.harden_ranking = harden_ranking
        self.protect_irrs = protect_irrs
        self.evictions = 0
        # Recency-ordered store: index 0 is the least recently used.
        self._store: list[tuple[Key, OracleEntry]] = []
        # Negative entries as (key, expiry) pairs, insertion-ordered.
        self._negatives: list[tuple[Key, float]] = []

    # -- linear-scan helpers --------------------------------------------------

    def _index_of(self, key: Key) -> int | None:
        for index, (stored_key, _) in enumerate(self._store):
            if stored_key == key:
                return index
        return None

    def _find(self, key: Key) -> OracleEntry | None:
        index = self._index_of(key)
        if index is None:
            return None
        return self._store[index][1]

    def _negative_index_of(self, key: Key) -> int | None:
        for index, (stored_key, _) in enumerate(self._negatives):
            if stored_key == key:
                return index
        return None

    def _delete(self, key: Key) -> None:
        index = self._index_of(key)
        if index is not None:
            del self._store[index]

    def _make_room(self, now: float) -> None:
        if self.max_entries is None or len(self._store) < self.max_entries:
            return
        # Pass 1: drop expired tombstones, coldest first.
        doomed = [
            key for key, entry in list(self._store) if not entry.is_live(now)
        ]
        for key in doomed:
            if len(self._store) < self.max_entries:
                break
            self._delete(key)
            self.evictions += 1
        # Pass 2: evict live entries, LRU (front of the list) first.
        # Under ``protect_irrs``, NS entries are spared while any
        # non-NS entry remains (the flash-crowd admission defense).
        while len(self._store) >= self.max_entries:
            victim = 0
            if self.protect_irrs and self._store[0][0][1] == RRType.NS:
                for index, ((_, rrtype), _entry) in enumerate(self._store):
                    if rrtype != RRType.NS:
                        victim = index
                        break
            del self._store[victim]
            self.evictions += 1

    # -- positive entries -----------------------------------------------------

    def put(
        self,
        rrset: RRset,
        rank: Rank,
        now: float,
        refresh: bool = False,
        taint: bool = False,
    ) -> PutResult:
        key = rrset.key()
        ttl = rrset.ttl
        if self.max_effective_ttl is not None:
            ttl = min(ttl, self.max_effective_ttl)
        new_expiry = now + ttl
        existing = self._find(key)

        if existing is None or not existing.is_live(now):
            replaced_expired = existing is not None
            if existing is None:
                self._make_room(now)
            else:
                # Overwriting a tombstone is a fresh store: the entry
                # moves to the most-recently-used end.
                self._delete(key)
            self._store.append((key, OracleEntry(
                rrset=rrset,
                rank=rank,
                stored_at=now,
                expires_at=new_expiry,
                published_ttl=rrset.ttl,
                tainted=taint,
            )))
            return PutResult(
                stored=True,
                refreshed=False,
                replaced_expired=replaced_expired,
                previous_expiry=existing.expires_at if existing else None,
                previous_published_ttl=(
                    existing.published_ttl if existing else None
                ),
                expires_at=new_expiry,
            )

        if not rank.may_replace(existing.rank):
            return PutResult(False, False, False, existing.expires_at,
                             existing.published_ttl, existing.expires_at)

        same_data = existing.rrset.same_data(rrset)
        if self.harden_ranking and not same_data and rank == existing.rank:
            # Hardened ingestion: equal rank may not replace different
            # live data (mirrors the real cache's poisoning defense).
            return PutResult(False, False, False, existing.expires_at,
                             existing.published_ttl, existing.expires_at)
        if same_data and rank == existing.rank and not refresh:
            # Vanilla cache: an identical copy does not restart the TTL.
            return PutResult(False, False, False, existing.expires_at,
                             existing.published_ttl, existing.expires_at)

        previous_expiry = existing.expires_at
        previous_ttl = existing.published_ttl
        self._delete(key)
        self._store.append((key, OracleEntry(
            rrset=rrset,
            rank=rank,
            stored_at=now,
            expires_at=new_expiry,
            published_ttl=rrset.ttl,
            tainted=taint,
        )))
        return PutResult(
            stored=True,
            refreshed=same_data,
            replaced_expired=False,
            previous_expiry=previous_expiry,
            previous_published_ttl=previous_ttl,
            expires_at=new_expiry,
        )

    def get(self, name: Name, rrtype: RRType, now: float) -> RRset | None:
        key = (name, rrtype)
        entry = self._find(key)
        if entry is None or not entry.is_live(now):
            return None
        if self.max_entries is not None:
            # A hit refreshes recency on bounded caches only, exactly as
            # the real cache only `_touch`es when eviction exists.
            self._delete(key)
            self._store.append((key, entry))
        return entry.rrset

    def get_stale(
        self,
        name: Name,
        rrtype: RRType,
        now: float,
        max_stale: float | None = None,
    ) -> RRset | None:
        entry = self._find((name, rrtype))
        if entry is None:
            return None
        if max_stale is not None and now - entry.expires_at > max_stale:
            return None
        return entry.rrset

    def entry(self, name: Name, rrtype: RRType) -> OracleEntry | None:
        return self._find((name, rrtype))

    def expires_at(self, name: Name, rrtype: RRType, now: float) -> float | None:
        entry = self._find((name, rrtype))
        if entry is None or not entry.is_live(now):
            return None
        return entry.expires_at

    def remove(self, name: Name, rrtype: RRType) -> bool:
        key = (name, rrtype)
        removed_negative = False
        negative_index = self._negative_index_of(key)
        if negative_index is not None:
            del self._negatives[negative_index]
            removed_negative = True
        index = self._index_of(key)
        if index is None:
            return removed_negative
        del self._store[index]
        return True

    # -- negative entries -----------------------------------------------------

    def put_negative(self, name: Name, rrtype: RRType, now: float, ttl: float) -> None:
        key = (name, rrtype)
        index = self._negative_index_of(key)
        if index is None:
            self._negatives.append((key, now + ttl))
        else:
            self._negatives[index] = (key, now + ttl)

    def get_negative(self, name: Name, rrtype: RRType, now: float) -> bool:
        index = self._negative_index_of((name, rrtype))
        if index is None:
            return False
        return now < self._negatives[index][1]

    # -- zone-oriented views --------------------------------------------------

    def zone_ns_expiry(self, zone: Name, now: float) -> float | None:
        return self.expires_at(zone, RRType.NS, now)

    def best_zone_for(
        self,
        qname: Name,
        now: float,
        exclude: frozenset[Name] | set[Name] = frozenset(),
        allow_stale: bool = False,
    ) -> Name | None:
        for ancestor in qname.ancestors():
            if ancestor.is_root:
                return None
            if ancestor in exclude:
                continue
            entry = self._find((ancestor, RRType.NS))
            if entry is None:
                continue
            if entry.is_live(now) or allow_stale:
                return ancestor
        return None

    # -- occupancy ------------------------------------------------------------

    def live_entry_count(self, now: float) -> int:
        return sum(1 for _, entry in self._store if entry.is_live(now))

    def live_record_count(self, now: float) -> int:
        return sum(
            len(entry.rrset)
            for _, entry in self._store
            if entry.is_live(now)
        )

    def live_zone_count(self, now: float) -> int:
        return sum(
            1
            for (_, rrtype), entry in self._store
            if rrtype == RRType.NS and entry.is_live(now)
        )

    def total_entry_count(self) -> int:
        return len(self._store) + len(self._negatives)

    def purge_expired(self, now: float, older_than: float = 0.0) -> int:
        doomed = [
            key
            for key, entry in list(self._store)
            if entry.expires_at + older_than <= now
        ]
        for key in doomed:
            self._delete(key)
        doomed_negative = [
            key
            for key, expiry in list(self._negatives)
            if expiry + older_than <= now
        ]
        for key in doomed_negative:
            index = self._negative_index_of(key)
            if index is not None:
                del self._negatives[index]
        return len(doomed) + len(doomed_negative)

    # -- full-state census (for audits) ---------------------------------------

    def snapshot_keys(self) -> list[Key]:
        """Every positive key (live and tombstone), unsorted."""
        return [key for key, _ in self._store]

    def snapshot_negatives(self) -> dict[Key, float]:
        """Every negative entry's expiry, keyed."""
        return dict(self._negatives)
