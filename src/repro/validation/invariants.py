"""Structural invariant checks for the cache and the renewal manager.

These are white-box checks: they read private state (`_entries`, the
policy's credit table) on purpose, because the whole point is to catch
the bookkeeping drifting away from the ground truth.  Each check raises
:class:`~repro.validation.errors.InvariantViolation` naming the failed
invariant; a clean pass returns None.

Invariants checked:

* ``cache-live-counts`` — the incremental occupancy counters agree with
  a fresh linear census of the store.
* ``cache-capacity`` — a bounded cache never holds more than
  ``max_entries`` entries.
* ``cache-entry-sanity`` — every entry's lifetime is non-negative and no
  longer than ``min(published_ttl, max_effective_ttl)``.
* ``renewal-armed-live`` — every armed renewal timer belongs to a zone
  whose NS set is still live (a timer on a dead zone means a refetch
  result was silently dropped).
* ``renewal-credit-sign`` — no zone's credit balance is negative.
* ``renewal-accounting`` — ``renewals_attempted`` equals
  ``renewals_succeeded + renewals_failed``.
* ``renewal-orphan-credit`` — every zone holding credit either has an
  armed timer or a live NS entry.  This is the signature the
  silent-drop bug leaves behind: a "successful" refetch whose records
  expired inside the renewal lead used to strand the zone's credit with
  no timer and no data.  Suppressed when ``allow_stale_credit`` is set,
  because the serve-stale comparator legitimately tops up credit for
  zones contacted via lapsed NS sets.
* ``cache-taint-accounting`` — the poison registry and the per-entry
  taint flags describe the same key set, and each registered rank
  matches what the entry actually stores.
* ``cache-taint-rank`` — a poisoned entry never *silently* outranks the
  authoritative data it displaced: its rank must have been allowed to
  replace the displaced rank under RFC 2181, and under hardened
  ingestion it must be strictly higher (equal-rank displacement is
  exactly what ``harden_ranking`` forbids).
"""

from __future__ import annotations

from repro.core.cache import DnsCache, split_key
from repro.core.renewal import RenewalManager
from repro.dns.rrtypes import RRType
from repro.validation.errors import InvariantViolation

#: Slack for float lifetime arithmetic (ttl additions are exact in the
#: simulator, but keep a margin against representation noise).
_LIFETIME_SLACK = 1e-9


def check_cache_invariants(cache: DnsCache, now: float) -> None:
    """Verify the cache's counters and per-entry bookkeeping at ``now``."""
    entries = cache._entries  # white-box census by design
    census_entries = 0
    census_records = 0
    census_zones = 0
    for key, entry in entries.items():
        name, rrtype = split_key(key)
        if entry.published_ttl < 0:
            raise InvariantViolation(
                f"{name}/{rrtype.name}: negative published TTL "
                f"{entry.published_ttl}",
                check="cache-entry-sanity",
            )
        lifetime = entry.expires_at - entry.stored_at
        limit = entry.published_ttl
        if cache.max_effective_ttl is not None:
            limit = min(limit, cache.max_effective_ttl)
        if lifetime < 0 or lifetime > limit + _LIFETIME_SLACK:
            raise InvariantViolation(
                f"{name}/{rrtype.name}: lifetime {lifetime:g}s outside "
                f"[0, {limit:g}] (stored_at={entry.stored_at:g}, "
                f"expires_at={entry.expires_at:g})",
                check="cache-entry-sanity",
            )
        if entry.is_live(now):
            census_entries += 1
            census_records += len(entry.rrset)
            if rrtype == RRType.NS:
                census_zones += 1
    if cache.max_entries is not None and len(entries) > cache.max_entries:
        raise InvariantViolation(
            f"{len(entries)} entries stored with max_entries="
            f"{cache.max_entries}",
            check="cache-capacity",
        )
    counted = (
        cache.live_entry_count(now),
        cache.live_record_count(now),
        cache.live_zone_count(now),
    )
    census = (census_entries, census_records, census_zones)
    if counted != census:
        raise InvariantViolation(
            f"incremental live counts {counted} != census {census} "
            f"(entries/records/zones) at now={now:g}",
            check="cache-live-counts",
        )
    _check_taint_invariants(cache)


def _check_taint_invariants(cache: DnsCache) -> None:
    """The poison-marker checks (part of ``check_cache_invariants``)."""
    entries = cache._entries  # white-box census by design
    registry = cache.tainted_entries()
    flagged = {key for key, entry in entries.items() if entry.tainted}
    if flagged != registry.keys():
        only_flag = [split_key(k) for k in sorted(flagged - registry.keys())]
        only_reg = [split_key(k) for k in sorted(registry.keys() - flagged)]
        raise InvariantViolation(
            f"taint registry and entry flags disagree: flagged-only="
            f"{only_flag}, registry-only={only_reg}",
            check="cache-taint-accounting",
        )
    for key, (taint_time, rank, displaced) in registry.items():
        name, rrtype = split_key(key)
        entry = entries[key]
        if entry.rank != rank:
            raise InvariantViolation(
                f"{name}/{rrtype.name}: tainted entry stores rank "
                f"{entry.rank.name} but was registered at {rank.name}",
                check="cache-taint-accounting",
            )
        if entry.stored_at < taint_time:
            raise InvariantViolation(
                f"{name}/{rrtype.name}: tainted entry stored at "
                f"{entry.stored_at:g}, before its taint time {taint_time:g}",
                check="cache-taint-accounting",
            )
        if displaced is None:
            continue
        if not rank.may_replace(displaced):
            raise InvariantViolation(
                f"{name}/{rrtype.name}: poisoned entry of rank {rank.name} "
                f"silently displaced live {displaced.name} data, which RFC "
                f"2181 ranking forbids",
                check="cache-taint-rank",
            )
        if cache.harden_ranking and rank == displaced:
            raise InvariantViolation(
                f"{name}/{rrtype.name}: poisoned entry displaced live "
                f"{displaced.name} data at equal rank despite hardened "
                f"ingestion",
                check="cache-taint-rank",
            )


def check_renewal_invariants(
    manager: RenewalManager,
    cache: DnsCache,
    now: float,
    allow_stale_credit: bool = False,
) -> None:
    """Verify the renewal manager's timers, credits and accounting."""
    armed = manager.armed_zones()
    for zone in armed:
        if cache.zone_ns_expiry(zone, now) is None:
            raise InvariantViolation(
                f"renewal timer armed for {zone} but its NS set is not "
                f"live at now={now:g}",
                check="renewal-armed-live",
            )
    balances = manager.policy.balances()
    armed_set = frozenset(armed)
    for zone in sorted(balances):
        credit = balances[zone]
        if credit < 0:
            raise InvariantViolation(
                f"{zone} has negative renewal credit {credit:g}",
                check="renewal-credit-sign",
            )
        if (
            credit > 0
            and not allow_stale_credit
            and zone not in armed_set
            and cache.zone_ns_expiry(zone, now) is None
        ):
            raise InvariantViolation(
                f"{zone} holds {credit:g} renewal credit but has neither "
                f"an armed timer nor a live NS set at now={now:g} "
                f"(silently dropped refetch?)",
                check="renewal-orphan-credit",
            )
    expected = manager.renewals_succeeded + manager.renewals_failed
    if manager.renewals_attempted != expected:
        raise InvariantViolation(
            f"renewals_attempted={manager.renewals_attempted} != "
            f"succeeded({manager.renewals_succeeded}) + "
            f"failed({manager.renewals_failed})",
            check="renewal-accounting",
        )
