"""Typed failures raised by the validation subsystem.

Both exceptions accept a ready-made message first so wrappers (the
fuzzer, the CLI) can re-raise the *same type* with extra context —
``raise type(err)(f"round 17: {err}") from err`` — without losing the
error class the caller dispatches on.
"""

from __future__ import annotations


class ValidationError(Exception):
    """Base for every failure the validation layer can report."""


class DivergenceError(ValidationError):
    """The optimised cache and the oracle disagreed on an operation.

    Attributes:
        op: human-readable description of the diverging operation.
        op_index: 1-based index of the operation in the driven sequence.
        primary: what the optimised :class:`~repro.core.cache.DnsCache`
            returned/observed.
        oracle: what the naive oracle returned/observed.
    """

    def __init__(
        self,
        message: str,
        *,
        op: str | None = None,
        op_index: int | None = None,
        primary: object = None,
        oracle: object = None,
    ) -> None:
        super().__init__(message)
        self.op = op
        self.op_index = op_index
        self.primary = primary
        self.oracle = oracle


class InvariantViolation(ValidationError):
    """A structural invariant of the cache or renewal manager is broken.

    Attributes:
        check: short identifier of the failed invariant (e.g.
            ``"renewal-accounting"``).
    """

    def __init__(self, message: str, *, check: str | None = None) -> None:
        super().__init__(message)
        self.check = check
