"""Differential validation: oracle cache, invariants, fuzzing (DESIGN.md §12).

The production :class:`~repro.core.cache.DnsCache` is heavily optimised;
this package keeps it honest.  :class:`OracleCache` is a naive,
obviously-correct re-implementation of the cache contract;
:class:`DifferentialCache` drives both in lockstep and raises
:class:`DivergenceError` on the first disagreement; the invariant
checkers verify structural properties of the cache and the renewal
manager; :mod:`repro.validation.fuzz` generates seeded random op
sequences and replays the regression corpus.

Entry points: ``repro validate`` (CLI), ``validation=True`` on
:func:`repro.experiments.harness.run_replay` /
:class:`repro.experiments.parallel.ReplaySpec`.
"""

from repro.validation.differential import DifferentialCache
from repro.validation.errors import (
    DivergenceError,
    InvariantViolation,
    ValidationError,
)
from repro.validation.fuzz import (
    FuzzReport,
    apply_ops,
    run_corpus,
    run_fuzz,
    run_renewal_corpus,
)
from repro.validation.invariants import (
    check_cache_invariants,
    check_renewal_invariants,
)
from repro.validation.oracle import OracleCache, OracleEntry

__all__ = [
    "DifferentialCache",
    "DivergenceError",
    "FuzzReport",
    "InvariantViolation",
    "OracleCache",
    "OracleEntry",
    "ValidationError",
    "apply_ops",
    "check_cache_invariants",
    "check_renewal_invariants",
    "run_corpus",
    "run_fuzz",
    "run_renewal_corpus",
]
