"""Lockstep differential driver: optimised cache vs naive oracle.

:class:`DifferentialCache` *is* a :class:`~repro.core.cache.DnsCache`
(it subclasses it, so the production hot paths and state are the ones
actually exercised) that additionally owns an
:class:`~repro.validation.oracle.OracleCache` and mirrors every public
operation into it.  After each call the two results — and, on mutating
operations, the occupancy figures — are compared; the first
disagreement raises :class:`~repro.validation.errors.DivergenceError`
naming the operation.

Plugging it into a real replay is a one-line swap (the
``validation=True`` knob on :class:`~repro.core.caching_server
.CachingServer` and on :class:`~repro.experiments.parallel.ReplaySpec`),
which turns a whole simulated week of traffic into a differential test.

Implementation notes:

* Overridden methods call ``DnsCache.method(self, ...)`` explicitly, so
  a test can monkeypatch a method on ``DnsCache`` to re-inject a fixed
  bug and prove the differential layer catches it.
* ``attach_observer`` deliberately does **not** rebind ``self.get`` the
  way the base class does — the rebound method would bypass the
  comparison.  The differential ``get`` dispatches to the observed
  variant itself when a bus is attached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.cache import CacheEntry, DnsCache, PutResult, cache_key, split_key
from repro.dns.name import Name
from repro.dns.ranking import Rank
from repro.dns.records import RRset
from repro.dns.rrtypes import RRType
from repro.validation.errors import DivergenceError
from repro.validation.oracle import OracleCache, OracleEntry

if TYPE_CHECKING:
    from repro.obs.events import EventBus


def _entry_fields(
    entry: "CacheEntry | OracleEntry | None",
) -> tuple[RRset, Rank, float, float, float, bool] | None:
    if entry is None:
        return None
    return (
        entry.rrset,
        entry.rank,
        entry.stored_at,
        entry.expires_at,
        entry.published_ttl,
        entry.tainted,
    )


class DifferentialCache(DnsCache):
    """A DnsCache that shadows every operation into an OracleCache."""

    def __init__(
        self,
        max_effective_ttl: float | None = None,
        max_entries: int | None = None,
        harden_ranking: bool = False,
        protect_irrs: bool = False,
    ) -> None:
        super().__init__(
            max_effective_ttl, max_entries,
            harden_ranking=harden_ranking, protect_irrs=protect_irrs,
        )
        self._oracle = OracleCache(
            max_effective_ttl=max_effective_ttl, max_entries=max_entries,
            harden_ranking=harden_ranking, protect_irrs=protect_irrs,
        )
        self.op_index = 0
        self.ops_checked = 0

    @property
    def oracle(self) -> OracleCache:
        return self._oracle

    # -- comparison plumbing --------------------------------------------------

    def _diverged(self, op: str, primary: object, oracle: object) -> None:
        raise DivergenceError(
            f"op #{self.op_index} {op}: primary={primary!r} oracle={oracle!r}",
            op=op,
            op_index=self.op_index,
            primary=primary,
            oracle=oracle,
        )

    def _compare(self, op: str, primary: object, oracle: object) -> None:
        self.ops_checked += 1
        if primary != oracle:
            self._diverged(op, primary, oracle)

    def _compare_occupancy(self, op: str, now: float | None) -> None:
        oracle = self._oracle
        primary_total = DnsCache.total_entry_count(self)
        self._compare(f"{op} [total_entry_count]",
                      primary_total, oracle.total_entry_count())
        self._compare(f"{op} [evictions]", self.evictions, oracle.evictions)
        if now is None:
            return
        self._compare(f"{op} [live_entry_count]",
                      DnsCache.live_entry_count(self, now),
                      oracle.live_entry_count(now))
        self._compare(f"{op} [live_record_count]",
                      DnsCache.live_record_count(self, now),
                      oracle.live_record_count(now))
        self._compare(f"{op} [live_zone_count]",
                      DnsCache.live_zone_count(self, now),
                      oracle.live_zone_count(now))

    # -- observer handling ----------------------------------------------------

    def attach_observer(self, bus: "EventBus") -> None:
        # No method rebinding here (unlike the base class): the rebound
        # fast path would skip the oracle comparison entirely.
        self._obs = bus

    # -- shadowed operations --------------------------------------------------

    def put(
        self,
        rrset: RRset,
        rank: Rank,
        now: float,
        refresh: bool = False,
        taint: bool = False,
    ) -> PutResult:
        self.op_index += 1
        op = (f"put({rrset.name}/{rrset.rrtype.name}, rank={rank.name}, "
              f"now={now:g}, refresh={refresh}, taint={taint})")
        primary = DnsCache.put(self, rrset, rank, now, refresh, taint)
        oracle = self._oracle.put(rrset, rank, now, refresh=refresh,
                                  taint=taint)
        self._compare(op, primary, oracle)
        self._compare_occupancy(op, now)
        return primary

    def get(self, name: Name, rrtype: RRType, now: float) -> RRset | None:
        self.op_index += 1
        if self._obs is not None:
            primary = DnsCache._observed_get(self, name, rrtype, now)
        else:
            primary = DnsCache.get(self, name, rrtype, now)
        oracle = self._oracle.get(name, rrtype, now)
        self._compare(f"get({name}/{rrtype.name}, now={now:g})",
                      primary, oracle)
        return primary

    def get_stale(
        self,
        name: Name,
        rrtype: RRType,
        now: float,
        max_stale: float | None = None,
    ) -> RRset | None:
        self.op_index += 1
        primary = DnsCache.get_stale(self, name, rrtype, now, max_stale)
        oracle = self._oracle.get_stale(name, rrtype, now, max_stale)
        self._compare(
            f"get_stale({name}/{rrtype.name}, now={now:g}, "
            f"max_stale={max_stale})",
            primary, oracle,
        )
        return primary

    def entry(self, name: Name, rrtype: RRType) -> CacheEntry | None:
        self.op_index += 1
        primary = DnsCache.entry(self, name, rrtype)
        oracle = self._oracle.entry(name, rrtype)
        self._compare(f"entry({name}/{rrtype.name})",
                      _entry_fields(primary), _entry_fields(oracle))
        return primary

    def expires_at(self, name: Name, rrtype: RRType, now: float) -> float | None:
        self.op_index += 1
        primary = DnsCache.expires_at(self, name, rrtype, now)
        oracle = self._oracle.expires_at(name, rrtype, now)
        self._compare(f"expires_at({name}/{rrtype.name}, now={now:g})",
                      primary, oracle)
        return primary

    def remove(self, name: Name, rrtype: RRType) -> bool:
        self.op_index += 1
        op = f"remove({name}/{rrtype.name})"
        primary = DnsCache.remove(self, name, rrtype)
        oracle = self._oracle.remove(name, rrtype)
        self._compare(op, primary, oracle)
        self._compare_occupancy(op, None)
        return primary

    def put_negative(self, name: Name, rrtype: RRType, now: float, ttl: float) -> None:
        self.op_index += 1
        op = f"put_negative({name}/{rrtype.name}, now={now:g}, ttl={ttl:g})"
        DnsCache.put_negative(self, name, rrtype, now, ttl)
        self._oracle.put_negative(name, rrtype, now, ttl)
        self._compare_occupancy(op, now)

    def get_negative(self, name: Name, rrtype: RRType, now: float) -> bool:
        self.op_index += 1
        primary = DnsCache.get_negative(self, name, rrtype, now)
        oracle = self._oracle.get_negative(name, rrtype, now)
        self._compare(f"get_negative({name}/{rrtype.name}, now={now:g})",
                      primary, oracle)
        return primary

    def best_zone_for(
        self,
        qname: Name,
        now: float,
        exclude: frozenset[Name] | set[Name] = frozenset(),
        allow_stale: bool = False,
    ) -> Name | None:
        self.op_index += 1
        primary = DnsCache.best_zone_for(self, qname, now, exclude, allow_stale)
        oracle = self._oracle.best_zone_for(qname, now, exclude, allow_stale)
        self._compare(
            f"best_zone_for({qname}, now={now:g}, allow_stale={allow_stale})",
            primary, oracle,
        )
        return primary

    def live_entry_count(self, now: float) -> int:
        self.op_index += 1
        primary = DnsCache.live_entry_count(self, now)
        self._compare(f"live_entry_count(now={now:g})",
                      primary, self._oracle.live_entry_count(now))
        return primary

    def live_record_count(self, now: float) -> int:
        self.op_index += 1
        primary = DnsCache.live_record_count(self, now)
        self._compare(f"live_record_count(now={now:g})",
                      primary, self._oracle.live_record_count(now))
        return primary

    def live_zone_count(self, now: float) -> int:
        self.op_index += 1
        primary = DnsCache.live_zone_count(self, now)
        self._compare(f"live_zone_count(now={now:g})",
                      primary, self._oracle.live_zone_count(now))
        return primary

    def total_entry_count(self) -> int:
        self.op_index += 1
        primary = DnsCache.total_entry_count(self)
        self._compare("total_entry_count()",
                      primary, self._oracle.total_entry_count())
        return primary

    def purge_expired(self, now: float, older_than: float = 0.0) -> int:
        self.op_index += 1
        op = f"purge_expired(now={now:g}, older_than={older_than:g})"
        primary = DnsCache.purge_expired(self, now, older_than)
        oracle = self._oracle.purge_expired(now, older_than)
        self._compare(op, primary, oracle)
        self._compare_occupancy(op, now)
        return primary

    # -- full-state audit -----------------------------------------------------

    def audit(self, now: float) -> None:
        """Census both models completely; raise on *any* state mismatch.

        Called at the end of a fuzz round or replay; unlike the per-op
        comparisons this also checks keys that no operation touched
        recently.
        """
        oracle = self._oracle
        # The primary stores packed int keys (see `cache_key`); decode to
        # (Name, RRType) pairs so the comparison speaks the oracle's
        # vocabulary — a packing bug then shows up as a key mismatch.
        primary_keys = sorted(split_key(k) for k in self._entries)
        oracle_keys = sorted(oracle.snapshot_keys())
        if primary_keys != oracle_keys:
            only_primary = [k for k in primary_keys if k not in oracle_keys]
            only_oracle = [k for k in oracle_keys if k not in primary_keys]
            self._diverged(
                "audit [stored keys]",
                f"extra={only_primary}", f"extra={only_oracle}",
            )
        for key in primary_keys:
            self._compare(
                f"audit [entry {key[0]}/{key[1].name}]",
                _entry_fields(self._entries[cache_key(*key)]),
                _entry_fields(oracle.entry(*key)),
            )
        self._compare(
            "audit [negative entries]",
            {split_key(k): expiry for k, expiry in self._negative.items()},
            oracle.snapshot_negatives(),
        )
        self._compare_occupancy("audit", now)
