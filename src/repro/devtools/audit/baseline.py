"""Accepted-findings baseline for ``repro audit``.

A baseline entry is a **fingerprint** of a finding — rule, path and
message, deliberately *not* the line number, so unrelated edits that
shift code do not churn the file — plus a required human justification.
The committed ``audit-baseline.json`` is the reviewed list of findings
the team has decided to live with; ``--update-baseline`` rewrites it
from the current run, preserving justifications for findings that are
still present and dropping entries whose findings no longer occur
(*expired* entries, which ``--strict`` treats as an error so the file
cannot rot).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.devtools.checks import Violation

#: Version tag of the baseline file format.
BASELINE_SCHEMA = "repro-audit-baseline/1"

_DEFAULT_JUSTIFICATION = "TODO: justify or fix"


def fingerprint(violation: Violation) -> str:
    """A stable, line-independent identity for one finding."""
    payload = f"{violation.rule}|{violation.path}|{violation.message}"
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=12).hexdigest()


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding and why it is accepted."""

    fingerprint: str
    rule: str
    path: str
    message: str
    justification: str


@dataclass
class Baseline:
    """The set of accepted findings, loaded from / saved to JSON."""

    entries: dict[str, BaselineEntry]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries={})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline.

        Raises:
            ValueError: on an unrecognised schema tag — silently
                ignoring an incompatible file would un-suppress (or
                worse, keep suppressing) findings without review.
        """
        if not path.exists():
            return cls.empty()
        data = json.loads(path.read_text(encoding="utf-8"))
        schema = data.get("schema")
        if schema != BASELINE_SCHEMA:
            raise ValueError(
                f"{path}: unsupported baseline schema {schema!r} "
                f"(expected {BASELINE_SCHEMA})"
            )
        entries = {}
        for raw in data.get("entries", []):
            entry = BaselineEntry(
                fingerprint=raw["fingerprint"],
                rule=raw["rule"],
                path=raw["path"],
                message=raw["message"],
                justification=raw.get(
                    "justification", _DEFAULT_JUSTIFICATION
                ),
            )
            entries[entry.fingerprint] = entry
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "schema": BASELINE_SCHEMA,
            "entries": [
                {
                    "fingerprint": entry.fingerprint,
                    "rule": entry.rule,
                    "path": entry.path,
                    "message": entry.message,
                    "justification": entry.justification,
                }
                for entry in sorted(
                    self.entries.values(),
                    key=lambda e: (e.path, e.rule, e.message),
                )
            ],
        }
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def __contains__(self, violation: Violation) -> bool:
        return fingerprint(violation) in self.entries

    def split(
        self, violations: tuple[Violation, ...]
    ) -> tuple[tuple[Violation, ...], tuple[Violation, ...], tuple[BaselineEntry, ...]]:
        """``(new, accepted, expired)`` for one run's findings.

        *new* findings are absent from the baseline; *accepted* ones
        match an entry; *expired* entries match no current finding and
        should be removed (``--strict`` fails on them).
        """
        current = {fingerprint(v) for v in violations}
        new = tuple(v for v in violations if fingerprint(v) not in self.entries)
        accepted = tuple(
            v for v in violations if fingerprint(v) in self.entries
        )
        expired = tuple(
            entry
            for key, entry in sorted(self.entries.items())
            if key not in current
        )
        return new, accepted, expired

    def updated_from(
        self, violations: tuple[Violation, ...]
    ) -> "Baseline":
        """A baseline accepting exactly ``violations``.

        Justifications of still-present entries are preserved; new
        entries get a TODO placeholder that review is expected to fill
        in.
        """
        entries: dict[str, BaselineEntry] = {}
        for violation in violations:
            key = fingerprint(violation)
            existing = self.entries.get(key)
            entries[key] = BaselineEntry(
                fingerprint=key,
                rule=violation.rule,
                path=violation.path,
                message=violation.message,
                justification=(
                    existing.justification
                    if existing is not None
                    else _DEFAULT_JUSTIFICATION
                ),
            )
        return Baseline(entries=entries)
