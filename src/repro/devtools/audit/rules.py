"""The whole-program rule family REP010–REP013.

Each rule sees an :class:`AuditContext` — symbol table, call graph and
mutation closure over the entire tree — and yields the same
:class:`~repro.devtools.checks.Violation` records as the per-file lint,
so suppression (``# repro: ignore[REP010]``), JSON output and baselines
work identically for both layers.

REP010  memo-invalidation completeness: every direct mutator of a
        declared memo's dependency fields must transitively clear the
        memo's storage field or reach its ``@invalidates`` invalidator.
REP011  post-publish mutation: after a ``# repro: publishes`` call, the
        caller must not reach code that mutates copy-on-write
        ``# repro: published`` state (memo storage fields exempt).
REP012  pickle-safety: every field type transitively reachable from a
        ``# repro: pickled-boundary`` class must be picklable across
        the worker boundary.
REP013  determinism taint: no function in ``repro.simulation`` /
        ``repro.core`` may transitively reach an unsanctioned
        wall-clock or global-randomness call.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.devtools.audit.callgraph import CallGraph
from repro.devtools.audit.memos import MemoDecl
from repro.devtools.audit.mutation import MutationAnalysis, Write
from repro.devtools.audit.project import ClassInfo, ProjectIndex, TypeDesc
from repro.devtools.checks import ImportMap, Violation
from repro.devtools.rules.randomness import (
    _ALWAYS_BANNED,
    _SEEDED_CONSTRUCTORS,
    _is_module_level_random,
)
from repro.devtools.rules.wallclock import _BANNED as _WALLCLOCK_BANNED

#: Annotation identifiers that can never cross the pickled worker
#: boundary.  Conservative by construction: only names whose presence in
#: a *spec/summary field annotation* is always wrong.
UNPICKLABLE_NAMES = frozenset({
    "Callable", "Generator", "Lock", "RLock", "Thread", "Event",
    "Condition", "Semaphore", "BoundedSemaphore", "Barrier", "socket",
    "IO", "TextIO", "BinaryIO", "TextIOBase", "BufferedReader",
    "BufferedWriter", "memoryview", "Future", "ProcessPoolExecutor",
    "ThreadPoolExecutor", "weakref", "ref",
})

#: Module prefixes whose functions are REP013 determinism sinks.
DETERMINISM_SINK_PREFIXES = ("repro.simulation", "repro.core")


@dataclass
class AuditContext:
    """Everything a whole-program rule may consult."""

    index: ProjectIndex
    graph: CallGraph
    mutation: MutationAnalysis

    @classmethod
    def build(cls, roots: Sequence[Path]) -> "AuditContext":
        index = ProjectIndex.build(roots)
        graph = CallGraph(index)
        return cls(index=index, graph=graph,
                   mutation=MutationAnalysis(graph))

    def display_path(self, qualname: str) -> str:
        source = self.index.source_for(qualname)
        return source.display_path if source is not None else qualname


class AuditRule:
    """Base class for one whole-program rule."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: AuditContext) -> Iterator[Violation]:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# REP010 — memo-invalidation completeness
# ---------------------------------------------------------------------------


class MemoInvalidationRule(AuditRule):
    rule_id = "REP010"
    title = "memo mutators must invalidate"
    rationale = (
        "a cached derived view served after its inputs changed is a "
        "silent correctness bug; every mutator of a memo's dependency "
        "fields must clear the cache or reach the declared invalidator"
    )

    def check(self, ctx: AuditContext) -> Iterator[Violation]:
        writes_by_key = _writes_by_key(ctx)
        for cls_qual in sorted(ctx.index.classes):
            cls = ctx.index.classes[cls_qual]
            for memo in cls.memos:
                yield from self._check_memo(ctx, cls, memo, writes_by_key)

    def _check_memo(
        self,
        ctx: AuditContext,
        cls: ClassInfo,
        memo: MemoDecl,
        writes_by_key: dict[tuple[str, str], list[tuple[str, Write]]],
    ) -> Iterator[Violation]:
        path = ctx.display_path(cls.qualname)
        for name in (memo.field, *memo.depends):
            if not _has_field(cls, name, ctx.index):
                yield Violation(
                    rule=self.rule_id, path=path, line=memo.lineno,
                    message=(
                        f"memo '{memo.name}' on {cls.name} names unknown "
                        f"field {name!r}"
                    ),
                    fix_hint=(
                        "fix the field name in the # repro: memo(...) "
                        "declaration"
                    ),
                )
                return
        invalidator_qual: str | None = None
        if memo.has_invalidator:
            invalidator_qual = cls.method(memo.invalidator, ctx.index)
            if invalidator_qual is None:
                yield Violation(
                    rule=self.rule_id, path=path, line=memo.lineno,
                    message=(
                        f"memo '{memo.name}' on {cls.name} declares "
                        f"invalidator {memo.invalidator!r} but the class "
                        f"has no such method"
                    ),
                    fix_hint="point invalidator= at an existing method",
                )
                return
            invalidator = ctx.index.functions[invalidator_qual]
            if memo.name not in invalidator.invalidates:
                yield Violation(
                    rule=self.rule_id, path=path,
                    line=invalidator.node.lineno,
                    message=(
                        f"{invalidator_qual} is the declared invalidator "
                        f"of memo '{memo.name}' but does not carry "
                        f"@invalidates({memo.name!r})"
                    ),
                    fix_hint=(
                        f"decorate it with @invalidates({memo.name!r}) "
                        f"so renames cannot detach the pair"
                    ),
                )
            if not ctx.mutation.mutates(
                invalidator_qual, cls.qualname, memo.field
            ):
                yield Violation(
                    rule=self.rule_id, path=path,
                    line=invalidator.node.lineno,
                    message=(
                        f"{invalidator_qual} is the declared invalidator "
                        f"of memo '{memo.name}' but never writes its "
                        f"storage field {memo.field}"
                    ),
                    fix_hint=f"clear or reassign self.{memo.field}",
                )
        storage_key = (cls.qualname, memo.field)
        for dep in memo.depends:
            for fn_qual, write in writes_by_key.get(
                (cls.qualname, dep), ()
            ):
                function = ctx.index.functions[fn_qual]
                if function.is_constructor and function.cls == cls.qualname:
                    continue
                if storage_key in ctx.mutation.transitive.get(
                    fn_qual, frozenset()
                ):
                    continue
                if invalidator_qual is not None and (
                    invalidator_qual in ctx.graph.reachable_from(fn_qual)
                ):
                    continue
                remedy = (
                    f"call self.{memo.invalidator}()"
                    if memo.has_invalidator
                    else f"clear self.{memo.field}"
                )
                yield Violation(
                    rule=self.rule_id,
                    path=ctx.display_path(fn_qual),
                    line=write.lineno,
                    message=(
                        f"{fn_qual} mutates {cls.name}.{dep}, a "
                        f"dependency of memo '{memo.name}', without "
                        f"invalidating {memo.field}"
                    ),
                    fix_hint=f"{remedy} after mutating {dep}",
                )


# ---------------------------------------------------------------------------
# REP011 — post-publish copy-on-write mutation
# ---------------------------------------------------------------------------


class PublishSafetyRule(AuditRule):
    rule_id = "REP011"
    title = "no mutation of published state after the publish point"
    rationale = (
        "objects built before the pool forks are shared copy-on-write; "
        "a parent-side mutation after the publish point diverges the "
        "parent from what the workers inherited"
    )

    def check(self, ctx: AuditContext) -> Iterator[Violation]:
        published = _published_closure(ctx)
        if not published:
            return
        exempt = {
            (cls.qualname, memo.field)
            for cls in ctx.index.classes.values()
            for memo in cls.memos
        }
        publish_functions = {
            fn.qualname for fn in ctx.index.iter_functions() if fn.publishes
        }
        if not publish_functions:
            return
        call_edges = _call_only_edges(ctx.graph)
        for caller in sorted(ctx.graph.sites):
            sites = ctx.graph.sites[caller]
            publish_lines = [
                site.lineno for site in sites
                if site.callee in publish_functions and not site.is_reference
            ]
            if not publish_lines:
                continue
            first_publish = min(publish_lines)
            reported: set[str] = set()
            for site in sites:
                if site.is_reference or site.lineno <= first_publish:
                    continue
                if site.callee in publish_functions:
                    continue
                if site.callee in reported:
                    continue
                offence = _first_cow_write(
                    ctx, call_edges, site.callee, published, exempt
                )
                if offence is None:
                    continue
                reported.add(site.callee)
                mutator, write, chain = offence
                rendered = " -> ".join(
                    part.rsplit(".", 2)[-1] if part.count(".") < 2
                    else ".".join(part.rsplit(".", 2)[-2:])
                    for part in chain
                )
                cls_name = write.cls.rsplit(".", 1)[-1]
                yield Violation(
                    rule=self.rule_id,
                    path=ctx.display_path(caller),
                    line=site.lineno,
                    message=(
                        f"{caller} calls {site.callee} after the publish "
                        f"point, which reaches {mutator} mutating "
                        f"published {cls_name}.{write.field} "
                        f"(chain: {rendered})"
                    ),
                    fix_hint=(
                        "move the call before the publish point or make "
                        "the mutation worker-side"
                    ),
                )


def _published_closure(ctx: AuditContext) -> frozenset[str]:
    """Published roots plus every class reachable through field types."""
    frontier = deque(
        qual for qual, cls in ctx.index.classes.items() if cls.published
    )
    seen = set(frontier)
    while frontier:
        cls = ctx.index.classes.get(frontier.popleft())
        if cls is None:
            continue
        for reachable in (*cls.bases, *_field_class_names(cls)):
            if reachable not in seen and reachable in ctx.index.classes:
                seen.add(reachable)
                frontier.append(reachable)
    return frozenset(seen)


def _field_class_names(cls: ClassInfo) -> Iterator[str]:
    for info in cls.fields.values():
        yield from _type_class_names(info.type)


def _type_class_names(desc: TypeDesc) -> Iterator[str]:
    if desc.is_class:
        yield desc.name
    for arg in desc.args:
        yield from _type_class_names(arg)


def _call_only_edges(graph: CallGraph) -> dict[str, tuple[str, ...]]:
    """Edges restricted to genuine calls: a function *reference* handed
    to a pool runs worker-side, outside the parent's publish window."""
    return {
        caller: tuple(
            sorted({s.callee for s in sites if not s.is_reference})
        )
        for caller, sites in graph.sites.items()
    }


def _first_cow_write(
    ctx: AuditContext,
    call_edges: dict[str, tuple[str, ...]],
    start: str,
    published: frozenset[str],
    exempt: set[tuple[str, str]],
) -> tuple[str, Write, tuple[str, ...]] | None:
    """BFS over call-only edges for the first write into published state."""
    parents: dict[str, str | None] = {start: None}
    frontier = deque((start,))
    while frontier:
        current = frontier.popleft()
        for write in ctx.mutation.direct.get(current, ()):
            if write.cls in published and write.key not in exempt:
                chain = [current]
                while parents[chain[-1]] is not None:
                    chain.append(parents[chain[-1]])  # type: ignore[arg-type]
                return (current, write, tuple(reversed(chain)))
        for callee in call_edges.get(current, ()):
            if callee not in parents:
                parents[callee] = current
                frontier.append(callee)
    return None


# ---------------------------------------------------------------------------
# REP012 — transitive pickle-safety
# ---------------------------------------------------------------------------


class PickleSafetyRule(AuditRule):
    rule_id = "REP012"
    title = "worker-boundary types must stay picklable"
    rationale = (
        "specs and summaries cross the process boundary by pickle; a "
        "field that transitively holds a callable, lock or file object "
        "fails only at runtime, on the parallel path nobody runs in CI"
    )

    def check(self, ctx: AuditContext) -> Iterator[Violation]:
        roots = sorted(
            qual for qual, cls in ctx.index.classes.items()
            if cls.pickled_boundary
        )
        visited: set[str] = set()
        for root in roots:
            yield from self._walk(ctx, root, root.rsplit(".", 1)[-1],
                                  visited)

    def _walk(
        self,
        ctx: AuditContext,
        cls_qual: str,
        path_label: str,
        visited: set[str],
    ) -> Iterator[Violation]:
        if cls_qual in visited:
            return
        visited.add(cls_qual)
        cls = ctx.index.classes.get(cls_qual)
        if cls is None:
            return
        if cls.has_custom_reduce:
            # The class defines its own pickle protocol; its internals
            # are its own business.
            return
        for field_name in sorted(cls.fields):
            info = cls.fields[field_name]
            bad = sorted(
                name for name in info.annotation_names
                if name in UNPICKLABLE_NAMES
            )
            for name in bad:
                yield Violation(
                    rule=self.rule_id,
                    path=ctx.display_path(cls_qual),
                    line=info.lineno,
                    message=(
                        f"{path_label}.{field_name} reaches the worker "
                        f"boundary but its annotation contains "
                        f"unpicklable {name}"
                    ),
                    fix_hint=(
                        "carry a declarative value instead, or give the "
                        "owning class __reduce__/__getstate__"
                    ),
                )
            for name in info.annotation_names:
                resolved = ctx.index.resolve(cls.module, name)
                if resolved is not None and resolved in ctx.index.classes:
                    yield from self._walk(
                        ctx, resolved, f"{path_label}.{field_name}",
                        visited,
                    )


# ---------------------------------------------------------------------------
# REP013 — interprocedural determinism taint
# ---------------------------------------------------------------------------


class DeterminismTaintRule(AuditRule):
    rule_id = "REP013"
    title = "no reachable wall-clock or global randomness in sim/core"
    rationale = (
        "REP001/REP002 check one file at a time; a helper in another "
        "module that reads the clock still poisons every simulation "
        "function that can reach it"
    )

    def check(self, ctx: AuditContext) -> Iterator[Violation]:
        sources = self._sources(ctx)
        if not sources:
            return
        tainted: dict[str, tuple[str, int, str]] = {}
        frontier = deque(sources)
        for qual, evidence in sources.items():
            tainted[qual] = evidence
        while frontier:
            current = frontier.popleft()
            for caller in ctx.graph.callers.get(current, ()):
                if caller not in tainted:
                    tainted[caller] = tainted[current]
                    frontier.append(caller)
        for sink in sorted(tainted):
            function = ctx.index.functions.get(sink)
            if function is None or not function.module.startswith(
                DETERMINISM_SINK_PREFIXES
            ):
                continue
            call_name, lineno, source_fn = tainted[sink]
            source_path = ctx.display_path(source_fn)
            chain = ctx.graph.path(sink, source_fn)
            rendered = " -> ".join(
                part.rsplit(".", 1)[-1] for part in chain
            ) or sink.rsplit(".", 1)[-1]
            yield Violation(
                rule=self.rule_id,
                path=ctx.display_path(sink),
                line=function.node.lineno,
                message=(
                    f"{sink} can reach nondeterministic {call_name}() "
                    f"at {source_path}:{lineno} (chain: {rendered})"
                ),
                fix_hint=(
                    "thread virtual time / a seeded generator through "
                    "the helper, or sanction the call with "
                    "# repro: ignore[REP001] / [REP002] where it is "
                    "provably off the replay path"
                ),
            )

    def _sources(
        self, ctx: AuditContext
    ) -> dict[str, tuple[str, int, str]]:
        """Function -> (banned call, line, function) for unsanctioned
        wall-clock / randomness calls.  A call the per-file lint
        suppresses (``# repro: ignore[REP001]``) is sanctioned here too:
        the suppression is the reviewed, visible opt-out."""
        sources: dict[str, tuple[str, int, str]] = {}
        import_maps = {
            module: ImportMap(src.tree)
            for module, src in ctx.index.modules.items()
        }
        for function in ctx.index.iter_functions():
            module_src = ctx.index.modules[function.module]
            imports = import_maps[function.module]
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Call):
                    continue
                qualified = imports.qualified_name(node.func)
                if qualified is None:
                    continue
                rule = _banned_call_rule(qualified, node)
                if rule is None:
                    continue
                if module_src.is_suppressed(node.lineno, rule):
                    continue
                sources.setdefault(
                    function.qualname,
                    (qualified, node.lineno, function.qualname),
                )
                break
        return sources


def _banned_call_rule(qualified: str, node: ast.Call) -> str | None:
    """The per-file rule id a banned call falls under, else None."""
    if qualified in _WALLCLOCK_BANNED:
        return "REP001"
    if qualified in _ALWAYS_BANNED:
        return "REP002"
    if qualified in _SEEDED_CONSTRUCTORS:
        # Seeded construction is the sanctioned pattern; only the
        # no-argument (OS-entropy) form taints.
        return None if (node.args or node.keywords) else "REP002"
    if _is_module_level_random(qualified):
        return "REP002"
    return None


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


ALL_AUDIT_RULES: tuple[AuditRule, ...] = (
    MemoInvalidationRule(),
    PublishSafetyRule(),
    PickleSafetyRule(),
    DeterminismTaintRule(),
)


@dataclass(frozen=True)
class AuditReport:
    """The outcome of one :func:`run_audit` invocation."""

    violations: tuple[Violation, ...]
    modules: int
    functions: int
    classes: int
    memos: int
    suppressed_count: int

    @property
    def clean(self) -> bool:
        return not self.violations


def run_audit(
    roots: Sequence[Path],
    rules: Iterable[AuditRule] | None = None,
) -> AuditReport:
    """Build the whole-program context and run every audit rule."""
    ctx = AuditContext.build(roots)
    rule_list = list(ALL_AUDIT_RULES if rules is None else rules)
    violations: list[Violation] = []
    suppressed = 0
    for rule in rule_list:
        for violation in rule.check(ctx):
            source = next(
                (
                    src for src in ctx.index.modules.values()
                    if src.display_path == violation.path
                ),
                None,
            )
            if source is not None and source.is_suppressed(
                violation.line, violation.rule
            ):
                suppressed += 1
                continue
            violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.rule, v.message))
    return AuditReport(
        violations=tuple(dict.fromkeys(violations)),
        modules=len(ctx.index.modules),
        functions=len(ctx.index.functions),
        classes=len(ctx.index.classes),
        memos=sum(len(c.memos) for c in ctx.index.classes.values()),
        suppressed_count=suppressed,
    )


def _writes_by_key(
    ctx: AuditContext,
) -> dict[tuple[str, str], list[tuple[str, Write]]]:
    by_key: dict[tuple[str, str], list[tuple[str, Write]]] = {}
    for fn_qual in sorted(ctx.mutation.direct):
        for write in ctx.mutation.direct[fn_qual]:
            by_key.setdefault(write.key, []).append((fn_qual, write))
    return by_key


def _has_field(cls: ClassInfo, name: str, index: ProjectIndex) -> bool:
    if name in cls.fields:
        return True
    return any(
        (base_info := index.classes.get(base)) is not None
        and _has_field(base_info, name, index)
        for base in cls.bases
    )
