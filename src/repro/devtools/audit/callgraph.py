"""A conservative, name-resolution-based project call graph.

For every indexed function the pass resolves each call expression to a
project function where names and a small amount of local typing allow:

* ``self.m()`` / ``cls.m()`` / ``super().m()`` through the enclosing
  class and its project bases;
* ``func()`` / ``module.func()`` / ``Class(...)`` through the module
  namespace and import aliases (constructor calls edge to ``__init__``);
* ``obj.m()`` where ``obj``'s class is inferable from parameter
  annotations, ``__init__`` field types, local assignments from
  constructors or typed fields, container element types
  (``self._entries[k]``, ``self._entries.get(k)``, iteration over
  ``.values()`` / ``.items()``), or project function return
  annotations.

``self.m`` *references* that are not calls (method rebinding, callables
passed as arguments) are recorded as edges too — the referenced code
may run, and the audit's consumers (taint, purity) must assume it does.
Unresolvable calls stay unresolved rather than guessed; DESIGN.md §14
discusses what that under-approximates.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.devtools.audit.project import (
    OPAQUE,
    FunctionInfo,
    ProjectIndex,
    TypeDesc,
)


@dataclass(frozen=True)
class CallSite:
    """One resolved call (or function reference) inside a function body."""

    callee: str
    lineno: int
    is_reference: bool = False
    """True when the callee was referenced (passed / rebound), not called."""


@dataclass
class _Scope:
    """Per-function inference state."""

    function: FunctionInfo
    env: dict[str, TypeDesc] = field(default_factory=dict)
    aliases: dict[str, tuple[str, str]] = field(default_factory=dict)
    """Local name -> (class qualname, field) when the local aliases a
    mutable field (``entries = self._entries``)."""


class CallGraph:
    """Edges between project functions, plus per-caller ordered sites."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.edges: dict[str, set[str]] = {}
        self.callers: dict[str, set[str]] = {}
        self.sites: dict[str, tuple[CallSite, ...]] = {}
        self.scopes: dict[str, _Scope] = {}
        for function in index.iter_functions():
            self._analyze(function)

    # -- construction ------------------------------------------------------

    def _analyze(self, function: FunctionInfo) -> None:
        scope = _Scope(function=function)
        scope.env.update(self.index._parameter_types(function))
        self.scopes[function.qualname] = scope
        # Two passes over local assignments: later assignments may feed
        # earlier-inferred names (flow-insensitive fixed point, depth 2).
        for _ in range(2):
            self._collect_locals(function, scope)
        sites: list[CallSite] = []
        for node in ast.walk(function.node):
            if isinstance(node, ast.Call):
                for callee in self._resolve_call(node, scope):
                    sites.append(CallSite(callee=callee, lineno=node.lineno))
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                referenced = self._method_reference(node, scope)
                if referenced is not None:
                    sites.append(
                        CallSite(
                            callee=referenced,
                            lineno=node.lineno,
                            is_reference=True,
                        )
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                symbol = self.index.resolve(function.module, node.id)
                if symbol is not None and symbol in self.index.functions:
                    sites.append(
                        CallSite(
                            callee=symbol,
                            lineno=node.lineno,
                            is_reference=True,
                        )
                    )
        # Call expressions produce both the Call site and a Load of the
        # same name; drop references that duplicate a call on the line.
        called = {(site.callee, site.lineno) for site in sites
                  if not site.is_reference}
        deduped = tuple(
            site for site in sites
            if not site.is_reference or (site.callee, site.lineno) not in called
        )
        self.sites[function.qualname] = deduped
        edge_set = self.edges.setdefault(function.qualname, set())
        for site in deduped:
            edge_set.add(site.callee)
            self.callers.setdefault(site.callee, set()).add(function.qualname)

    def _collect_locals(self, function: FunctionInfo, scope: _Scope) -> None:
        for node in ast.walk(function.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    desc = self.infer(node.value, scope)
                    if desc is not OPAQUE:
                        scope.env[target.id] = desc
                    alias = self._field_alias(node.value, scope)
                    if alias is not None:
                        scope.aliases[target.id] = alias
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                desc = self.index.resolve_annotation(
                    function.module, node.annotation
                )
                if desc is not OPAQUE:
                    scope.env[node.target.id] = desc
            elif isinstance(node, ast.For):
                self._bind_loop_target(node, scope)

    def _bind_loop_target(self, node: ast.For, scope: _Scope) -> None:
        iterated = node.iter
        pair: tuple[TypeDesc, TypeDesc] | None = None
        element: TypeDesc = OPAQUE
        if isinstance(iterated, ast.Call) and isinstance(
            iterated.func, ast.Attribute
        ):
            receiver = self.infer(iterated.func.value, scope)
            if receiver.kind == "dict":
                if iterated.func.attr == "values":
                    element = receiver.value_type()
                elif iterated.func.attr == "items":
                    pair = (receiver.key_type(), receiver.value_type())
                elif iterated.func.attr == "keys":
                    element = receiver.key_type()
        if pair is None and element is OPAQUE:
            container = self.infer(iterated, scope)
            if container.kind == "seq":
                element = container.value_type()
            elif container.kind == "dict":
                element = container.key_type()
        target = node.target
        if pair is not None and isinstance(target, ast.Tuple) and len(
            target.elts
        ) == 2:
            for part, desc in zip(target.elts, pair):
                if isinstance(part, ast.Name) and desc is not OPAQUE:
                    scope.env[part.id] = desc
        elif isinstance(target, ast.Name) and element is not OPAQUE:
            scope.env[target.id] = element

    # -- inference ---------------------------------------------------------

    def infer(self, node: ast.expr, scope: _Scope) -> TypeDesc:
        """Best-effort structural type of an expression."""
        index = self.index
        if isinstance(node, ast.Name):
            return scope.env.get(node.id, OPAQUE)
        if isinstance(node, ast.Attribute):
            base = self.infer(node.value, scope)
            if base.is_class:
                cls = index.classes.get(base.name)
                if cls is not None:
                    return cls.field_type(node.attr, index)
            return OPAQUE
        if isinstance(node, ast.Subscript):
            return self.infer(node.value, scope).value_type()
        if isinstance(node, ast.Call):
            return self._call_result(node, scope)
        if isinstance(node, ast.IfExp):
            for branch in (node.body, node.orelse):
                desc = self.infer(branch, scope)
                if desc is not OPAQUE:
                    return desc
        return OPAQUE

    def _call_result(self, node: ast.Call, scope: _Scope) -> TypeDesc:
        index = self.index
        func = node.func
        symbol = index._resolve_expr_symbol(scope.function.module, func)
        if symbol is not None:
            if symbol in index.classes:
                return TypeDesc(kind="class", name=symbol)
            target = index.functions.get(symbol)
            if target is not None and target.node.returns is not None:
                return index.resolve_annotation(
                    target.module, target.node.returns
                )
            return OPAQUE
        if isinstance(func, ast.Attribute):
            receiver = self.infer(func.value, scope)
            if receiver.kind == "dict" and func.attr in ("get", "pop",
                                                         "setdefault"):
                return receiver.value_type()
            if receiver.kind == "seq" and func.attr == "pop":
                return receiver.value_type()
            if receiver.is_class:
                cls = index.classes.get(receiver.name)
                if cls is not None:
                    method_qual = cls.method(func.attr, index)
                    method = (
                        index.functions.get(method_qual)
                        if method_qual else None
                    )
                    if method is not None and method.node.returns is not None:
                        return index.resolve_annotation(
                            method.module, method.node.returns
                        )
        return OPAQUE

    def _field_alias(
        self, node: ast.expr, scope: _Scope
    ) -> tuple[str, str] | None:
        """``(class, field)`` when ``node`` is a typed-attribute load."""
        if isinstance(node, ast.Attribute):
            base = self.infer(node.value, scope)
            if base.is_class:
                return (base.name, node.attr)
        return None

    # -- call resolution ---------------------------------------------------

    def _resolve_call(
        self, node: ast.Call, scope: _Scope
    ) -> Iterable[str]:
        index = self.index
        module = scope.function.module
        func = node.func
        # super().m()
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            enclosing = index.class_of(scope.function)
            if enclosing is not None:
                for base in enclosing.bases:
                    base_info = index.classes.get(base)
                    if base_info is not None:
                        found = base_info.method(func.attr, index)
                        if found is not None:
                            return (found,)
            return ()
        symbol = index._resolve_expr_symbol(module, func)
        if symbol is not None:
            if symbol in index.functions:
                return (symbol,)
            if symbol in index.classes:
                constructor = index.classes[symbol].method("__init__", index)
                return (constructor,) if constructor else ()
            return ()
        if isinstance(func, ast.Attribute):
            receiver = self.infer(func.value, scope)
            if receiver.is_class:
                cls = index.classes.get(receiver.name)
                if cls is not None:
                    found = cls.method(func.attr, index)
                    if found is not None:
                        return (found,)
        return ()

    def _method_reference(
        self, node: ast.Attribute, scope: _Scope
    ) -> str | None:
        """A method referenced without a call (``self._observed_get``)."""
        receiver = self.infer(node.value, scope)
        if not receiver.is_class:
            return None
        cls = self.index.classes.get(receiver.name)
        if cls is None:
            return None
        return cls.method(node.attr, self.index)

    # -- queries -----------------------------------------------------------

    def reachable_from(self, start: str) -> frozenset[str]:
        """Every function transitively callable from ``start`` (inclusive)."""
        seen = {start}
        frontier = deque((start,))
        while frontier:
            current = frontier.popleft()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return frozenset(seen)

    def path(self, start: str, goal: str) -> tuple[str, ...]:
        """A shortest call chain from ``start`` to ``goal`` (inclusive).

        Empty when ``goal`` is unreachable; used only for violation
        messages, so plain BFS is fine.
        """
        if start == goal:
            return (start,)
        parents: dict[str, str] = {}
        frontier = deque((start,))
        seen = {start}
        while frontier:
            current = frontier.popleft()
            for callee in self.edges.get(current, ()):
                if callee in seen:
                    continue
                parents[callee] = current
                if callee == goal:
                    chain = [callee]
                    while chain[-1] != start:
                        chain.append(parents[chain[-1]])
                    return tuple(reversed(chain))
                seen.add(callee)
                frontier.append(callee)
        return ()
