"""SARIF 2.1.0 rendering for audit findings.

The output targets GitHub code scanning: one run, one driver
(``repro-audit``), one result per violation with the rule id, message,
fix hint and a physical location.  Only the subset of SARIF the
consumer actually reads is emitted.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.devtools.checks import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(
    violations: Sequence[Violation],
    rules: Iterable[tuple[str, str, str]],
    tool_name: str = "repro-audit",
) -> dict[str, object]:
    """Render ``violations`` as a SARIF log object.

    ``rules`` is ``(rule_id, title, rationale)`` triples describing
    every rule the run enforced — including clean ones, so code
    scanning can show what was checked.
    """
    rule_objects = [
        {
            "id": rule_id,
            "shortDescription": {"text": title},
            "fullDescription": {"text": rationale},
        }
        for rule_id, title, rationale in rules
    ]
    results = []
    for violation in violations:
        message = violation.message
        if violation.fix_hint:
            message += f" Fix: {violation.fix_hint}."
        results.append(
            {
                "ruleId": violation.rule,
                "level": "error",
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": max(violation.line, 1)
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": (
                            "https://example.invalid/repro-audit"
                        ),
                        "rules": rule_objects,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    violations: Sequence[Violation],
    rules: Iterable[tuple[str, str, str]],
    tool_name: str = "repro-audit",
) -> str:
    return json.dumps(
        to_sarif(violations, rules, tool_name=tool_name), indent=2
    ) + "\n"
