"""The ``repro audit`` subcommand: whole-program analysis from the CLI.

Where ``repro check`` lints file by file, ``repro audit`` parses the
whole tree once and enforces the cross-module rules REP010–REP013.
Output mirrors ``repro check``: human text by default, the shared
``repro-findings`` JSON schema with ``--json``, SARIF 2.1.0 with
``--sarif`` for code-scanning upload.  A committed baseline
(``audit-baseline.json``) holds reviewed, justified findings;
``--changed-only`` scopes reporting to files touched in the working
tree, which is what the pre-commit hook runs.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.devtools.audit.baseline import Baseline
from repro.devtools.audit.rules import ALL_AUDIT_RULES, AuditReport, run_audit
from repro.devtools.audit.sarif import render_sarif
from repro.devtools.checks import FINDINGS_SCHEMA, Violation

#: Baseline location used when the flag is not given.
DEFAULT_BASELINE = Path("audit-baseline.json")


def default_audit_paths() -> list[Path]:
    """``src/repro`` under cwd, else the installed package location."""
    source_tree = Path("src") / "repro"
    if source_tree.is_dir():
        return [source_tree]
    import repro

    package_file = repro.__file__
    if package_file is None:  # pragma: no cover - frozen interpreters
        return []
    return [Path(package_file).parent]


def add_audit_parser(
    subparsers: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> argparse.ArgumentParser:
    """Register the ``audit`` subcommand on the main CLI parser."""
    audit = subparsers.add_parser(
        "audit",
        help="run the whole-program mutation/purity audit (REP010...)",
        description=(
            "Parse the whole tree once, build the cross-module call "
            "graph and mutation sets, and enforce memo-invalidation, "
            "copy-on-write, pickle-safety and determinism-taint rules."
        ),
    )
    audit.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="package roots to audit (default: src/repro)",
    )
    audit.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help=f"emit findings in the {FINDINGS_SCHEMA} JSON schema",
    )
    audit.add_argument(
        "--sarif",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="write SARIF 2.1.0 to PATH (stdout when no PATH given)",
    )
    audit.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"accepted-findings file (default: {DEFAULT_BASELINE})",
    )
    audit.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run (keeps justifications)",
    )
    audit.add_argument(
        "--changed-only",
        action="store_true",
        help="report only findings in files changed per git status",
    )
    audit.add_argument(
        "--strict",
        action="store_true",
        help="also fail on expired baseline entries",
    )
    audit.add_argument(
        "--list-rules",
        action="store_true",
        help="print every audit rule id, title and rationale, then exit",
    )
    audit.set_defaults(func=run_audit_command)
    return audit


def run_audit_command(args: argparse.Namespace) -> int:
    """Entry point for ``repro audit``; returns the process exit code."""
    if args.list_rules:
        for rule in ALL_AUDIT_RULES:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = default_audit_paths()
    if not paths:
        print("error: no paths to audit (run from the repo root or pass "
              "paths explicitly)", file=sys.stderr)
        return 2
    missing = [str(p) for p in paths if not p.is_dir()]
    if missing:
        print(f"error: not a package root: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    report = run_audit(paths)
    baseline_path = (
        Path(args.baseline) if args.baseline else DEFAULT_BASELINE
    )
    baseline = Baseline.load(baseline_path)
    if args.update_baseline:
        baseline.updated_from(report.violations).save(baseline_path)
        print(f"repro audit: baseline rewritten with "
              f"{len(report.violations)} finding(s) -> {baseline_path}")
        return 0
    new, accepted, expired = baseline.split(report.violations)

    if args.changed_only:
        changed = _changed_paths()
        new = tuple(v for v in new if v.path in changed)

    if args.sarif is not None:
        rendered = render_sarif(
            new,
            [(r.rule_id, r.title, r.rationale) for r in ALL_AUDIT_RULES],
        )
        if args.sarif == "-":
            print(rendered, end="")
        else:
            Path(args.sarif).write_text(rendered, encoding="utf-8")

    if args.as_json:
        print(json.dumps(_json_payload(report, new, accepted, expired),
                         indent=2))
    elif args.sarif is None or args.sarif != "-":
        _print_report(report, new, accepted, expired,
                      changed_only=args.changed_only)

    if new:
        return 1
    if args.strict and expired:
        return 1
    return 0


def _json_payload(
    report: AuditReport,
    new: tuple[Violation, ...],
    accepted: tuple[Violation, ...],
    expired: tuple,
) -> dict[str, object]:
    return {
        "schema": FINDINGS_SCHEMA,
        "tool": "repro-audit",
        "findings": [violation.as_dict() for violation in new],
        "summary": {
            "modules": report.modules,
            "functions": report.functions,
            "classes": report.classes,
            "memos": report.memos,
            "suppressed": report.suppressed_count,
            "baseline_accepted": len(accepted),
            "baseline_expired": [entry.fingerprint for entry in expired],
        },
    }


def _print_report(
    report: AuditReport,
    new: tuple[Violation, ...],
    accepted: tuple[Violation, ...],
    expired: tuple,
    changed_only: bool,
) -> None:
    for violation in new:
        print(violation.format())
    for entry in expired:
        print(
            f"baseline: entry {entry.fingerprint} ({entry.rule} "
            f"{entry.path}) no longer occurs — remove it with "
            f"--update-baseline",
            file=sys.stderr,
        )
    scope = " (changed files only)" if changed_only else ""
    stats = (
        f"{report.modules} modules, {report.functions} functions, "
        f"{report.memos} memos"
    )
    extras = []
    if report.suppressed_count:
        extras.append(f"{report.suppressed_count} suppressed")
    if accepted:
        extras.append(f"{len(accepted)} baseline-accepted")
    detail = f" ({stats}{'; ' + ', '.join(extras) if extras else ''})"
    if new:
        print(
            f"repro audit: {len(new)} violation(s){scope}{detail}",
            file=sys.stderr,
        )
    else:
        print(f"repro audit: clean{scope}{detail}")


def _changed_paths() -> frozenset[str]:
    """Posix paths changed per ``git status`` (staged, unstaged, new)."""
    try:
        completed = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return frozenset()
    changed = set()
    for line in completed.stdout.splitlines():
        entry = line[3:].strip()
        # Renames are reported as "old -> new"; the new path matters.
        if " -> " in entry:
            entry = entry.split(" -> ", 1)[1]
        if entry:
            changed.add(entry.strip('"'))
    return frozenset(changed)
