"""The project-wide symbol table: every module parsed once, indexed.

A :class:`ProjectIndex` walks one or more package roots, parses each
module through the same :func:`~repro.devtools.checks.load_module` the
per-file lint uses, and records every class and function under its
dotted qualified name (``repro.dns.zone.Zone.lookup``).  On top of the
raw symbols it derives what the interprocedural passes need:

* per-module namespaces (local definitions + import aliases resolved to
  project symbols where possible);
* per-class **field types**, inferred from class-body annotations,
  ``self.x: T = ...`` annotated assignments in ``__init__``, and plain
  ``self.x = param`` assignments from annotated parameters;
* a small structural-type language (:class:`TypeDesc`) covering project
  classes and the stdlib containers the hot path actually uses, so the
  call-graph pass can resolve ``self._entries.get(key)`` to a
  ``CacheEntry`` receiver.

Everything is name-resolution based and conservative: a name that
cannot be resolved stays unresolved rather than guessed (DESIGN.md §14
lists the resulting over- and under-approximations).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.devtools.checks import ImportMap, ModuleSource, load_module
from repro.devtools.audit.memos import (
    MemoDecl,
    parse_memo_decls,
    scan_marker_lines,
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Containers the type language models structurally.
_CONTAINERS = frozenset({"dict", "list", "tuple", "set", "frozenset",
                         "Dict", "List", "Tuple", "Set", "FrozenSet",
                         "Mapping", "MutableMapping", "Sequence",
                         "Iterable", "Iterator"})

_OPTIONALS = frozenset({"Optional", "Union"})


@dataclass(frozen=True)
class TypeDesc:
    """One structural type: a project class, a container, or opaque.

    ``kind`` is ``"class"`` (``name`` = class qualname), ``"dict"`` /
    ``"seq"`` (``args`` = element descriptors) or ``"opaque"`` (an
    external or unresolvable type the analysis does not look through).
    """

    kind: str
    name: str = ""
    args: tuple["TypeDesc", ...] = ()

    @property
    def is_class(self) -> bool:
        return self.kind == "class"

    def value_type(self) -> "TypeDesc":
        """The element type produced by indexing / ``.get`` on this type."""
        if self.kind == "dict" and len(self.args) == 2:
            return self.args[1]
        if self.kind == "seq" and self.args:
            return self.args[0]
        return OPAQUE

    def key_type(self) -> "TypeDesc":
        if self.kind == "dict" and self.args:
            return self.args[0]
        return OPAQUE


OPAQUE = TypeDesc(kind="opaque")


@dataclass
class FieldInfo:
    """One instance field of a project class."""

    name: str
    type: TypeDesc
    lineno: int
    annotation_names: tuple[str, ...] = ()
    """Every bare identifier appearing in the field's annotation, for
    the pickle-safety walk (``Callable``, ``IO``, ...)."""


@dataclass
class FunctionInfo:
    """One function or method, addressable by qualified name."""

    qualname: str
    module: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    decorators: tuple[str, ...] = ()
    invalidates: tuple[str, ...] = ()
    """Memo names declared via ``@invalidates(...)``."""

    publishes: bool = False
    """True when the body carries a ``# repro: publishes`` marker."""

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    @property
    def is_constructor(self) -> bool:
        return self.is_method and self.name in ("__init__", "__new__",
                                                "__post_init__")


@dataclass
class ClassInfo:
    """One project class: methods, inferred fields, audit annotations."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = field(default_factory=dict)
    fields: dict[str, FieldInfo] = field(default_factory=dict)
    memos: tuple[MemoDecl, ...] = ()
    published: bool = False
    pickled_boundary: bool = False
    is_dataclass: bool = False
    has_custom_reduce: bool = False

    def method(self, name: str, index: "ProjectIndex") -> str | None:
        """Resolve ``name`` through this class and its project bases."""
        found = self.methods.get(name)
        if found is not None:
            return found
        for base in self.bases:
            base_info = index.classes.get(base)
            if base_info is not None:
                found = base_info.method(name, index)
                if found is not None:
                    return found
        return None

    def field_type(self, name: str, index: "ProjectIndex") -> TypeDesc:
        info = self.fields.get(name)
        if info is not None:
            return info.type
        for base in self.bases:
            base_info = index.classes.get(base)
            if base_info is not None:
                found = base_info.field_type(name, index)
                if found is not OPAQUE:
                    return found
        return OPAQUE


class ProjectIndex:
    """All modules of one or more package roots, parsed and cross-linked."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleSource] = {}
        self.imports: dict[str, ImportMap] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: module name -> {local name -> qualified symbol}
        self.namespaces: dict[str, dict[str, str]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, roots: Sequence[Path]) -> "ProjectIndex":
        """Parse every ``.py`` file under each package root.

        Each root directory is treated as a package whose name is the
        directory's own name (``src/repro`` indexes as ``repro.*``).

        Raises:
            SyntaxError: when any file fails to parse — a whole-program
                analysis over a half-parsed tree proves nothing.
        """
        index = cls()
        for root in roots:
            package = root.name
            for path in sorted(root.rglob("*.py")):
                relative = path.relative_to(root).with_suffix("")
                parts = [package, *relative.parts]
                if parts[-1] == "__init__":
                    parts = parts[:-1]
                module_name = ".".join(parts)
                display = path.as_posix()
                index._index_module(module_name, load_module(path, display))
        index._link()
        return index

    def _index_module(self, module_name: str, source: ModuleSource) -> None:
        self.modules[module_name] = source
        self.imports[module_name] = ImportMap(source.tree)
        namespace: dict[str, str] = {}
        self.namespaces[module_name] = namespace
        markers = scan_marker_lines(source.text)
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef):
                self._index_class(module_name, node, markers)
                namespace[node.name] = f"{module_name}.{node.name}"
            elif isinstance(node, _FUNCTION_NODES):
                self._index_function(module_name, None, node, markers)
                namespace[node.name] = f"{module_name}.{node.name}"

    def _index_class(
        self,
        module_name: str,
        node: ast.ClassDef,
        markers: dict[int, str],
    ) -> None:
        qualname = f"{module_name}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            module=module_name,
            name=node.name,
            node=node,
        )
        info.is_dataclass = _has_decorator(node, "dataclass")
        self.classes[qualname] = info
        for item in node.body:
            if isinstance(item, _FUNCTION_NODES):
                function = self._index_function(
                    module_name, qualname, item, markers
                )
                info.methods[item.name] = function.qualname
                if item.name in ("__reduce__", "__reduce_ex__",
                                 "__getstate__"):
                    info.has_custom_reduce = True
        end = node.end_lineno or node.lineno
        body_markers = {
            line: text for line, text in markers.items()
            if node.lineno <= line <= end
        }
        info.memos = parse_memo_decls(body_markers)
        info.published = any(
            text == "published" for text in body_markers.values()
        )
        info.pickled_boundary = any(
            text == "pickled-boundary" for text in body_markers.values()
        )

    def _index_function(
        self,
        module_name: str,
        cls: str | None,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        markers: dict[int, str],
    ) -> FunctionInfo:
        if cls is None:
            qualname = f"{module_name}.{node.name}"
        else:
            qualname = f"{cls}.{node.name}"
        decorators = tuple(
            name for name in (_decorator_name(d) for d in node.decorator_list)
            if name
        )
        invalidated: list[str] = []
        for decorator in node.decorator_list:
            if (
                isinstance(decorator, ast.Call)
                and _decorator_name(decorator) == "invalidates"
            ):
                for arg in decorator.args:
                    if isinstance(arg, ast.Constant) and isinstance(
                        arg.value, str
                    ):
                        invalidated.append(arg.value)
        end = node.end_lineno or node.lineno
        publishes = any(
            text == "publishes"
            for line, text in markers.items()
            if node.lineno <= line <= end
        )
        info = FunctionInfo(
            qualname=qualname,
            module=module_name,
            name=node.name,
            cls=cls,
            node=node,
            decorators=decorators,
            invalidates=tuple(invalidated),
            publishes=publishes,
        )
        self.functions[qualname] = info
        return info

    def _link(self) -> None:
        """Second pass once all symbols exist: bases and field types."""
        for info in self.classes.values():
            info.bases = tuple(
                resolved
                for base in info.node.bases
                if (resolved := self._resolve_expr_symbol(info.module, base))
                and resolved in self.classes
            )
        for info in self.classes.values():
            self._infer_fields(info)

    # -- name resolution ---------------------------------------------------

    def resolve(self, module: str, name: str) -> str | None:
        """The qualified project symbol ``name`` refers to in ``module``.

        Handles local definitions and import aliases; returns None for
        anything external to the indexed roots.
        """
        local = self.namespaces.get(module, {}).get(name)
        if local is not None:
            return local
        imports = self.imports.get(module)
        if imports is None:
            return None
        origin = imports.qualified_name(ast.Name(id=name))
        return self._project_symbol(origin)

    def _project_symbol(self, dotted: str | None) -> str | None:
        """Normalise a dotted origin to an indexed symbol, if it is one."""
        if dotted is None:
            return None
        if dotted in self.classes or dotted in self.functions:
            return dotted
        # `from repro.dns import zone` style: module alias + attribute.
        if dotted in self.modules:
            return dotted
        return None

    def _resolve_expr_symbol(self, module: str, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute expression to a project symbol."""
        if isinstance(node, ast.Name):
            return self.resolve(module, node.id)
        if isinstance(node, ast.Attribute):
            base = self._resolve_expr_symbol(module, node.value)
            if base is None:
                # The base may itself be a module alias.
                imports = self.imports.get(module)
                if imports is not None:
                    dotted = imports.qualified_name(node)
                    return self._project_symbol(dotted)
                return None
            candidate = f"{base}.{node.attr}"
            return self._project_symbol(candidate)
        return None

    # -- type language -----------------------------------------------------

    def resolve_annotation(self, module: str, node: ast.expr) -> TypeDesc:
        """Interpret an annotation expression as a :class:`TypeDesc`."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return OPAQUE
            return self.resolve_annotation(module, parsed)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            # `X | None` and unions generally: analysis-wise the useful
            # half is the project class; pick the first resolvable side.
            for side in (node.left, node.right):
                desc = self.resolve_annotation(module, side)
                if desc is not OPAQUE:
                    return desc
            return OPAQUE
        if isinstance(node, ast.Subscript):
            head = _annotation_head(node.value)
            if head in _OPTIONALS:
                inner = node.slice
                elements = (
                    inner.elts if isinstance(inner, ast.Tuple) else [inner]
                )
                for element in elements:
                    desc = self.resolve_annotation(module, element)
                    if desc is not OPAQUE:
                        return desc
                return OPAQUE
            if head in _CONTAINERS:
                inner = node.slice
                elements = (
                    inner.elts if isinstance(inner, ast.Tuple) else [inner]
                )
                args = tuple(
                    self.resolve_annotation(module, element)
                    for element in elements
                    if not (
                        isinstance(element, ast.Constant)
                        and element.value is Ellipsis
                    )
                )
                if head in ("dict", "Dict", "Mapping", "MutableMapping"):
                    if len(args) == 2:
                        return TypeDesc(kind="dict", args=args)
                    return OPAQUE
                if args:
                    # All sequence-likes collapse to their element type;
                    # heterogeneous tuples keep the first project class.
                    for arg in args:
                        if arg.is_class:
                            return TypeDesc(kind="seq", args=(arg,))
                    return TypeDesc(kind="seq", args=(args[0],))
                return OPAQUE
            return OPAQUE
        symbol = self._resolve_expr_symbol(module, node)
        if symbol is not None and symbol in self.classes:
            return TypeDesc(kind="class", name=symbol)
        return OPAQUE

    # -- field inference ---------------------------------------------------

    def _infer_fields(self, info: ClassInfo) -> None:
        module = info.module
        # Class-body annotations (dataclasses and annotated attributes).
        for item in info.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                names = tuple(sorted(_annotation_identifiers(item.annotation)))
                info.fields[item.target.id] = FieldInfo(
                    name=item.target.id,
                    type=self.resolve_annotation(module, item.annotation),
                    lineno=item.lineno,
                    annotation_names=names,
                )
        # __init__ / __new__ self-assignments.
        for method_name in ("__init__", "__new__", "__post_init__"):
            method = self.functions.get(info.methods.get(method_name, ""))
            if method is None:
                continue
            params = self._parameter_types(method)
            receiver = _first_parameter(method.node)
            for node in ast.walk(method.node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                annotation: ast.expr | None = None
                if isinstance(node, ast.AnnAssign):
                    target, annotation = node.target, node.annotation
                elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != receiver
                    or target.attr in info.fields
                ):
                    continue
                if annotation is not None:
                    desc = self.resolve_annotation(module, annotation)
                    names = tuple(sorted(_annotation_identifiers(annotation)))
                elif isinstance(value, ast.Name):
                    desc = params.get(value.id, OPAQUE)
                    names = ()
                elif isinstance(value, ast.Call):
                    desc = self._constructed_type(module, value)
                    names = ()
                else:
                    desc, names = OPAQUE, ()
                info.fields[target.attr] = FieldInfo(
                    name=target.attr,
                    type=desc,
                    lineno=node.lineno,
                    annotation_names=names,
                )
        # `object.__setattr__(self, "field", ...)` fills on frozen/slots
        # classes: register the field name so memo declarations can name
        # it even though no annotation exists (type stays opaque).
        for method_qual in info.methods.values():
            method = self.functions.get(method_qual)
            if method is None:
                continue
            for node in ast.walk(method.node):
                written = _setattr_field(node)
                if written is not None and written not in info.fields:
                    info.fields[written] = FieldInfo(
                        name=written, type=OPAQUE, lineno=node.lineno
                    )

    def _parameter_types(self, function: FunctionInfo) -> dict[str, TypeDesc]:
        """Annotated parameter name -> descriptor (``self`` included)."""
        types: dict[str, TypeDesc] = {}
        arguments = function.node.args
        all_args = [*arguments.posonlyargs, *arguments.args,
                    *arguments.kwonlyargs]
        for arg in all_args:
            if arg.annotation is not None:
                types[arg.arg] = self.resolve_annotation(
                    function.module, arg.annotation
                )
        if function.is_method and all_args:
            first = all_args[0].arg
            if first not in types and function.cls is not None:
                types[first] = TypeDesc(kind="class", name=function.cls)
        return types

    def _constructed_type(self, module: str, call: ast.Call) -> TypeDesc:
        """The type produced by ``SomeClass(...)`` / ``some_func(...)``."""
        symbol = self._resolve_expr_symbol(module, call.func)
        if symbol is None:
            return OPAQUE
        if symbol in self.classes:
            return TypeDesc(kind="class", name=symbol)
        function = self.functions.get(symbol)
        if function is not None and function.node.returns is not None:
            return self.resolve_annotation(
                function.module, function.node.returns
            )
        return OPAQUE

    # -- queries -----------------------------------------------------------

    def iter_functions(self) -> Iterator[FunctionInfo]:
        return iter(self.functions.values())

    def class_of(self, function: FunctionInfo) -> ClassInfo | None:
        if function.cls is None:
            return None
        return self.classes.get(function.cls)

    def source_for(self, function_or_class: str) -> ModuleSource | None:
        """The module source a qualified symbol was defined in."""
        function = self.functions.get(function_or_class)
        if function is not None:
            return self.modules.get(function.module)
        cls = self.classes.get(function_or_class)
        if cls is not None:
            return self.modules.get(cls.module)
        return None


def _has_decorator(node: ast.ClassDef, name: str) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == name:
            return True
        if isinstance(target, ast.Attribute) and target.attr == name:
            return True
    return False


def _decorator_name(node: ast.expr) -> str:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return ""


def _annotation_head(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _annotation_identifiers(node: ast.expr) -> Iterator[str]:
    """Every bare identifier in an annotation (strings re-parsed)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            try:
                parsed = ast.parse(child.value, mode="eval")
            except SyntaxError:
                continue
            yield from _annotation_identifiers(parsed.body)


def _first_parameter(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> str:
    arguments = node.args
    ordered = [*arguments.posonlyargs, *arguments.args]
    return ordered[0].arg if ordered else "self"


def _setattr_field(node: ast.AST) -> str | None:
    """The field written by ``object.__setattr__(x, "field", v)``, if any."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if not (
        isinstance(func, ast.Attribute)
        and func.attr == "__setattr__"
        and isinstance(func.value, ast.Name)
        and func.value.id == "object"
    ):
        return None
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
        value = node.args[1].value
        if isinstance(value, str):
            return value
    return None
