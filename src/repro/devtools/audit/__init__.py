"""Whole-program static analysis over the ``repro`` package.

Where :mod:`repro.devtools.rules` lints one module at a time, this
package parses every module once, builds a project-wide symbol table
(:mod:`~repro.devtools.audit.project`), a conservative name-resolution
call graph (:mod:`~repro.devtools.audit.callgraph`) and per-function
field-mutation sets (:mod:`~repro.devtools.audit.mutation`), then
enforces the semantic rule family REP010–REP013
(:mod:`~repro.devtools.audit.rules`) that no per-file lint can see:
memo-invalidation completeness, copy-on-write publish safety,
transitive pickle-safety and interprocedural determinism taint.

Run it as ``repro audit``; DESIGN.md §14 documents the analysis model
and its known over-approximations.
"""

from repro.devtools.audit.baseline import Baseline, fingerprint
from repro.devtools.audit.callgraph import CallGraph
from repro.devtools.audit.memos import MemoDecl
from repro.devtools.audit.mutation import MutationAnalysis
from repro.devtools.audit.project import ClassInfo, FunctionInfo, ProjectIndex
from repro.devtools.audit.rules import (
    ALL_AUDIT_RULES,
    AuditContext,
    AuditReport,
    run_audit,
)
from repro.devtools.audit.sarif import to_sarif

__all__ = [
    "ALL_AUDIT_RULES",
    "AuditContext",
    "AuditReport",
    "Baseline",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "MemoDecl",
    "MutationAnalysis",
    "ProjectIndex",
    "fingerprint",
    "run_audit",
    "to_sarif",
]
