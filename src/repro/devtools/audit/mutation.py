"""Per-function field-mutation sets and purity, transitively closed.

The pass answers one question for every project function: *which
``(class, field)`` pairs may this function write, directly or through
anything it calls?*  Direct writes cover:

* ``self.f = ...`` / ``self.f += ...`` / ``del self.f`` (and the same
  through any receiver whose class is inferable);
* ``self.f[k] = ...`` / ``del self.f[k]`` — a store *into* a field's
  container mutates the field;
* mutating method calls on a field (``self._entries.clear()``,
  ``.append``, ``.pop``, ``.update``, ...);
* ``object.__setattr__(self, "f", ...)`` fills on frozen/slots classes;
* the same operations through a **local alias** of a field
  (``entries = self._entries; entries[k] = v``).

Transitive sets are the least fixed point over the call graph
(references included — a rebound or passed method may run).  A function
is *pure* when its transitive write-set is empty; the audit rules use
the direct sets to find leaf write sites and the transitive sets to
prove invalidation and copy-on-write safety.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass

from repro.devtools.audit.callgraph import CallGraph, _Scope
from repro.devtools.audit.project import (
    FunctionInfo,
    ProjectIndex,
    _setattr_field,
)

#: Method names that mutate the receiver container in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse",
    "appendleft", "extendleft", "popleft", "rotate",
})


@dataclass(frozen=True)
class Write:
    """One direct write: which field of which class, and where."""

    cls: str
    field: str
    lineno: int

    @property
    def key(self) -> tuple[str, str]:
        return (self.cls, self.field)


class MutationAnalysis:
    """Direct and transitive ``(class, field)`` write-sets per function."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.index = graph.index
        self.direct: dict[str, tuple[Write, ...]] = {}
        self.transitive: dict[str, frozenset[tuple[str, str]]] = {}
        for function in self.index.iter_functions():
            self.direct[function.qualname] = tuple(
                self._direct_writes(function)
            )
        self._close()

    def is_pure(self, qualname: str) -> bool:
        """True when the function provably writes no project field."""
        return not self.transitive.get(qualname, frozenset())

    def mutates(self, qualname: str, cls: str, field: str) -> bool:
        return (cls, field) in self.transitive.get(qualname, frozenset())

    # -- direct writes -----------------------------------------------------

    def _direct_writes(self, function: FunctionInfo) -> list[Write]:
        scope = self.graph.scopes[function.qualname]
        writes: list[Write] = []
        for node in ast.walk(function.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    writes.extend(self._store_target(target, scope))
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                writes.extend(self._store_target(node.target, scope))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    writes.extend(self._store_target(target, scope))
            elif isinstance(node, ast.Call):
                writes.extend(self._call_writes(node, scope, function))
        return writes

    def _store_target(
        self, target: ast.expr, scope: _Scope
    ) -> list[Write]:
        """Writes implied by an assignment/del target."""
        if isinstance(target, (ast.Tuple, ast.List)):
            found: list[Write] = []
            for element in target.elts:
                found.extend(self._store_target(element, scope))
            return found
        if isinstance(target, ast.Starred):
            return self._store_target(target.value, scope)
        if isinstance(target, ast.Attribute):
            owner = self._owning_field(target, scope)
            return [Write(*owner, target.lineno)] if owner else []
        if isinstance(target, ast.Subscript):
            # `x[k] = v` mutates whatever container `x` names: a field
            # (`self._cache[k] = v`) or a local alias of one.
            return self._container_writes(target.value, scope,
                                          target.lineno)
        return []

    def _container_writes(
        self, container: ast.expr, scope: _Scope, lineno: int
    ) -> list[Write]:
        """Writes implied by mutating the container expression in place."""
        if isinstance(container, ast.Attribute):
            owner = self._owning_field(container, scope)
            return [Write(*owner, lineno)] if owner else []
        if isinstance(container, ast.Name):
            alias = scope.aliases.get(container.id)
            if alias is not None:
                return [Write(*alias, lineno)]
        if isinstance(container, ast.Subscript):
            # `self._buckets[i][k] = v` still mutates reachable state
            # owned by the outer field.
            return self._container_writes(container.value, scope, lineno)
        return []

    def _call_writes(
        self, node: ast.Call, scope: _Scope, function: FunctionInfo
    ) -> list[Write]:
        filled = _setattr_field(node)
        if filled is not None and node.args:
            receiver = self.graph.infer(node.args[0], scope)
            if receiver.is_class:
                return [Write(receiver.name, filled, node.lineno)]
            # `object.__setattr__(self, ...)` with an untyped receiver:
            # attribute the write to the enclosing class.
            if function.cls is not None:
                return [Write(function.cls, filled, node.lineno)]
            return []
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            # Only container receivers mutate here; a *class* receiver
            # means a project method call, handled by the call graph.
            receiver_type = self.graph.infer(func.value, scope)
            if not receiver_type.is_class:
                return self._container_writes(func.value, scope,
                                              node.lineno)
        return []

    def _owning_field(
        self, attribute: ast.Attribute, scope: _Scope
    ) -> tuple[str, str] | None:
        base = self.graph.infer(attribute.value, scope)
        if base.is_class:
            return (base.name, attribute.attr)
        return None

    # -- transitive closure ------------------------------------------------

    def _close(self) -> None:
        sets: dict[str, set[tuple[str, str]]] = {
            qualname: {write.key for write in writes}
            for qualname, writes in self.direct.items()
        }
        pending = deque(sets)
        queued = set(sets)
        while pending:
            current = pending.popleft()
            queued.discard(current)
            merged = sets[current]
            before = len(merged)
            for callee in self.graph.edges.get(current, ()):
                merged |= sets.get(callee, set())
            if len(merged) != before:
                for caller in self.graph.callers.get(current, ()):
                    if caller not in queued:
                        queued.add(caller)
                        pending.append(caller)
        self.transitive = {
            qualname: frozenset(pairs) for qualname, pairs in sets.items()
        }


def build_analysis(index: ProjectIndex) -> MutationAnalysis:
    """Convenience: call graph + mutation closure in one step."""
    return MutationAnalysis(CallGraph(index))
