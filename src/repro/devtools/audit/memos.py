"""Parsing for the ``# repro:`` audit annotation comments.

The grammar is deliberately tiny and line-based (like the existing
``# repro: ignore[...]`` suppressions), so declarations stay next to the
code they describe and survive plain-text tooling:

``# repro: memo(name: field=_f, depends=[a, b], invalidator=m)``
    Declares a memoized derived view on the enclosing class.  ``field``
    is the instance attribute holding the cached value, ``depends`` the
    instance fields the cached value is computed from, ``invalidator``
    the method that clears it (``none`` for fill-only memos whose
    mutators must clear the storage field directly).  A declaration too
    long for one line may continue over directly following comment
    lines until its parenthesis closes::

        # repro: memo(response: field=_response_cache,
        #   depends=[_rrsets, _delegations],
        #   invalidator=_invalidate_response_cache)

``# repro: published``
    Marks the enclosing class as pre-fork copy-on-write shared.

``# repro: publishes``
    Marks the enclosing function as the pre-fork publication point.

``# repro: pickled-boundary``
    Marks the enclosing class as a worker-boundary spec/summary root
    for the transitive pickle-safety walk.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

_MARKER_RE = re.compile(r"#\s*repro:\s*(?P<body>[a-z-]+.*)$")
_CONTINUATION_RE = re.compile(r"^\s*#\s?(?P<body>.*)$")

_MEMO_RE = re.compile(
    r"memo\(\s*(?P<name>\w+)\s*:"
    r"\s*field\s*=\s*(?P<field>\w+)\s*,"
    r"\s*depends\s*=\s*\[(?P<deps>[^\]]*)\]\s*,"
    r"\s*invalidator\s*=\s*(?P<invalidator>\w+)\s*\)"
)

#: ``invalidator=none`` — the memo has no named invalidator method;
#: every mutator must clear the storage field itself.
NO_INVALIDATOR = "none"


@dataclass(frozen=True)
class MemoDecl:
    """One declared memo: storage field, dependency fields, invalidator."""

    name: str
    field: str
    depends: tuple[str, ...]
    invalidator: str
    lineno: int

    @property
    def has_invalidator(self) -> bool:
        return self.invalidator != NO_INVALIDATOR


class MemoDeclError(ValueError):
    """A ``# repro: memo(...)`` comment that does not parse."""


def scan_marker_lines(text: str) -> dict[int, str]:
    """First line number -> complete marker body for ``# repro:`` comments.

    A marker whose parenthesis does not close on its own line is
    continued over the directly following comment lines.  ``ignore[...]``
    suppressions are the per-line lint's concern and are filtered out.
    """
    comments: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                # Markers live on their own line or after code; either
                # way tokenize hands us exactly the comment text, so a
                # ``# repro:`` inside a string never parses as one.
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return {}
    markers: dict[int, str] = {}
    linenos = sorted(comments)
    position = 0
    while position < len(linenos):
        start = linenos[position]
        match = _MARKER_RE.search(comments[start])
        position += 1
        if match is None:
            continue
        body = match.group("body").strip()
        if body.startswith("ignore"):
            continue
        lineno = start
        while body.count("(") > body.count(")"):
            continuation = _CONTINUATION_RE.match(comments.get(lineno + 1, ""))
            if continuation is None:
                break
            body += " " + continuation.group("body").strip()
            lineno += 1
            if position < len(linenos) and linenos[position] == lineno:
                position += 1
        markers[start] = body
    return markers


def parse_memo_decls(markers: dict[int, str]) -> tuple[MemoDecl, ...]:
    """Every ``memo(...)`` declaration among ``markers``, parsed.

    Raises:
        MemoDeclError: for a ``memo(`` marker that does not match the
            grammar — a silently dropped declaration would silently
            drop its rule coverage too.
    """
    decls: list[MemoDecl] = []
    for lineno in sorted(markers):
        body = markers[lineno]
        if not body.startswith("memo("):
            continue
        match = _MEMO_RE.fullmatch(body)
        if match is None:
            raise MemoDeclError(
                f"line {lineno}: malformed memo declaration {body!r}; "
                f"expected memo(name: field=_f, depends=[a, b], "
                f"invalidator=m)"
            )
        depends = tuple(
            dep.strip() for dep in match.group("deps").split(",")
            if dep.strip()
        )
        decls.append(
            MemoDecl(
                name=match.group("name"),
                field=match.group("field"),
                depends=depends,
                invalidator=match.group("invalidator"),
                lineno=lineno,
            )
        )
    return tuple(decls)
