"""The lint framework: file walking, suppression, and rule plumbing.

A :class:`Rule` inspects one parsed module at a time and yields
:class:`Violation` records with a stable identifier (``REP001`` ...), a
path, a line and a message.  Rules are pure AST analyses — nothing is
imported or executed — so the gate is safe to run on any tree.

Suppression
-----------

A violation is suppressed by a trailing comment on the flagged line::

    started = time.perf_counter()  # repro: ignore[REP001]

``# repro: ignore`` without a rule list silences every rule on that
line; ``# repro: ignore[REP001,REP003]`` silences only those rules.
Suppressions are honoured per line, so they stay visible in review next
to the code they excuse.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: Sentinel stored in a suppression map for "every rule on this line".
SUPPRESS_ALL = "*"

#: Version tag of the shared machine-readable findings shape emitted by
#: both ``repro check --json`` and ``repro audit --json``.  Bump when a
#: field changes meaning or is removed; adding optional fields is
#: backwards-compatible within a version.
FINDINGS_SCHEMA = "repro-findings/2"


@dataclass(frozen=True)
class Violation:
    """One finding: a rule hit at a specific file and line."""

    rule: str
    path: str
    line: int
    message: str
    fix_hint: str | None = None

    def format(self) -> str:
        """Render as the conventional ``path:line: RULE message`` line."""
        rendered = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.fix_hint:
            rendered += f"\n    fix: {self.fix_hint}"
        return rendered

    def as_dict(self) -> dict[str, object]:
        """One finding in the ``repro-findings`` schema (see
        :data:`FINDINGS_SCHEMA`), shared by ``check`` and ``audit``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


def parse_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map line number -> suppressed rule ids (``SUPPRESS_ALL`` for all).

    Comment scanning is line-based on the raw source, so suppressions
    work even on lines the AST attributes to a different statement.
    Rule ids are case-normalised, whitespace inside the bracket list is
    ignored, and multiple markers on one line union their rule sets
    (a bare ``ignore`` anywhere on the line silences everything).
    """
    suppressed: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        rules_on_line: set[str] = set()
        for match in _SUPPRESS_RE.finditer(line):
            rules = match.group("rules")
            if rules is None:
                rules_on_line.add(SUPPRESS_ALL)
            else:
                rules_on_line.update(
                    rule.strip().upper()
                    for rule in rules.split(",") if rule.strip()
                )
        if rules_on_line:
            suppressed[lineno] = frozenset(rules_on_line)
    return suppressed


@dataclass(frozen=True)
class ModuleSource:
    """One parsed module plus everything a rule needs to inspect it."""

    path: Path
    display_path: str
    text: str
    tree: ast.Module
    suppressions: Mapping[int, frozenset[str]]

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return SUPPRESS_ALL in rules or rule_id.upper() in rules


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`rule_id`, :attr:`title` and :attr:`rationale`,
    optionally narrow :meth:`applies_to`, and implement :meth:`check`.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, display_path: str) -> bool:
        """Whether this rule runs on the module at ``display_path``.

        Paths are posix-style strings exactly as the walker produced
        them (e.g. ``src/repro/simulation/metrics.py``).
        """
        return True

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        """Yield every violation found in ``module``."""
        raise NotImplementedError

    def violation(
        self,
        module: ModuleSource,
        node: ast.AST,
        message: str,
        fix_hint: str | None = None,
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``'s line."""
        return Violation(
            rule=self.rule_id,
            path=module.display_path,
            line=getattr(node, "lineno", 0),
            message=message,
            fix_hint=fix_hint,
        )


class ImportMap:
    """Local alias -> dotted origin, for resolving qualified call names.

    ``import numpy as np`` maps ``np`` to ``numpy``;
    ``from random import Random as R`` maps ``R`` to ``random.Random``.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    origin = alias.name if alias.asname else local
                    self._aliases[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def qualified_name(self, node: ast.expr) -> str | None:
        """The dotted origin of ``node`` (a Name or Attribute chain).

        Returns None when the base is not an imported module/name —
        method calls on local objects stay anonymous on purpose.
        """
        parts: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        origin = self._aliases.get(current.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))


@dataclass(frozen=True)
class CheckReport:
    """The outcome of one :func:`run_checks` invocation."""

    violations: tuple[Violation, ...]
    files_checked: int
    suppressed_count: int

    @property
    def clean(self) -> bool:
        return not self.violations


def load_module(path: Path, display_path: str | None = None) -> ModuleSource:
    """Parse one file into a :class:`ModuleSource`.

    Raises:
        SyntaxError: when the file is not valid Python — a gate that
            silently skipped unparseable code would hide exactly the
            breakage it exists to catch.
    """
    text = path.read_text(encoding="utf-8")
    shown = display_path if display_path is not None else path.as_posix()
    tree = ast.parse(text, filename=shown)
    return ModuleSource(
        path=path,
        display_path=shown,
        text=text,
        tree=tree,
        suppressions=parse_suppressions(text),
    )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through as-is).

    Yields in sorted order so reports are stable across filesystems —
    the framework holds itself to the determinism bar it enforces.
    """
    for root in paths:
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        yield from sorted(root.rglob("*.py"))


def run_checks(
    paths: Sequence[Path],
    rules: Iterable[Rule] | None = None,
    exclude: Sequence[str] = (),
) -> CheckReport:
    """Run ``rules`` (default: all registered) over every file in ``paths``.

    ``exclude`` is a list of fnmatch globs matched against each file's
    posix display path; matching files are skipped entirely (they count
    neither as checked nor as suppressed).
    """
    if rules is None:
        from repro.devtools.rules import ALL_RULES

        rules = ALL_RULES
    rule_list = list(rules)
    violations: list[Violation] = []
    suppressed = 0
    files = 0
    for file_path in iter_python_files(paths):
        display = file_path.as_posix()
        if any(fnmatch.fnmatch(display, pattern) for pattern in exclude):
            continue
        module = load_module(file_path)
        files += 1
        for rule in rule_list:
            if not rule.applies_to(module.display_path):
                continue
            for violation in rule.check(module):
                if module.is_suppressed(violation.line, violation.rule):
                    suppressed += 1
                    continue
                violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return CheckReport(
        violations=tuple(violations),
        files_checked=files,
        suppressed_count=suppressed,
    )
