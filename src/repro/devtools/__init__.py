"""Static-analysis tooling that guards the repo's determinism contract.

The replay pipeline promises bitwise-identical results for a given spec
regardless of worker count (see :mod:`repro.experiments.parallel`).  The
:mod:`repro.devtools.checks` framework and the rule modules under
:mod:`repro.devtools.rules` enforce the coding invariants that make the
promise hold — no wall-clock reads in simulation code, seeded RNGs only,
no order-unstable set iteration in metric paths, and so on.

Run it as ``python -m repro check`` (see :mod:`repro.devtools.cli`).
"""

from repro.devtools.checks import (
    CheckReport,
    ModuleSource,
    Rule,
    Violation,
    iter_python_files,
    run_checks,
)
from repro.devtools.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "CheckReport",
    "ModuleSource",
    "Rule",
    "Violation",
    "iter_python_files",
    "run_checks",
]
