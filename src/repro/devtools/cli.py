"""The ``repro check`` subcommand: run the determinism gate from the CLI.

Default targets are ``src/repro``, ``benchmarks`` and ``tests`` relative
to the current directory when they exist, falling back to the installed
package location — so the command works both from a checkout and against
an installed wheel.  Test files are held to a *scoped* rule set
(:data:`TEST_RULE_IDS`): wall-clock and unseeded-randomness reads are
still banned there (a test that reads real time is flaky by
construction), but structural rules about caches, specs and name
hygiene only apply to shipped code.  ``--strict`` additionally shells
out to ``mypy`` and ``ruff`` when they are installed (CI installs them
via the ``dev`` extra; the gate itself has zero dependencies).
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
from pathlib import Path

from repro.devtools.checks import (
    FINDINGS_SCHEMA,
    CheckReport,
    Rule,
    run_checks,
)
from repro.devtools.rules import ALL_RULES

#: The rules test files are held to.  Determinism of *inputs* (time,
#: randomness) matters everywhere; the structural rules (REP003+) encode
#: contracts of shipped code that tests legitimately poke at.
TEST_RULE_IDS = ("REP001", "REP002")

#: Files the gate never checks, as fnmatch globs over posix paths.
#: Scoped and rare by design: prefer a per-line ``# repro: ignore[...]``
#: (visible in review next to the code it excuses) and reserve this
#: list for generated or vendored files where editing lines is not an
#: option.  ``--ignore`` adds one-off entries from the command line.
DEFAULT_IGNORE_GLOBS: tuple[str, ...] = ()


def default_check_paths() -> list[Path]:
    """``src/repro`` + ``benchmarks`` + ``tests`` under cwd, else the
    package itself."""
    paths: list[Path] = []
    source_tree = Path("src") / "repro"
    if source_tree.is_dir():
        paths.append(source_tree)
    else:
        import repro

        package_file = repro.__file__
        if package_file is not None:
            paths.append(Path(package_file).parent)
    for extra in (Path("benchmarks"), Path("tests")):
        if extra.is_dir():
            paths.append(extra)
    return paths


def is_test_path(path: Path) -> bool:
    """True when ``path`` lives under a ``tests`` directory."""
    return "tests" in path.parts


def scoped_rules_for(path: Path) -> tuple[Rule, ...]:
    """The rule set ``path`` is held to (scoped down for test files)."""
    if is_test_path(path):
        return tuple(r for r in ALL_RULES if r.rule_id in TEST_RULE_IDS)
    return ALL_RULES


def add_check_parser(
    subparsers: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> argparse.ArgumentParser:
    """Register the ``check`` subcommand on the main CLI parser."""
    check = subparsers.add_parser(
        "check",
        help="run the determinism/static-analysis gate",
        description=(
            "Run the repo's custom AST lint rules (REP001...) over the "
            "source tree; optionally also mypy/ruff with --strict."
        ),
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=(
            "files or directories to check "
            "(default: src/repro, benchmarks, tests)"
        ),
    )
    check.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help=f"emit findings in the {FINDINGS_SCHEMA} JSON schema",
    )
    check.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="GLOB",
        dest="ignore_globs",
        help=(
            "skip files whose path matches GLOB (fnmatch, repeatable); "
            "extends the built-in ignore list"
        ),
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help="also run mypy and ruff when installed (skipped otherwise)",
    )
    check.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id, title and rationale, then exit",
    )
    check.set_defaults(func=run_check_command)
    return check


def run_check_command(args: argparse.Namespace) -> int:
    """Entry point for ``repro check``; returns the process exit code."""
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = default_check_paths()
    if not paths:
        print("error: no paths to check (run from the repo root or pass "
              "paths explicitly)", file=sys.stderr)
        return 2
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    exclude = (*DEFAULT_IGNORE_GLOBS, *args.ignore_globs)
    report = check_paths(paths, exclude=exclude)

    if args.as_json:
        print(json.dumps(_json_payload(report), indent=2))
    else:
        _print_report(report)

    exit_code = 0 if report.clean else 1
    if args.strict:
        exit_code = max(exit_code, _run_strict_tools(paths, quiet=args.as_json))
    return exit_code


def check_paths(
    paths: list[Path], exclude: tuple[str, ...] = ()
) -> CheckReport:
    """Run the gate over ``paths``, scoping rules per path.

    Paths under a ``tests`` directory get :data:`TEST_RULE_IDS` only;
    everything else gets the full registry.  Results merge into one
    report so callers and output formats see a single run.
    """
    full_scope = [p for p in paths if not is_test_path(p)]
    test_scope = [p for p in paths if is_test_path(p)]
    reports = []
    if full_scope:
        reports.append(run_checks(full_scope, exclude=exclude))
    if test_scope:
        reports.append(run_checks(
            test_scope,
            rules=scoped_rules_for(test_scope[0]),
            exclude=exclude,
        ))
    if len(reports) == 1:
        return reports[0]
    violations = sorted(
        (v for r in reports for v in r.violations),
        key=lambda v: (v.path, v.line, v.rule),
    )
    return CheckReport(
        violations=tuple(violations),
        files_checked=sum(r.files_checked for r in reports),
        suppressed_count=sum(r.suppressed_count for r in reports),
    )


def _json_payload(report: CheckReport) -> dict[str, object]:
    """The shared ``repro-findings`` envelope (same shape as audit)."""
    return {
        "schema": FINDINGS_SCHEMA,
        "tool": "repro-check",
        "findings": [violation.as_dict() for violation in report.violations],
        "summary": {
            "files": report.files_checked,
            "rules": len(ALL_RULES),
            "suppressed": report.suppressed_count,
        },
    }


def _print_report(report: CheckReport) -> None:
    for violation in report.violations:
        print(violation.format())
    suppressed = (
        f", {report.suppressed_count} suppressed"
        if report.suppressed_count else ""
    )
    if report.clean:
        print(f"repro check: {report.files_checked} files clean "
              f"({len(ALL_RULES)} rules{suppressed})")
    else:
        print(
            f"repro check: {len(report.violations)} violation(s) in "
            f"{report.files_checked} files{suppressed}",
            file=sys.stderr,
        )


def _run_strict_tools(paths: list[Path], quiet: bool) -> int:
    """Run mypy/ruff when present; returns the worst exit code observed."""
    worst = 0
    commands = [
        ("mypy", ["mypy", "src/repro" if Path("src/repro").is_dir()
                  else str(paths[0])]),
        ("ruff", ["ruff", "check", *map(str, paths)]),
    ]
    for tool, command in commands:
        if shutil.which(tool) is None:
            if not quiet:
                print(f"strict: {tool} not installed — skipped "
                      f"(pip install '.[dev]')")
            continue
        if not quiet:
            print(f"strict: running {' '.join(command)}")
        completed = subprocess.run(command, check=False)
        worst = max(worst, completed.returncode)
    return worst
