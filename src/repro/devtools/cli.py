"""The ``repro check`` subcommand: run the determinism gate from the CLI.

Default targets are ``src/repro`` and ``benchmarks`` relative to the
current directory when they exist, falling back to the installed package
location — so the command works both from a checkout and against an
installed wheel.  ``--strict`` additionally shells out to ``mypy`` and
``ruff`` when they are installed (CI installs them via the ``dev``
extra; the gate itself has zero dependencies).
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
from pathlib import Path

from repro.devtools.checks import CheckReport, run_checks
from repro.devtools.rules import ALL_RULES


def default_check_paths() -> list[Path]:
    """``src/repro`` + ``benchmarks`` under cwd, else the package itself."""
    paths: list[Path] = []
    source_tree = Path("src") / "repro"
    if source_tree.is_dir():
        paths.append(source_tree)
    else:
        import repro

        package_file = repro.__file__
        if package_file is not None:
            paths.append(Path(package_file).parent)
    benchmarks = Path("benchmarks")
    if benchmarks.is_dir():
        paths.append(benchmarks)
    return paths


def add_check_parser(
    subparsers: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> argparse.ArgumentParser:
    """Register the ``check`` subcommand on the main CLI parser."""
    check = subparsers.add_parser(
        "check",
        help="run the determinism/static-analysis gate",
        description=(
            "Run the repo's custom AST lint rules (REP001...) over the "
            "source tree; optionally also mypy/ruff with --strict."
        ),
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to check (default: src/repro, benchmarks)",
    )
    check.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit violations as a JSON list of {rule, path, line, message}",
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help="also run mypy and ruff when installed (skipped otherwise)",
    )
    check.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id, title and rationale, then exit",
    )
    check.set_defaults(func=run_check_command)
    return check


def run_check_command(args: argparse.Namespace) -> int:
    """Entry point for ``repro check``; returns the process exit code."""
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = default_check_paths()
    if not paths:
        print("error: no paths to check (run from the repo root or pass "
              "paths explicitly)", file=sys.stderr)
        return 2
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    report = run_checks(paths)

    if args.as_json:
        print(json.dumps(
            [violation.as_dict() for violation in report.violations],
            indent=2,
        ))
    else:
        _print_report(report)

    exit_code = 0 if report.clean else 1
    if args.strict:
        exit_code = max(exit_code, _run_strict_tools(paths, quiet=args.as_json))
    return exit_code


def _print_report(report: CheckReport) -> None:
    for violation in report.violations:
        print(violation.format())
    suppressed = (
        f", {report.suppressed_count} suppressed"
        if report.suppressed_count else ""
    )
    if report.clean:
        print(f"repro check: {report.files_checked} files clean "
              f"({len(ALL_RULES)} rules{suppressed})")
    else:
        print(
            f"repro check: {len(report.violations)} violation(s) in "
            f"{report.files_checked} files{suppressed}",
            file=sys.stderr,
        )


def _run_strict_tools(paths: list[Path], quiet: bool) -> int:
    """Run mypy/ruff when present; returns the worst exit code observed."""
    worst = 0
    commands = [
        ("mypy", ["mypy", "src/repro" if Path("src/repro").is_dir()
                  else str(paths[0])]),
        ("ruff", ["ruff", "check", *map(str, paths)]),
    ]
    for tool, command in commands:
        if shutil.which(tool) is None:
            if not quiet:
                print(f"strict: {tool} not installed — skipped "
                      f"(pip install '.[dev]')")
            continue
        if not quiet:
            print(f"strict: running {' '.join(command)}")
        completed = subprocess.run(command, check=False)
        worst = max(worst, completed.returncode)
    return worst
