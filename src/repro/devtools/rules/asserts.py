"""REP007 — no bare ``assert`` in library code.

``python -O`` strips assert statements, so an invariant guarded by one
silently stops being checked in optimised runs.  Library code raises
typed errors from :mod:`repro.dns.errors` (or stdlib exceptions)
instead; test and benchmark code keeps using asserts, which is what
they are for.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.checks import ModuleSource, Rule, Violation


class BareAssertRule(Rule):
    rule_id = "REP007"
    title = "no bare assert in library code"
    rationale = (
        "assert statements vanish under python -O; library invariants "
        "must raise typed errors that survive optimisation"
    )

    def applies_to(self, display_path: str) -> bool:
        name = display_path.rsplit("/", 1)[-1]
        if name.startswith(("test_", "bench_", "conftest")):
            return False
        return "tests/" not in display_path and "benchmarks/" not in display_path

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    module,
                    node,
                    "bare assert is stripped under python -O; raise a "
                    "typed error (see repro.dns.errors) instead",
                )
