"""Rule registry: every determinism/correctness invariant the gate enforces.

Adding a rule means adding a module here and listing an instance in
``ALL_RULES``.  Identifiers are stable and never reused; DESIGN.md's
"Determinism invariants" section documents the rationale for each.
"""

from repro.devtools.rules.asserts import BareAssertRule
from repro.devtools.rules.float_compare import FloatComparisonRule
from repro.devtools.rules.name_mutation import NameMutationRule
from repro.devtools.rules.picklable import PicklableSpecRule
from repro.devtools.rules.private_cache import PrivateCacheAccessRule
from repro.devtools.rules.randomness import UnseededRandomRule
from repro.devtools.rules.set_iteration import SetIterationRule
from repro.devtools.rules.wallclock import WallClockRule

ALL_RULES = (
    WallClockRule(),
    UnseededRandomRule(),
    SetIterationRule(),
    PicklableSpecRule(),
    FloatComparisonRule(),
    NameMutationRule(),
    BareAssertRule(),
    PrivateCacheAccessRule(),
)

__all__ = [
    "ALL_RULES",
    "BareAssertRule",
    "FloatComparisonRule",
    "NameMutationRule",
    "PicklableSpecRule",
    "PrivateCacheAccessRule",
    "SetIterationRule",
    "UnseededRandomRule",
    "WallClockRule",
]
