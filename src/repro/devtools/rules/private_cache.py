"""REP008 — no reaching into the cache's private storage.

``cache._entries`` / ``cache._negative`` bypass the cache API, so code
built on them silently drifts from the documented semantics (and from
what the differential oracle validates).  The cache's own package and
the validation layer are exempt: the first owns the representation, the
second audits it by design.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.checks import ModuleSource, Rule, Violation

_PRIVATE_FIELDS = frozenset(("_entries", "_negative"))

#: Path fragments whose modules legitimately touch the raw storage.
_EXEMPT_FRAGMENTS = ("repro/core/", "repro/validation/")


class PrivateCacheAccessRule(Rule):
    rule_id = "REP008"
    title = "no direct access to the cache's private storage"
    rationale = (
        "cache._entries/_negative bypass the cache API and the "
        "differential oracle; use the public accessors (entry, "
        "get_stale, total_entry_count, ...) or move the code into "
        "core/ or validation/"
    )

    def applies_to(self, display_path: str) -> bool:
        path = display_path.replace("\\", "/")
        return not any(fragment in path for fragment in _EXEMPT_FRAGMENTS)

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in _PRIVATE_FIELDS:
                continue
            yield self.violation(
                module,
                node,
                f"direct access to DnsCache.{node.attr}; go through the "
                f"cache API (or a validation helper) instead",
            )
