"""REP006 — never mutate interned ``Name`` instances.

:class:`repro.dns.name.Name` objects are process-wide interned: one
mutated instance corrupts every holder of that name for the rest of the
process.  ``Name.__setattr__`` raises, but ``object.__setattr__`` walks
straight past the guard — so writes through it (and attribute stores on
``Name``-typed variables) are banned outside ``__new__``/``__init__``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.checks import ModuleSource, Rule, Violation

_ALLOWED_METHODS = frozenset({"__new__", "__init__", "__post_init__"})

#: Expressions that certainly construct/return a Name.
_NAME_PRODUCERS = frozenset({"Name", "root_name"})


def _produces_name(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _NAME_PRODUCERS
    if isinstance(func, ast.Attribute):
        # Name.from_text(...), Name(...).parent() style constructors.
        if isinstance(func.value, ast.Name) and func.value.id == "Name":
            return True
    return False


def _annotation_is_name(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "Name"
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "Name"
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip() == "Name"
    return False


class NameMutationRule(Rule):
    rule_id = "REP006"
    title = "no mutation of interned Name instances"
    rationale = (
        "Name objects are interned process-wide; mutating one corrupts "
        "every holder of that name for the rest of the process"
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        yield from self._walk(module, module.tree, current_function=None)

    def _walk(
        self,
        module: ModuleSource,
        node: ast.AST,
        current_function: str | None,
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function_body(module, child)
                yield from self._walk(module, child, child.name)
            else:
                yield from self._check_setattr_call(
                    module, child, current_function
                )
                yield from self._walk(module, child, current_function)

    def _check_setattr_call(
        self,
        module: ModuleSource,
        node: ast.AST,
        current_function: str | None,
    ) -> Iterator[Violation]:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        is_object_setattr = (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        )
        if is_object_setattr and current_function not in _ALLOWED_METHODS:
            yield self.violation(
                module,
                node,
                "object.__setattr__ outside __new__/__init__ can mutate "
                "interned immutable instances",
            )

    def _check_function_body(
        self, module: ModuleSource, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        """Flag attribute stores on variables known to hold a Name."""
        name_vars: set[str] = set()
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if _annotation_is_name(arg.annotation):
                name_vars.add(arg.arg)
        for item in ast.walk(node):
            if isinstance(item, ast.Assign) and _produces_name(item.value):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        name_vars.add(target.id)
            elif isinstance(item, ast.AnnAssign) and _annotation_is_name(
                item.annotation
            ):
                if isinstance(item.target, ast.Name):
                    name_vars.add(item.target.id)
        if not name_vars:
            return
        for item in ast.walk(node):
            targets: list[ast.expr] = []
            if isinstance(item, ast.Assign):
                targets = item.targets
            elif isinstance(item, (ast.AugAssign, ast.AnnAssign)):
                targets = [item.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in name_vars
                ):
                    yield self.violation(
                        module,
                        target,
                        f"attribute write to Name-typed variable "
                        f"{target.value.id!r}; Name instances are interned "
                        f"and must never be mutated",
                    )
