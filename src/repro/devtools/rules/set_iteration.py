"""REP003 — no iteration over bare sets.

Set iteration order depends on insertion history and hash seeds; when a
loop over a set feeds metrics, event scheduling or zone mutation, two
identical replays can disagree in the last decimal.  Iterate
``sorted(the_set)`` (``Name`` is totally ordered) or keep a list for
order-bearing data.  Membership tests, ``len()``, and set algebra are
all fine — only *iteration* is flagged.

Detection is scope-local and name-based: a variable is set-typed when it
is assigned a set literal/comprehension/constructor or annotated
``set[...]``/``frozenset[...]``, including ``self.<attr>`` assignments
inside a class.  Wrapping the iterable in ``sorted(...)`` clears the
violation naturally (the iterable is then a call, not the set).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.checks import ModuleSource, Rule, Violation

_SET_CALLS = frozenset({"set", "frozenset"})
_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet"})


def _is_set_expression(node: ast.expr, set_names: frozenset[str]) -> bool:
    """Whether ``node`` certainly evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _SET_CALLS
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self":
            return f"self.{node.attr}" in set_names
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_set_expression(node.left, set_names) or _is_set_expression(
            node.right, set_names
        )
    if isinstance(node, ast.IfExp):
        return _is_set_expression(node.body, set_names) and _is_set_expression(
            node.orelse, set_names
        )
    return False


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Name):
        return annotation.id in _SET_ANNOTATIONS
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in _SET_ANNOTATIONS
    return False


def _target_name(target: ast.expr) -> str | None:
    """``x`` for ``x = ...``, ``self.x`` for ``self.x = ...``."""
    if isinstance(target, ast.Name):
        return target.id
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return f"self.{target.attr}"
    return None


class _ScopeCollector(ast.NodeVisitor):
    """Gather set-typed names within one scope (not nested functions)."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scope: analysed separately

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expression(node.value, frozenset(self.set_names)):
            for target in node.targets:
                name = _target_name(target)
                if name is not None:
                    self.set_names.add(name)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        name = _target_name(node.target)
        if name is not None and _annotation_is_set(node.annotation):
            self.set_names.add(name)
        self.generic_visit(node)


class SetIterationRule(Rule):
    rule_id = "REP003"
    title = "no iteration over bare sets"
    rationale = (
        "set iteration order is insertion- and hash-dependent; loops that "
        "feed metrics or event scheduling must run in a defined order "
        "(iterate sorted(...) instead)"
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        yield from self._check_scope(module, module.tree, frozenset())

    def _check_scope(
        self,
        module: ModuleSource,
        scope: ast.AST,
        inherited: frozenset[str],
    ) -> Iterator[Violation]:
        collector = _ScopeCollector()
        body = getattr(scope, "body", [])
        for statement in body:
            collector.visit(statement)
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if _annotation_is_set(arg.annotation):
                    collector.set_names.add(arg.arg)
        set_names = inherited | frozenset(collector.set_names)

        for statement in body:
            yield from self._check_statement(module, statement, set_names)

    def _check_statement(
        self,
        module: ModuleSource,
        node: ast.AST,
        set_names: frozenset[str],
    ) -> Iterator[Violation]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_scope(module, node, set_names)
            return
        if isinstance(node, ast.ClassDef):
            # Methods see the set-typed self attributes collected across
            # the whole class body (constructor assignments included).
            class_collector = _ScopeCollector()
            for item in ast.walk(node):
                if isinstance(item, (ast.Assign, ast.AnnAssign)):
                    class_collector.visit(item)
            class_names = set_names | frozenset(
                name
                for name in class_collector.set_names
                if name.startswith("self.")
            )
            for item in node.body:
                yield from self._check_statement(module, item, class_names)
            return
        if isinstance(node, ast.For) and _is_set_expression(node.iter, set_names):
            yield self._iteration_violation(module, node.iter)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                yield from self._check_statement(module, child, set_names)
                continue
            if isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp,
                                  ast.GeneratorExp)):
                for generator in child.generators:
                    if _is_set_expression(generator.iter, set_names):
                        yield self._iteration_violation(module, generator.iter)
            yield from self._check_statement(module, child, set_names)

    def _iteration_violation(
        self, module: ModuleSource, node: ast.expr
    ) -> Violation:
        return self.violation(
            module,
            node,
            "iteration over a bare set is order-unstable; iterate "
            "sorted(...) or use an order-bearing container",
        )
