"""REP004 — spec/summary dataclasses must be picklable by construction.

:func:`repro.experiments.parallel.run_replays` ships ``*Spec`` objects to
worker processes and ``*Summary`` objects back.  Pickle failures there
surface as opaque ``BrokenProcessPool`` errors at fan-out time, so the
classes are constrained statically instead: module-level ``@dataclass``
definitions, no lambdas anywhere in the class body (default factories
included), and no ``Callable`` fields.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.checks import ModuleSource, Rule, Violation

_SUFFIXES = ("Spec", "Summary")


def _is_spec_like(name: str) -> bool:
    return name.endswith(_SUFFIXES)


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _annotation_names(annotation: ast.expr) -> Iterator[str]:
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Deferred annotations arrive as strings under
            # `from __future__ import annotations` when quoted.
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                continue
            yield from _annotation_names(parsed.body)


class PicklableSpecRule(Rule):
    rule_id = "REP004"
    title = "spec/summary dataclasses picklable by construction"
    rationale = (
        "ReplaySpec/FleetSpec/summaries cross process boundaries; lambdas, "
        "local classes and Callable fields fail to pickle only at fan-out "
        "time, so they are banned statically"
    )

    def applies_to(self, display_path: str) -> bool:
        return "experiments/" in display_path

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and _is_spec_like(node.name):
                yield from self._check_class(module, node)
        # Any *Spec/*Summary class not at module level cannot be pickled
        # at all (pickle resolves classes by qualified module attribute).
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(node):
                    if isinstance(inner, ast.ClassDef) and _is_spec_like(
                        inner.name
                    ):
                        yield self.violation(
                            module,
                            inner,
                            f"class {inner.name} is defined inside a "
                            f"function; local classes cannot be pickled",
                        )

    def _check_class(
        self, module: ModuleSource, node: ast.ClassDef
    ) -> Iterator[Violation]:
        if not _is_dataclass_decorated(node):
            yield self.violation(
                module,
                node,
                f"class {node.name} looks like a worker-boundary spec but "
                f"is not a @dataclass; specs must be plain dataclasses",
            )
        for item in node.body:
            for expr in ast.walk(item):
                if isinstance(expr, ast.Lambda):
                    yield self.violation(
                        module,
                        expr,
                        f"lambda inside {node.name}; lambdas cannot be "
                        f"pickled (use a module-level function)",
                    )
            if isinstance(item, ast.AnnAssign):
                names = set(_annotation_names(item.annotation))
                if "Callable" in names:
                    field = getattr(item.target, "id", "<field>")
                    yield self.violation(
                        module,
                        item,
                        f"field {node.name}.{field} is annotated Callable; "
                        f"callables are not reliably picklable across "
                        f"worker boundaries",
                    )
