"""REP002 — all randomness through explicitly seeded generators.

The module-level :mod:`random` functions share hidden global state, and
``random.Random()`` / ``numpy.random.default_rng()`` without a seed pull
entropy from the OS — either way a replay stops being a pure function of
its spec.  Every RNG must be constructed with an explicit seed argument,
the convention :mod:`repro.hierarchy.builder` documents.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.checks import ImportMap, ModuleSource, Rule, Violation

#: Constructors that are fine *when given at least one argument* (the seed).
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
    }
)

#: Never acceptable: OS entropy by design.
_ALWAYS_BANNED = frozenset({"random.SystemRandom", "secrets.SystemRandom"})


class UnseededRandomRule(Rule):
    rule_id = "REP002"
    title = "no unseeded or module-level randomness"
    rationale = (
        "module-level random functions share global state and unseeded "
        "generators draw OS entropy; replays must be pure functions of "
        "their seeds"
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = imports.qualified_name(node.func)
            if qualified is None:
                continue
            if qualified in _ALWAYS_BANNED:
                yield self.violation(
                    module,
                    node,
                    f"{qualified} draws OS entropy and can never replay "
                    f"deterministically",
                )
            elif qualified in _SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield self.violation(
                        module,
                        node,
                        f"{qualified}() without a seed argument; pass an "
                        f"explicit seed so replays are reproducible",
                    )
            elif _is_module_level_random(qualified):
                yield self.violation(
                    module,
                    node,
                    f"module-level {qualified}() uses hidden global RNG "
                    f"state; draw from an explicitly seeded generator",
                )


def _is_module_level_random(qualified: str) -> bool:
    if qualified.startswith("random."):
        # random.Random is handled above; everything else on the module
        # (random.random, random.choice, random.seed, ...) is global state.
        return qualified.count(".") == 1
    if qualified.startswith("numpy.random."):
        # Legacy numpy global-state functions: np.random.rand, .seed, ...
        tail = qualified.rsplit(".", 1)[-1]
        return tail[:1].islower()
    return False
