"""REP001 — no wall-clock reads in simulation code.

Virtual time flows from :class:`repro.simulation.engine.SimulationEngine`
only.  A single ``time.time()`` in a replay path makes results depend on
the host's clock and destroys the bitwise serial-vs-parallel guarantee.
Benchmark harnesses (``benchmarks/bench_*.py``) legitimately measure
wall-clock time and are out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.checks import ImportMap, ModuleSource, Rule, Violation

_BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    rule_id = "REP001"
    title = "no wall-clock reads in simulation code"
    rationale = (
        "sim time must flow from SimulationEngine; wall-clock reads make "
        "replay results depend on the host and break bitwise determinism"
    )

    def applies_to(self, display_path: str) -> bool:
        name = display_path.rsplit("/", 1)[-1]
        return "benchmarks/" not in display_path and not name.startswith("bench_")

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = imports.qualified_name(node.func)
            if qualified in _BANNED:
                yield self.violation(
                    module,
                    node,
                    f"wall-clock read {qualified}() in simulation code; "
                    f"derive time from SimulationEngine.now instead",
                )
