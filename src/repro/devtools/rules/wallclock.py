"""REP001 — no wall-clock reads in simulation code.

Virtual time flows from :class:`repro.simulation.engine.SimulationEngine`
only.  A single ``time.time()`` in a replay path makes results depend on
the host's clock and destroys the bitwise serial-vs-parallel guarantee.

Two subtrees legitimately live on the wall clock and are out of scope:
benchmark harnesses (``benchmarks/bench_*.py``) and the serve front end
(``repro/serve/``), whose whole job is real time — its ``WallClock``
satisfies the same ``Clock`` protocol the simulation's virtual clock
does, so the core underneath it stays in scope.  The exemption is the
path prefix only: core/ and simulation/ code stays banned even when
serve/ calls into it (``repro audit`` REP013 guards that direction).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.checks import ImportMap, ModuleSource, Rule, Violation

_BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    rule_id = "REP001"
    title = "no wall-clock reads in simulation code"
    rationale = (
        "sim time must flow from SimulationEngine; wall-clock reads make "
        "replay results depend on the host and break bitwise determinism"
    )

    def applies_to(self, display_path: str) -> bool:
        name = display_path.rsplit("/", 1)[-1]
        if "benchmarks/" in display_path or name.startswith("bench_"):
            return False
        # The serve front end is wall-clock territory by design (REP002
        # unseeded-randomness still applies there).
        return "repro/serve/" not in display_path

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = imports.qualified_name(node.func)
            if qualified in _BANNED:
                yield self.violation(
                    module,
                    node,
                    f"wall-clock read {qualified}() in simulation code; "
                    f"derive time from SimulationEngine.now instead",
                )
