"""REP005 — no float equality in metric/analysis code.

``x == 0.3`` silently depends on rounding history; in the modules that
compute the paper's failure rates and availability model a drifting
equality flips figure cells.  Compare with an inequality, an explicit
tolerance (``math.isclose``) or restructure around integers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.checks import ModuleSource, Rule, Violation


def _is_float_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_operand(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    return False


class FloatComparisonRule(Rule):
    rule_id = "REP005"
    title = "no float ==/!= in metrics or analysis code"
    rationale = (
        "float equality depends on rounding history; a drifting comparison "
        "flips figure cells silently — use inequalities or math.isclose"
    )

    def applies_to(self, display_path: str) -> bool:
        return (
            display_path.endswith("simulation/metrics.py")
            or "analysis/" in display_path
        )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_operand(left) or _is_float_operand(right):
                    yield self.violation(
                        module,
                        node,
                        "float equality comparison; use an inequality, "
                        "math.isclose, or integer arithmetic",
                    )
                    break
