"""Bench F3 — regenerate Figure 3 (expiry-to-next-query gap CDFs)."""

from repro.experiments import figures


def bench_figure3(run_once, scenario, record_artifact):
    result = run_once(figures.figure3, scenario)
    record_artifact("figure3", result.render())
    # Paper: "in absolute time almost all gaps are less than 5 days".
    assert result.fraction_under_5_days > 0.95
    # Relative gaps vary widely: a visible mass both below and above 1 TTL.
    below_one = result.cdf_fraction.probability_at_or_below(1.0)
    assert 0.1 < below_one < 0.95
