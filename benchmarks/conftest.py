"""Bench fixtures: the shared scenario and artifact recording.

Every bench regenerates one paper artifact (table or figure), prints its
text rendering, and writes it to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can reference stable outputs.

Scale defaults to SMALL; override with ``REPRO_SCALE=tiny|small|medium``.
Each bench runs its workload exactly once (``benchmark.pedantic`` with
one round): the artifact is a simulation result, not a microbenchmark,
so wall-clock is reported but repetition would only re-prove determinism.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.scenarios import Scale, make_scenario

RESULTS_DIR = Path(__file__).parent / "results"

#: Machine-readable bench outputs live next to the benches (committed, so
#: the perf trajectory is visible across PRs).
JSON_DIR = Path(__file__).parent


@pytest.fixture(scope="session")
def scenario():
    """The standard scenario at the env-selected scale."""
    return make_scenario(Scale.from_env(default=Scale.SMALL))


@pytest.fixture
def record_artifact():
    """Callable(name, text): print and persist a rendered artifact."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[artifact written to {path}]")

    return _record


@pytest.fixture
def record_bench_json():
    """Callable(name, payload): persist machine-readable bench numbers.

    Writes ``benchmarks/<name>.json`` (e.g. ``BENCH_parallel.json``);
    unlike the ``results/`` text artifacts these are meant to be diffed
    across PRs.
    """

    def _record(name: str, payload: dict) -> None:
        path = JSON_DIR / f"{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\n[bench json written to {path}]")

    return _record


@pytest.fixture
def run_once(benchmark):
    """Callable(func, *args, **kwargs): run the experiment once, timed."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
