"""Adversary-layer overhead bench (writes BENCH_attacks.json).

Replays the same (trace, scheme) four ways — adversary layer absent, an
*inert* AdversarySpec attached (nothing mounted), a full NXNS campaign
undefended, and the same campaign behind a fetch budget — and records
each leg's wall clock against the adversary-off baseline, plus the two
determinism guarantees the layer makes: the inert leg's summary must
equal the baseline's exactly (adversary-off byte-identity), and two
attacked runs must produce byte-identical event logs.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.core.config import ResilienceConfig
from repro.experiments.harness import run_replay
from repro.obs import ObservationSpec
from repro.simulation.adversary import AdversarySpec, NxnsAttackSpec

HOUR = 3600.0


def _timed_replay(scenario, config, adversary=None, observe=None):
    started = time.perf_counter()
    result = run_replay(
        scenario.built,
        scenario.trace("TRC1"),
        config,
        adversary=adversary,
        observe=observe,
    )
    return result, time.perf_counter() - started


def bench_adversary_overhead(benchmark, scenario, record_bench_json):
    config = ResilienceConfig.refresh()
    defended = config.with_defenses(fetch_budget=8)
    nxns = AdversarySpec(
        nxns=NxnsAttackSpec(
            start=scenario.attack_start,
            duration=3 * HOUR,
            queries_per_minute=10.0,
            fan_out=10,
            delegations=20,
        )
    )

    def sweep():
        with tempfile.TemporaryDirectory() as tmp:
            tmp_path = Path(tmp)
            baseline, baseline_seconds = _timed_replay(scenario, config)
            inert, inert_seconds = _timed_replay(
                scenario, config, adversary=AdversarySpec()
            )

            def observed(tag):
                return ObservationSpec(
                    events_path=str(tmp_path / f"events-{tag}.jsonl")
                )

            attacked, attacked_seconds = _timed_replay(
                scenario, config, adversary=nxns, observe=observed("a")
            )
            _timed_replay(
                scenario, config, adversary=nxns, observe=observed("b")
            )
            guarded, guarded_seconds = _timed_replay(
                scenario, defended, adversary=nxns
            )
            identical = (
                (tmp_path / "events-a.jsonl").read_bytes()
                == (tmp_path / "events-b.jsonl").read_bytes()
            )
            return (baseline, baseline_seconds, inert, inert_seconds,
                    attacked, attacked_seconds, guarded, guarded_seconds,
                    identical)

    (baseline, baseline_seconds, inert, inert_seconds, attacked,
     attacked_seconds, guarded, guarded_seconds,
     identical) = benchmark.pedantic(sweep, rounds=1, iterations=1)

    payload = {
        "scale": scenario.scale.value,
        "stub_queries": baseline.metrics.sr_queries,
        "attack_queries": attacked.metrics.attack_stub_queries,
        "baseline_seconds": round(baseline_seconds, 3),
        "inert_spec_seconds": round(inert_seconds, 3),
        "attacked_seconds": round(attacked_seconds, 3),
        "defended_seconds": round(guarded_seconds, 3),
        "inert_spec_overhead": round(inert_seconds / baseline_seconds - 1.0, 3),
        "attacked_overhead": round(
            attacked_seconds / baseline_seconds - 1.0, 3
        ),
        "amplification_factor": round(
            attacked.metrics.amplification_factor, 3
        ),
        "defended_amplification_factor": round(
            guarded.metrics.amplification_factor, 3
        ),
        "defended_budget_exhaustions": guarded.metrics.budget_exhaustions,
        "identical_event_logs": identical,
        "inert_summary_identical": inert.to_summary() == baseline.to_summary(),
    }
    record_bench_json("BENCH_attacks", payload)
    print(
        f"\nbaseline {baseline_seconds:.2f} s, attacked "
        f"{attacked_seconds:.2f} s (+{payload['attacked_overhead']:.1%}), "
        f"amplification {payload['amplification_factor']:.1f}x -> "
        f"{payload['defended_amplification_factor']:.1f}x defended, "
        f"deterministic: {identical}"
    )
    assert identical
    assert payload["inert_summary_identical"]
    assert (
        payload["defended_amplification_factor"]
        <= payload["amplification_factor"]
    )
