"""Bench F10 — regenerate Figure 10 (refresh + long IRR TTLs, 1-7 days)."""

from repro.experiments import figures


def bench_figure10(run_once, scenario, record_artifact):
    grid = run_once(figures.figure10, scenario)
    record_artifact("figure10", grid.render())
    # Longer TTLs help monotonically...
    assert grid.column_mean_sr("7 Day TTL") <= grid.column_mean_sr("1 Day TTL") + 0.01
    # ...but 5 days is already nearly as good as 7 (gap CDF saturation).
    five = grid.column_mean_sr("5 Day TTL")
    seven = grid.column_mean_sr("7 Day TTL")
    assert abs(five - seven) < 0.02
    # And the scheme crushes vanilla.
    assert grid.column_mean_sr("5 Day TTL") < 0.5 * grid.column_mean_sr("DNS")
