"""Extension benches: IRR churn cost and response-time comparison.

These quantify two §4 claims the paper argues but does not plot:

* long TTLs trade a wider obsolete-IRR window (latency penalty, no
  availability loss) — `bench_churn`;
* refresh/long-TTL *improve* response time by avoiding tree walks —
  `bench_latency`.
"""

from repro.experiments.churn import ChurnSpec
from repro.experiments.churn import run as run_churn_experiment
from repro.experiments.latency import _latency_experiment
from repro.hierarchy.builder import HierarchyConfig
from repro.workload.generator import WorkloadConfig


def bench_churn(run_once, record_artifact):
    result = run_once(
        run_churn_experiment,
        ChurnSpec(
            hierarchy=HierarchyConfig(num_tlds=10, num_slds=300,
                                      num_providers=4),
            workload=WorkloadConfig(duration_days=7.0, queries_per_day=6_000,
                                    num_clients=120),
            churn_fraction=0.25,
        ),
    )
    record_artifact("churn", result.render())
    for row in result.rows:
        assert row.sr_failure_rate < 0.005, row.label
    assert result.row("refresh+ttl7d").stale_touches >= \
        result.row("vanilla").stale_touches


def bench_latency(run_once, scenario, record_artifact):
    result = run_once(_latency_experiment, scenario)
    record_artifact("latency", result.render())
    assert result.row("refresh+ttl7d").mean_latency <= \
        result.row("vanilla").mean_latency
    assert result.row("combination").cs_queries_per_lookup <= \
        result.row("vanilla").cs_queries_per_lookup
