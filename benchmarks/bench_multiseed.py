"""Extension bench: multi-seed replication of the headline comparison.

Reports mean ± std across resolver seeds for the main schemes — the
honest form of the single-replay numbers in Figures 4/5/9, and the check
that the paper's ordering is robust to simulation randomness.
"""

from repro.experiments.multiseed import _multiseed_experiment


def bench_multiseed(run_once, scenario, record_artifact):
    result = run_once(_multiseed_experiment, scenario, seeds=(0, 1, 2))
    record_artifact("multiseed", result.render())
    vanilla = result.row("vanilla")
    combo = result.row("combo+a-lfu3+ttl3d")
    # Ordering robust across seeds: separated by well over the spreads.
    assert combo.sr.mean + 2 * combo.sr.std < vanilla.sr.mean - 2 * vanilla.sr.std
