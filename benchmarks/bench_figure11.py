"""Bench F11 — regenerate Figure 11 (refresh + A-LFU renewal + long TTL)."""

from repro.experiments import figures

TRACE_LIMIT = 3


def bench_figure11(run_once, scenario, record_artifact):
    grid = run_once(figures.figure11, scenario, trace_limit=TRACE_LIMIT)
    record_artifact("figure11", grid.render())
    # Paper: with renewal on top, a 3-day TTL already reaches the maximum
    # resilience; longer TTLs add nothing.
    three = grid.column_mean_sr("3 Day TTL")
    seven = grid.column_mean_sr("7 Day TTL")
    assert abs(three - seven) < 0.02
    assert three < grid.column_mean_sr("DNS") / 5
