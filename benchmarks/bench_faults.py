"""Fault-injection overhead bench (writes BENCH_faults.json).

Replays the same (trace, scheme, attack) three ways — fault layer
absent, an *inert* FaultSpec attached (injector built, nothing drawn),
and the full fault regime (partial-intensity attack, background loss,
jitter, retry policy) — and records each leg's wall clock against the
faults-off baseline, plus the determinism check (two faulted runs must
produce byte-identical event logs).

The acceptance bar mirrors ``bench_obs.py``: with no injector attached
the network executes the pre-fault code path, so the "off" leg must not
move; the inert leg bounds the cost of merely carrying an injector; and
the inert leg's summary must equal the baseline's exactly (the
faults-disabled byte-identity guarantee).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.core.config import ResilienceConfig, RetryPolicy
from repro.experiments.harness import AttackSpec, run_replay
from repro.obs import ObservationSpec
from repro.simulation.faults import FaultSpec

HOUR = 3600.0


def _timed_replay(scenario, config, attack, faults=None, observe=None):
    started = time.perf_counter()
    result = run_replay(
        scenario.built,
        scenario.trace("TRC1"),
        config,
        attack=attack,
        faults=faults,
        observe=observe,
    )
    return result, time.perf_counter() - started


def bench_fault_injection_overhead(benchmark, scenario, record_bench_json):
    config = ResilienceConfig.refresh()
    blackout = AttackSpec(start=scenario.attack_start, duration=6 * HOUR)
    partial = AttackSpec(start=scenario.attack_start, duration=6 * HOUR,
                         intensity=0.5)
    faulted_config = config.with_retries(RetryPolicy(max_tries=2))
    fault_spec = FaultSpec(background_loss=0.02, jitter=0.1)

    def sweep():
        with tempfile.TemporaryDirectory() as tmp:
            tmp_path = Path(tmp)
            baseline, baseline_seconds = _timed_replay(
                scenario, config, blackout
            )
            inert, inert_seconds = _timed_replay(
                scenario, config, blackout, faults=FaultSpec()
            )

            def observed(tag):
                return ObservationSpec(
                    events_path=str(tmp_path / f"events-{tag}.jsonl")
                )

            faulted, faulted_seconds = _timed_replay(
                scenario, faulted_config, partial, faults=fault_spec,
                observe=observed("a"),
            )
            _timed_replay(
                scenario, faulted_config, partial, faults=fault_spec,
                observe=observed("b"),
            )
            identical = (
                (tmp_path / "events-a.jsonl").read_bytes()
                == (tmp_path / "events-b.jsonl").read_bytes()
            )
            return (baseline, baseline_seconds, inert, inert_seconds,
                    faulted, faulted_seconds, identical)

    (baseline, baseline_seconds, inert, inert_seconds, faulted,
     faulted_seconds, identical) = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    payload = {
        "scale": scenario.scale.value,
        "stub_queries": baseline.metrics.sr_queries,
        "baseline_seconds": round(baseline_seconds, 3),
        "inert_spec_seconds": round(inert_seconds, 3),
        "faulted_seconds": round(faulted_seconds, 3),
        "inert_spec_overhead": round(inert_seconds / baseline_seconds - 1.0, 3),
        "faulted_overhead": round(faulted_seconds / baseline_seconds - 1.0, 3),
        "baseline_sr_attack_failure_rate": round(
            baseline.sr_attack_failure_rate, 6
        ),
        "faulted_sr_attack_failure_rate": round(
            faulted.sr_attack_failure_rate, 6
        ),
        "identical_event_logs": identical,
        "inert_summary_identical": inert.to_summary() == baseline.to_summary(),
    }
    record_bench_json("BENCH_faults", payload)
    print(
        f"\nbaseline {baseline_seconds:.2f} s, inert {inert_seconds:.2f} s "
        f"(+{payload['inert_spec_overhead']:.1%}), faulted "
        f"{faulted_seconds:.2f} s (+{payload['faulted_overhead']:.1%}), "
        f"deterministic: {identical}"
    )
    assert identical
    assert payload["inert_summary_identical"]
