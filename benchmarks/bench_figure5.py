"""Bench F5 — regenerate Figure 5 (TTL refresh under 3-24 h attacks)."""

from repro.experiments import figures


def bench_figure5(run_once, scenario, record_artifact):
    vanilla = figures.figure4(scenario)
    grid = run_once(figures.figure5, scenario)
    record_artifact("figure5", grid.render())
    # Paper: refresh cuts the failure percentage substantially relative
    # to Figure 4, with the gap widening for longer attacks.  Every cell
    # must improve; the 24 h column must improve by >= 25 % relative.
    for column in grid.columns:
        for trace in grid.sr:
            assert grid.sr_value(trace, column) < \
                vanilla.sr_value(trace, column)
    assert grid.column_mean_sr("24 h") < 0.75 * vanilla.column_mean_sr("24 h")
    assert grid.column_mean_sr("6 h") < vanilla.column_mean_sr("6 h")
