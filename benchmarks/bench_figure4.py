"""Bench F4 — regenerate Figure 4 (vanilla DNS under 3-24 h attacks)."""

from repro.experiments import figures


def bench_figure4(run_once, scenario, record_artifact):
    grid = run_once(figures.figure4, scenario)
    record_artifact("figure4", grid.render())
    # Failures grow with attack duration...
    assert grid.column_mean_sr("24 h") > grid.column_mean_sr("3 h")
    # ...and the attack visibly hurts the current DNS.
    assert grid.column_mean_sr("6 h") > 0.15
    # CS failures exceed SR failures (caches still answer stubs).
    assert grid.column_mean_cs("6 h") > grid.column_mean_sr("6 h")
