"""Bench T1 — regenerate Table 1 (trace statistics, requests-out by replay)."""

from repro.experiments import figures


def bench_table1(run_once, scenario, record_artifact):
    result = run_once(figures.table1, scenario)
    record_artifact("table1", result.render())
    # Sanity: caching keeps outbound traffic in the order of inbound.
    for row in result.rows:
        assert row.requests_out is not None
        assert row.requests_out < 1.5 * row.requests_in
