"""Bench F6 — regenerate Figure 6 (refresh + LRU renewal, credits 1/3/5)."""

from repro.experiments import figures

TRACE_LIMIT = 3  # renewal grids are the costliest; 3 traces by default


def bench_figure6(run_once, scenario, record_artifact):
    grid = run_once(figures.figure6, scenario, trace_limit=TRACE_LIMIT)
    record_artifact("figure6", grid.render())
    assert grid.column_mean_sr("LRU 5") <= grid.column_mean_sr("LRU 1") + 0.01
    assert grid.column_mean_sr("LRU 3") < grid.column_mean_sr("DNS")
