"""Bench T2 — regenerate Table 2 (message overhead per scheme)."""

from repro.experiments import figures


def bench_table2(run_once, scenario, record_artifact):
    result = run_once(figures.table2, scenario)
    record_artifact("table2", result.render())
    mean = result.mean_overhead
    # Paper shapes: refresh and long-TTL *reduce* traffic; renewal adds
    # traffic; adaptive renewal adds the most; the combination is cheap.
    assert mean["Refresh"] < 0.0
    assert mean["Long-TTL"] < 0.0
    assert mean["LRU"] > 0.0 and mean["LFU"] > 0.0
    assert mean["A-LFU"] > mean["LFU"]
    assert mean["A-LRU"] > mean["LRU"]
    assert mean["Combination"] < mean["A-LFU"] / 2
