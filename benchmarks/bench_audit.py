"""Whole-program audit performance bench (writes BENCH_audit.json).

``repro audit`` runs in CI on every push and as a pre-commit hook, so
its wall clock is a developer-facing budget, not a curiosity: the gate
is only as good as people's willingness to keep it on.  This bench
audits the real shipped tree (parse every module, build the call graph
and mutation closure, run REP010–REP013) and fails when a full pass
exceeds :data:`FULL_TREE_BUDGET_SECONDS`.

The budget is generous (the audit runs in well under two seconds on a
laptop) so only an algorithmic regression — an accidentally quadratic
closure, a rebuilt index per rule — trips it, not runner noise.
"""

from __future__ import annotations

import time
from pathlib import Path

import repro
from repro.devtools.audit.rules import run_audit

SRC_ROOT = Path(repro.__file__).resolve().parent

#: Hard ceiling for one full-tree audit pass, asserted here and in CI.
FULL_TREE_BUDGET_SECONDS = 5.0


def bench_whole_program_audit(run_once, record_bench_json):
    def full_audit():
        started = time.perf_counter()
        report = run_audit([SRC_ROOT])
        return report, time.perf_counter() - started

    report, elapsed = run_once(full_audit)

    assert report.violations == (), (
        "the shipped tree must audit clean; fix or baseline findings "
        "before committing"
    )
    assert elapsed < FULL_TREE_BUDGET_SECONDS, (
        f"full-tree audit took {elapsed:.2f}s, over the "
        f"{FULL_TREE_BUDGET_SECONDS:.0f}s budget — profile the index/"
        f"call-graph build before shipping"
    )

    record_bench_json("BENCH_audit", {
        "budget_seconds": FULL_TREE_BUDGET_SECONDS,
        "full_tree_seconds": round(elapsed, 3),
        "modules": report.modules,
        "functions": report.functions,
        "classes": report.classes,
        "memos": report.memos,
        "violations": len(report.violations),
        "modules_per_second": (
            round(report.modules / elapsed, 1) if elapsed else None
        ),
    })
