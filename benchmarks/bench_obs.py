"""Observability overhead bench (writes BENCH_obs.json).

Replays the same (trace, scheme, attack) three ways — observation off,
flight-recorder only, and the full sink stack (ring + time series +
JSONL + Prometheus) — and records the wall-clock overhead of each
against the unobserved baseline, plus the per-stage timings and the
determinism check (two fully-observed runs must produce byte-identical
event logs).

The acceptance bar lives on the *disabled* path: with no observation
requested the simulator executes the same bytecode as before the
subsystem existed, so the "off" leg is the control both for this bench
and for ``bench_micro.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec, run_replay
from repro.obs import ObservationSpec, StageTimings

HOUR = 3600.0


def _timed_replay(scenario, observe, timings=None):
    attack = AttackSpec(start=scenario.attack_start, duration=6 * HOUR)
    started = time.perf_counter()
    result = run_replay(
        scenario.built,
        scenario.trace("TRC1"),
        ResilienceConfig.combination(),
        attack=attack,
        observe=observe,
        timings=timings,
    )
    return result, time.perf_counter() - started


def bench_observability_overhead(benchmark, scenario, record_bench_json):
    def sweep():
        with tempfile.TemporaryDirectory() as tmp:
            tmp_path = Path(tmp)
            baseline, baseline_seconds = _timed_replay(scenario, observe=None)

            ring_only = ObservationSpec(ring_size=512)
            _, ring_seconds = _timed_replay(scenario, observe=ring_only)

            def full_spec(tag):
                return ObservationSpec(
                    events_path=str(tmp_path / f"events-{tag}.jsonl"),
                    metrics_path=str(tmp_path / f"metrics-{tag}.prom"),
                    bin_width=HOUR,
                )

            timings = StageTimings()
            full_result, full_seconds = _timed_replay(
                scenario, observe=full_spec("a"), timings=timings
            )
            _timed_replay(scenario, observe=full_spec("b"))
            identical = (
                (tmp_path / "events-a.jsonl").read_bytes()
                == (tmp_path / "events-b.jsonl").read_bytes()
            ) and (
                (tmp_path / "metrics-a.prom").read_bytes()
                == (tmp_path / "metrics-b.prom").read_bytes()
            )
            return (baseline, baseline_seconds, ring_seconds, full_result,
                    full_seconds, timings, identical)

    (baseline, baseline_seconds, ring_seconds, full_result, full_seconds,
     timings, identical) = benchmark.pedantic(sweep, rounds=1, iterations=1)

    payload = {
        "scale": scenario.scale.value,
        "stub_queries": baseline.metrics.sr_queries,
        "events_emitted": full_result.event_count,
        "baseline_seconds": round(baseline_seconds, 3),
        "ring_only_seconds": round(ring_seconds, 3),
        "full_obs_seconds": round(full_seconds, 3),
        "ring_only_overhead": round(ring_seconds / baseline_seconds - 1.0, 3),
        "full_obs_overhead": round(full_seconds / baseline_seconds - 1.0, 3),
        "stage_timings": timings.as_dict(),
        "identical_event_logs": identical,
    }
    record_bench_json("BENCH_obs", payload)
    print(
        f"\nbaseline {baseline_seconds:.2f} s, ring {ring_seconds:.2f} s "
        f"(+{payload['ring_only_overhead']:.1%}), full {full_seconds:.2f} s "
        f"(+{payload['full_obs_overhead']:.1%}), "
        f"{full_result.event_count:,} events "
        f"(deterministic: {identical})"
    )
    assert identical
    assert baseline.event_count == 0
