"""Bench F7 — regenerate Figure 7 (refresh + LFU renewal, credits 1/3/5)."""

from repro.experiments import figures

TRACE_LIMIT = 3


def bench_figure7(run_once, scenario, record_artifact):
    grid = run_once(figures.figure7, scenario, trace_limit=TRACE_LIMIT)
    record_artifact("figure7", grid.render())
    assert grid.column_mean_sr("LFU 5") <= grid.column_mean_sr("LFU 1") + 0.01
    assert grid.column_mean_sr("LFU 3") < grid.column_mean_sr("DNS")
