"""Serial vs parallel replay throughput (writes BENCH_parallel.json).

Runs the standard scheme-grid sweep (schemes × week traces, 6 h attack)
twice — once fully in-process, once fanned over worker processes — and
records wall-clock, queries/second and the speedup as machine-readable
JSON so the perf trajectory is tracked across PRs.

The attainable speedup is bounded by the cores the machine actually has
(``cpu_count`` is recorded alongside the numbers); the determinism check
(`identical`) must hold everywhere regardless.
"""

from __future__ import annotations

import os
import time

from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec
from repro.experiments.parallel import ReplaySpec, run_replays

#: Worker count for the parallel leg (the acceptance bar uses 4).
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))


def bench_parallel_speedup(benchmark, scenario, record_bench_json):
    attack = AttackSpec(start=scenario.attack_start, duration=6 * 3600.0)
    schemes = (ResilienceConfig.vanilla(), ResilienceConfig.refresh())
    trace_names = ("TRC1", "TRC2")
    specs = [
        ReplaySpec.for_scenario(scenario, trace_name, config, attack=attack)
        for config in schemes
        for trace_name in trace_names
    ]
    total_queries = sum(
        len(scenario.trace(trace_name)) for trace_name in trace_names
    ) * len(schemes)

    def compare():
        serial_started = time.perf_counter()
        serial = run_replays(specs, workers=1)
        serial_seconds = time.perf_counter() - serial_started

        parallel_started = time.perf_counter()
        fanned = run_replays(specs, workers=BENCH_WORKERS)
        parallel_seconds = time.perf_counter() - parallel_started
        return serial, serial_seconds, fanned, parallel_seconds

    serial, serial_seconds, fanned, parallel_seconds = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )

    identical = fanned == serial
    speedup = serial_seconds / parallel_seconds
    payload = {
        "scale": scenario.scale.value,
        "workers": BENCH_WORKERS,
        "cpu_count": os.cpu_count(),
        "replays": len(specs),
        "total_queries": total_queries,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "serial_queries_per_second": round(total_queries / serial_seconds, 1),
        "parallel_queries_per_second": round(
            total_queries / parallel_seconds, 1
        ),
        "speedup": round(speedup, 3),
        "identical_outputs": identical,
    }
    record_bench_json("BENCH_parallel", payload)
    print(
        f"\nserial {serial_seconds:.2f} s vs {BENCH_WORKERS} workers "
        f"{parallel_seconds:.2f} s -> speedup {speedup:.2f}x "
        f"(identical outputs: {identical})"
    )
    assert identical
