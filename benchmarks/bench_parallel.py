"""Serial vs parallel replay throughput (writes BENCH_parallel.json).

Runs the standard scheme-grid sweep (schemes × week traces, 6 h attack)
twice — once fully in-process, once fanned over worker processes — and
records wall-clock, queries/second and the speedup as machine-readable
JSON so the perf trajectory is tracked across PRs.

The attainable speedup is bounded by the cores the process can actually
run on, which is the *affinity mask* (``usable_cores``), not the machine
total (``cpu_count``): inside containers or under ``taskset`` the mask
is often smaller, and extra workers only time-slice one another while
paying fork and IPC overhead.  The requested worker count is therefore
clamped to ``usable_cores`` (``workers_clamped`` records when that
happened); speedup is judged against the *effective* worker count.  The
determinism check (``identical_outputs``) must hold everywhere
regardless of worker count.
"""

from __future__ import annotations

import os
import time

from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec
from repro.experiments.parallel import ReplaySpec, run_replays, usable_cpu_count

#: Worker count for the parallel leg (the acceptance bar uses 4).
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))


def bench_parallel_speedup(benchmark, scenario, record_bench_json):
    attack = AttackSpec(start=scenario.attack_start, duration=6 * 3600.0)
    schemes = (ResilienceConfig.vanilla(), ResilienceConfig.refresh())
    trace_names = ("TRC1", "TRC2")
    specs = [
        ReplaySpec.for_scenario(scenario, trace_name, config, attack=attack)
        for config in schemes
        for trace_name in trace_names
    ]
    total_queries = sum(
        len(scenario.trace(trace_name)) for trace_name in trace_names
    ) * len(schemes)

    usable_cores = usable_cpu_count()
    effective_workers = min(BENCH_WORKERS, usable_cores)
    workers_clamped = effective_workers < BENCH_WORKERS
    if workers_clamped:
        print(
            f"\n[warn] requested {BENCH_WORKERS} workers but only "
            f"{usable_cores} usable core(s) in the affinity mask; "
            f"clamping to {effective_workers}"
        )

    def compare():
        serial_started = time.perf_counter()
        serial = run_replays(specs, workers=1)
        serial_seconds = time.perf_counter() - serial_started

        parallel_started = time.perf_counter()
        fanned = run_replays(specs, workers=effective_workers)
        parallel_seconds = time.perf_counter() - parallel_started
        return serial, serial_seconds, fanned, parallel_seconds

    serial, serial_seconds, fanned, parallel_seconds = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )

    identical = fanned == serial
    speedup = serial_seconds / parallel_seconds
    payload = {
        "scale": scenario.scale.value,
        "workers_requested": BENCH_WORKERS,
        "workers": effective_workers,
        "workers_clamped": workers_clamped,
        "cpu_count": os.cpu_count(),
        "usable_cores": usable_cores,
        "replays": len(specs),
        "total_queries": total_queries,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "serial_queries_per_second": round(total_queries / serial_seconds, 1),
        "parallel_queries_per_second": round(
            total_queries / parallel_seconds, 1
        ),
        "speedup": round(speedup, 3),
        "speedup_per_worker": round(speedup / effective_workers, 3),
        "identical_outputs": identical,
    }
    record_bench_json("BENCH_parallel", payload)
    print(
        f"\nserial {serial_seconds:.2f} s vs {effective_workers} workers "
        f"{parallel_seconds:.2f} s -> speedup {speedup:.2f}x "
        f"(identical outputs: {identical})"
    )
    assert identical
