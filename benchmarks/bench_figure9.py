"""Bench F9 — regenerate Figure 9 (refresh + A-LFU renewal, credits 1/3/5).

A-LFU is the paper's best renewal policy: SR failures < 2.5 %, CS
failures < 10 %, an order of magnitude better than vanilla DNS.
"""

from repro.experiments import figures

TRACE_LIMIT = 3


def bench_figure9(run_once, scenario, record_artifact):
    grid = run_once(figures.figure9, scenario, trace_limit=TRACE_LIMIT)
    record_artifact("figure9", grid.render())
    vanilla = grid.column_mean_sr("DNS")
    best = grid.column_mean_sr("A-LFU 5")
    # Paper headline: one order of magnitude improvement; SR < 2.5 %.
    assert best < vanilla / 8
    assert best < 0.025
    assert grid.column_mean_cs("A-LFU 5") < 0.10
