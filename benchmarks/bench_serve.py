"""Serve front-end throughput (writes BENCH_serve.json).

Starts the real asyncio UDP front end on a loopback port over the
TINY zone tree, drives it with the closed-loop selftest load driver
(8 clients, one query in flight each — the paper's stub model), and
records throughput and the latency tail as machine-readable JSON so
the serving path's perf trajectory is tracked across PRs like the
replay benches.

This is a wall-clock bench by nature (real sockets, real timers); it
lives under ``benchmarks/`` which the REP001 gate exempts.
"""

from __future__ import annotations

import asyncio
import os

from repro.experiments.scenarios import Scale
from repro.serve.driver import selftest
from repro.serve.spec import ServeSpec

#: Total queries the closed-loop driver sends (env-overridable so CI
#: can shrink it).
BENCH_QUERIES = int(os.environ.get("REPRO_SERVE_QUERIES", "1000"))
BENCH_CLIENTS = int(os.environ.get("REPRO_SERVE_CLIENTS", "8"))


def bench_serve_throughput(run_once, record_bench_json):
    scale = Scale.from_env(default=Scale.TINY)
    spec = ServeSpec(
        host="127.0.0.1",
        port=0,
        metrics_port=-1,
        scale=scale,
        seed=7,
        selftest=True,
        selftest_queries=BENCH_QUERIES,
        selftest_clients=BENCH_CLIENTS,
    )
    report = run_once(lambda: asyncio.run(selftest(spec)))
    print(f"\n{report.render()}")
    assert report.answered == report.queries, (
        f"{report.failed} of {report.queries} queries failed against a "
        f"healthy loopback front end"
    )
    payload = report.as_dict()
    for key in ("duration_seconds", "qps", "p50_ms", "p99_ms"):
        payload[key] = round(float(payload[key]), 3)
    record_bench_json(
        "BENCH_serve",
        {
            "scale": scale.value,
            "scheme": spec.scheme,
            "seed": spec.seed,
            "clients": BENCH_CLIENTS,
            **payload,
        },
    )
