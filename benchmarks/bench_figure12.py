"""Bench F12 — regenerate Figure 12 (cache occupancy over the month trace)."""

from repro.experiments import figures


def bench_figure12(run_once, scenario, record_artifact):
    result = run_once(figures.figure12, scenario)
    text = result.render()
    # Also dump the raw zone/record series for plotting.
    series_lines = []
    for label, series in result.series.items():
        points = ", ".join(
            f"({day:.2f}, {records})"
            for day, records in series.records_series()[::4]
        )
        series_lines.append(f"{label} records(day): {points}")
    record_artifact("figure12", text + "\n\n" + "\n".join(series_lines))

    # Paper shapes: enhanced schemes cache ~2-3x the objects of vanilla
    # DNS, and the absolute footprint stays tiny (tens of MB at paper
    # scale; well under that here).
    for label, ratio in result.occupancy_ratios.items():
        if label == "DNS":
            continue
        assert 1.0 <= ratio < 8.0, (label, ratio)
    combo = result.occupancy_ratios["Combination"]
    assert combo > 1.2
