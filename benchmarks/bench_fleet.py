"""Extension bench: fleet-wide attack impact (paper §6's damage currency).

All five organisations replay concurrently over shared virtual time
under the standard 6 h root+TLD attack; the aggregate failed-lookup
count is the quantity §6's maximum-damage attacker optimises.
"""

from repro.experiments.fleet import fleet_attack_comparison


def bench_fleet(run_once, scenario, record_artifact):
    results = run_once(fleet_attack_comparison, scenario, trace_limit=3)
    text = "\n\n".join(result.render() for result in results.values())
    record_artifact("fleet", text)
    vanilla = results["vanilla"]
    combo = results["combo+a-lfu3+ttl3d"]
    assert combo.aggregate_sr_failure_rate() < \
        vanilla.aggregate_sr_failure_rate() / 5
    assert combo.total_failed_lookups() < vanilla.total_failed_lookups()
