"""Extension benches: mechanism ablation, serve-stale comparator, other
attack classes, maximum-damage exploration, scale sensitivity.

These go beyond the paper's figures (see DESIGN.md §7).
"""

from repro.experiments.ablations import (
    capacity_ablation,
    holddown_ablation,
    mechanism_ablation,
    other_attack_classes,
    scale_sensitivity,
    stale_comparison,
)
from repro.experiments.max_damage import _max_damage_experiment
from repro.experiments.scenarios import Scale


def bench_mechanism_ablation(run_once, scenario, record_artifact):
    result = run_once(mechanism_ablation, scenario)
    record_artifact("ablation_mechanisms", result.render())
    assert result.sr_rate("combination") <= result.sr_rate("vanilla")
    assert result.sr_rate("refresh + renew") <= result.sr_rate("refresh only")


def bench_stale_comparator(run_once, scenario, record_artifact):
    result = run_once(stale_comparison, scenario)
    record_artifact("comparator_serve_stale", result.render())
    assert result.sr_rate("serve-stale") <= result.sr_rate("vanilla")


def bench_other_attack_classes(run_once, scenario, record_artifact):
    result = run_once(other_attack_classes, scenario)
    record_artifact("other_attack_classes", result.render())
    # Single-zone attacks have bounded blast radius vs root+TLD attacks.
    for label, sr, _, _ in result.rows:
        assert sr < 0.35, label


def bench_cache_capacity(run_once, scenario, record_artifact):
    result = run_once(capacity_ablation, scenario)
    record_artifact("ablation_capacity", result.render())
    # Generous caches preserve the combination's resilience; starved
    # caches thrash back toward (or past) vanilla levels.
    assert result.sr_rate("combination / 4x zones") <= \
        result.sr_rate("combination / 1x zones") + 0.01
    assert result.sr_rate("combination / 1x zones") <= \
        result.sr_rate("combination / 0.25x zones") + 0.01


def bench_holddown(run_once, scenario, record_artifact):
    result = run_once(holddown_ablation, scenario)
    record_artifact("ablation_holddown", result.render())
    # Hold-down slashes failed-query volume without changing outcomes
    # much: compare total messages, not failure rates.
    rows = {label: messages for label, _, _, messages in result.rows}
    assert rows["vanilla + holddown 10m"] < rows["vanilla"]


def bench_max_damage(run_once, scenario, record_artifact):
    result = run_once(_max_damage_experiment, scenario)
    record_artifact("max_damage", result.render())
    assert result.rate_of("greedy (oracle)", "vanilla") >= \
        result.rate_of("random", "vanilla")


def bench_scale_sensitivity(run_once, record_artifact):
    result = run_once(scale_sensitivity, scales=(Scale.TINY, Scale.SMALL))
    record_artifact("scale_sensitivity", result.render())
    # Vanilla failure rates should be in the same ballpark across scales.
    vanilla = [sr for scale, scheme, sr, _ in result.rows if scheme == "vanilla"]
    assert max(vanilla) < 3.5 * min(vanilla)
