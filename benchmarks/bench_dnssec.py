"""Extension bench: the DNSSEC deployment experiment (paper §6).

Shape asserted: validation amplifies the root+TLD attack against the
unmodified DNS (key chains break even when answers are cached), while
the combination scheme — extended to cover DNSSEC IRRs — neutralises the
amplification.
"""

from repro.experiments.dnssec import DnssecSpec
from repro.experiments.dnssec import run as run_dnssec_experiment
from repro.hierarchy.builder import HierarchyConfig
from repro.workload.generator import WorkloadConfig


def bench_dnssec(run_once, record_artifact):
    result = run_once(
        run_dnssec_experiment,
        DnssecSpec(
            hierarchy=HierarchyConfig(num_tlds=12, num_slds=400,
                                      num_providers=4, dnssec_fraction=1.0),
            workload=WorkloadConfig(duration_days=7.0, queries_per_day=6_000,
                                    num_clients=150),
        ),
    )
    record_artifact("dnssec", result.render())
    assert result.row("vanilla+dnssec").sr_failure_rate > \
        result.row("vanilla").sr_failure_rate
    assert result.row("combo+a-lfu3+ttl3d+dnssec").sr_failure_rate < \
        result.row("vanilla+dnssec").sr_failure_rate / 5
