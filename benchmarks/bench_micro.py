"""Microbenchmarks of the simulator's hot paths.

Unlike the figure benches (one-shot experiment regeneration), these are
genuine repeated-timing microbenchmarks: cache operations, a full
resolution, and replay throughput — useful to keep the simulator fast
enough for PAPER-scale runs.
"""

import pytest

from repro.core.cache import DnsCache
from repro.core.caching_server import CachingServer
from repro.core.config import ResilienceConfig
from repro.dns.name import Name
from repro.dns.ranking import Rank
from repro.dns.records import ResourceRecord, RRset
from repro.dns.rrtypes import RRType
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import ReplayMetrics
from repro.simulation.network import Network

from tests.helpers import build_mini_internet, name


@pytest.fixture
def warm_cache():
    cache = DnsCache()
    for index in range(500):
        rrset = RRset.from_records([
            ResourceRecord(Name.from_text(f"h{index}.z.test"), RRType.A,
                           3600.0, f"10.1.{index // 250}.{index % 250}")
        ])
        cache.put(rrset, Rank.AUTH_ANSWER, now=0.0)
    return cache


def bench_cache_get_hit(benchmark, warm_cache):
    owner = Name.from_text("h250.z.test")
    result = benchmark(warm_cache.get, owner, RRType.A, 100.0)
    assert result is not None


def bench_cache_put_refresh(benchmark, warm_cache):
    rrset = RRset.from_records([
        ResourceRecord(Name.from_text("h250.z.test"), RRType.A, 3600.0,
                       "10.1.1.0")
    ])
    benchmark(warm_cache.put, rrset, Rank.AUTH_ANSWER, 100.0, True)


def bench_best_zone_lookup(benchmark, warm_cache):
    ns = RRset.from_records([
        ResourceRecord(Name.from_text("z.test"), RRType.NS, 3600.0,
                       Name.from_text("ns1.z.test"))
    ])
    warm_cache.put(ns, Rank.AUTH_AUTHORITY, now=0.0)
    qname = Name.from_text("deep.very.h1.z.test")
    result = benchmark(warm_cache.best_zone_for, qname, 100.0)
    assert result == Name.from_text("z.test")


def bench_advance_to_idle(benchmark):
    """Engine clock advance with an empty queue — the replay's inner loop
    between trace queries is dominated by this call."""
    engine = SimulationEngine()
    times = iter(range(1, 50_000_000))

    def advance():
        engine.advance_to(float(next(times)))

    benchmark(advance)


def bench_ancestors_walk(benchmark):
    """Name.ancestors() on a deep name (cached per interned instance)."""
    qname = Name.from_text("www.deep.sub.zone.example.test")

    def walk():
        total = 0
        for ancestor in qname.ancestors():
            total += ancestor.depth()
        return total

    assert benchmark(walk) == 21


def bench_name_wire_length(benchmark):
    """wire_length() is called per outgoing message for byte accounting."""
    qname = Name.from_text("www.deep.sub.zone.example.test")
    assert benchmark(qname.wire_length) == 32


def bench_live_record_count(benchmark, warm_cache):
    """Figure 12's occupancy probe — incremental, no longer an O(n) scan."""
    times = iter(range(1, 50_000_000))

    def count():
        return warm_cache.live_record_count(100.0 + next(times) * 1e-6)

    assert benchmark(count) == 500


def bench_cold_resolution(benchmark):
    mini = build_mini_internet()

    def resolve_cold():
        server = CachingServer(
            root_hints=mini.tree.root_hints(),
            network=Network(mini.tree),
            clock=SimulationEngine(),
            config=ResilienceConfig.vanilla(),
            metrics=ReplayMetrics(),
        )
        return server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)

    result = benchmark(resolve_cold)
    assert not result.failed


def bench_warm_resolution(benchmark):
    mini = build_mini_internet()
    server = CachingServer(
        root_hints=mini.tree.root_hints(),
        network=Network(mini.tree),
        clock=SimulationEngine(),
        config=ResilienceConfig.vanilla(),
        metrics=ReplayMetrics(),
    )
    server.handle_stub_query(name("www.example.test."), RRType.A, 0.0)
    result = benchmark(
        server.handle_stub_query, name("www.example.test."), RRType.A, 1.0
    )
    assert not result.failed


def bench_replay_throughput(benchmark):
    """Queries/second through a full TINY replay (reported as time/run)."""
    from repro.experiments.harness import run_replay
    from repro.experiments.scenarios import Scale, make_scenario

    scenario = make_scenario(Scale.TINY)
    trace = scenario.trace("TRC1")

    def replay():
        return run_replay(scenario.built, trace, ResilienceConfig.refresh())

    result = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert result.metrics.sr_queries == len(trace)


def bench_attack_schedule_lookup(benchmark):
    """block_intensity on a many-window schedule — one bisect plus one
    dict probe per CS→AN query, replacing the old linear window scan
    (the attack-grid sweep calls this on every simulated query)."""
    from repro.simulation.attack import AttackSchedule, AttackWindow

    mini = build_mini_internet()
    schedule = AttackSchedule(mini.tree)
    for index in range(50):
        start = index * 100.0
        schedule.add_window(
            AttackWindow(start, start + 150.0, frozenset([name("test.")]),
                         intensity=0.5 + (index % 2) * 0.5)
        )
    address = mini.address_of("ns1.test.")
    times = iter(range(1, 50_000_000))

    def lookup():
        return schedule.block_intensity(address, float(next(times) % 6000))

    benchmark(lookup)
    assert schedule.block_intensity(address, 50.0) > 0.0
