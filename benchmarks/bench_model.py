"""Extension bench: closed-form availability model vs the simulator.

Validates the renewal-theory model of `repro.analysis.model` — a piece
of analysis the paper does not attempt — against full trace replays.
Success = per-scheme agreement within tens of percent AND the right
scheme ordering.
"""

from repro.experiments.model_validation import model_validation


def bench_model_validation(run_once, scenario, record_artifact):
    result = run_once(model_validation, scenario)
    record_artifact("model_validation", result.render())
    for row in result.rows:
        assert row.relative_error < 0.35, row.scheme
    predicted = [row.predicted for row in result.rows]
    assert predicted == sorted(predicted)
