"""Bench F8 — regenerate Figure 8 (refresh + A-LRU renewal, credits 1/3/5)."""

from repro.experiments import figures

TRACE_LIMIT = 3


def bench_figure8(run_once, scenario, record_artifact):
    grid = run_once(figures.figure8, scenario, trace_limit=TRACE_LIMIT)
    record_artifact("figure8", grid.render())
    # Adaptive LRU should beat plain behaviour decisively vs vanilla.
    assert grid.column_mean_sr("A-LRU 3") < 0.5 * grid.column_mean_sr("DNS")
