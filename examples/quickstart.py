#!/usr/bin/env python3
"""Quickstart: build a DNS world, resolve names, survive an attack.

Runs in a few seconds::

    python examples/quickstart.py
"""

from repro import (
    AttackSpec,
    ResilienceConfig,
    RRType,
    Scale,
    make_scenario,
    run_replay,
)
from repro.core.caching_server import CachingServer
from repro.simulation.engine import SimulationEngine
from repro.simulation.network import Network
from repro.simulation.metrics import ReplayMetrics


def explore_resolution() -> None:
    """Drive one caching server by hand and watch it work."""
    print("=== 1. A caching server resolving names ===")
    scenario = make_scenario(Scale.TINY)
    tree = scenario.built.tree

    engine = SimulationEngine()
    server = CachingServer(
        root_hints=tree.root_hints(),
        network=Network(tree),
        engine=engine,
        config=ResilienceConfig.refresh(),
        metrics=ReplayMetrics(),
    )

    # Pick a couple of real names from the synthetic catalog.
    zones = list(scenario.built.catalog)[:3]
    for index, zone in enumerate(zones):
        host = scenario.built.catalog[zone][0]
        resolution = server.handle_stub_query(host, RRType.A, float(index))
        answer = resolution.answer.records[0].data if resolution.answer else "-"
        print(f"  {host}  ->  {answer}   [{resolution.outcome.value}]")

    # A repeat query is served from cache.
    repeat = server.handle_stub_query(
        scenario.built.catalog[zones[0]][0], RRType.A, 10.0
    )
    print(f"  repeat query outcome: {repeat.outcome.value}")
    print(f"  zones with cached IRRs: {server.cached_zone_count(10.0)}")
    print()


def compare_schemes_under_attack() -> None:
    """The paper in one screen: replay a 7-day trace, attack on day 7."""
    print("=== 2. Root+TLD DDoS on day 7: who keeps resolving? ===")
    scenario = make_scenario(Scale.TINY)
    trace = scenario.trace("TRC1")
    attack = AttackSpec()  # 6 h attack on the root and every TLD

    schemes = [
        ("vanilla DNS", ResilienceConfig.vanilla()),
        ("TTL refresh", ResilienceConfig.refresh()),
        ("refresh + A-LFU renewal", ResilienceConfig.refresh_renew("a-lfu", 5)),
        ("refresh + 7-day IRR TTLs", ResilienceConfig.refresh_long_ttl(7)),
        ("combination (paper's pick)", ResilienceConfig.combination()),
    ]
    print(f"  trace: {len(trace):,} queries over 7 days; attack: 6 h\n")
    print(f"  {'scheme':<28} {'SR failures':>12} {'CS failures':>12}")
    for label, config in schemes:
        result = run_replay(scenario.built, trace, config, attack=attack)
        print(
            f"  {label:<28} {result.sr_attack_failure_rate:>11.1%} "
            f"{result.cs_attack_failure_rate:>11.1%}"
        )
    print()
    print("  The paper's claim: refresh+renewal (or long TTLs) improve")
    print("  availability during the attack by about an order of magnitude.")


if __name__ == "__main__":
    explore_resolution()
    compare_schemes_under_attack()
