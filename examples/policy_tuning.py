#!/usr/bin/env python3
"""Operator's guide: choose a renewal policy and credit level.

For each (policy, credit) pair this prints the resilience gained (failure
rate under the standard 6 h attack) against the price paid (extra DNS
messages and extra cache memory) — the trade-off behind the paper's
Figures 6-9, Table 2 and Figure 12.

Usage::

    python examples/policy_tuning.py
    REPRO_SCALE=small python examples/policy_tuning.py
"""

from repro import AttackSpec, ResilienceConfig, Scale, make_scenario, run_replay

POLICIES = ("lru", "lfu", "a-lru", "a-lfu")
CREDITS = (1, 3, 5)
HOUR = 3600.0


def steady_records(result, after=2 * 86400.0):
    tail = [s.records_cached for s in result.metrics.memory_samples
            if s.time >= after]
    return sum(tail) / len(tail) if tail else 0.0


def main() -> None:
    scale = Scale.from_env(default=Scale.TINY)
    scenario = make_scenario(scale)
    trace = scenario.trace("TRC1")
    attack = AttackSpec(start=scenario.attack_start, duration=6 * HOUR)

    baseline = run_replay(scenario.built, trace, ResilienceConfig.vanilla(),
                          attack=attack, memory_sample_interval=6 * HOUR)
    base_messages = baseline.metrics.total_outgoing
    base_memory = steady_records(baseline)
    print(f"vanilla: {baseline.sr_attack_failure_rate:.1%} SR failures, "
          f"{base_messages:,} messages\n")

    print(f"{'policy':<8} {'credit':>6} {'SR failures':>12} "
          f"{'msg overhead':>13} {'cache size':>11}")
    for policy in POLICIES:
        for credit in CREDITS:
            config = ResilienceConfig.refresh_renew(policy, credit)
            result = run_replay(scenario.built, trace, config, attack=attack,
                                memory_sample_interval=6 * HOUR)
            overhead = result.metrics.message_overhead_vs(baseline.metrics)
            memory_ratio = (steady_records(result) / base_memory
                            if base_memory else float("nan"))
            print(
                f"{policy:<8} {credit:>6} "
                f"{result.sr_attack_failure_rate:>11.2%} "
                f"{overhead:>+12.1%} {memory_ratio:>10.2f}x"
            )
        print()

    print("Reading the table (paper's conclusions):")
    print(" * adaptive policies resist best but cost the most messages;")
    print(" * plain LRU/LFU are cheap but leave short-TTL zones exposed;")
    print(" * pairing renewal with 3-day IRR TTLs (the combination) keeps")
    print("   the resilience while *reducing* total DNS traffic.")


if __name__ == "__main__":
    main()
