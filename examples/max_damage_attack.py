#!/usr/bin/env python3
"""Exploring the paper's §6 "maximum damage attack" question.

Given a budget of zones an attacker can flood, which targets hurt most —
and does the paper's combination scheme still blunt the damage?  This
drives the greedy (trace-oracle) explorer and compares it against the
root+TLD attack the paper simulates and a random-target strawman.

Usage::

    python examples/max_damage_attack.py
    REPRO_SCALE=small python examples/max_damage_attack.py
"""

from repro import Scale, make_scenario
from repro.api import EXPERIMENTS
from repro.experiments.max_damage import (
    MaxDamageSpec,
    greedy_targets,
    upcoming_query_counts,
)

DAY = 86400.0
HOUR = 3600.0


def main() -> None:
    scale = Scale.from_env(default=Scale.TINY)
    scenario = make_scenario(scale)
    trace = scenario.trace("TRC1")
    start, end = 6 * DAY, 6 * DAY + 6 * HOUR

    # Which zones carry the most upcoming traffic?
    counts = upcoming_query_counts(trace, scenario, start, end)
    print("busiest subtrees in the attack window:")
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])[:8]
    for zone, count in ranked:
        print(f"  {str(zone):<24} {count:>6} queries transit it")
    print()

    budget = 5
    targets = greedy_targets(trace, scenario, budget, start, end)
    print(f"greedy target list (budget {budget}): "
          + ", ".join(str(t) for t in targets))
    print()

    result = EXPERIMENTS["maxdamage"].run(
        MaxDamageSpec(scale=scale, budget=budget)
    )
    print(result.render())
    print()
    print("Notes (paper §6): the oracle needs every resolver's future")
    print("queries, so it is not a practical attack — but even against it,")
    print("the combination scheme holds failures near the no-enhancement")
    print("floor, because cached IRRs bypass the flooded zones.")


if __name__ == "__main__":
    main()
