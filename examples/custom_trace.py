#!/usr/bin/env python3
"""Replaying your own traces: the text trace format end-to-end.

The paper evaluated on university packet traces.  This example shows the
substitution path for real data: export a trace to the text format, edit
or replace it with one derived from your resolver logs, read it back and
replay it against the simulator.

Usage::

    python examples/custom_trace.py
"""

import tempfile
from pathlib import Path

from repro import (
    AttackSpec,
    ResilienceConfig,
    Scale,
    Trace,
    TraceQuery,
    make_scenario,
    read_trace,
    run_replay,
    write_trace,
)

DAY = 86400.0


def main() -> None:
    scenario = make_scenario(Scale.TINY)

    # 1. Export a generated trace to the interchange format.
    generated = scenario.trace("TRC1")
    workdir = Path(tempfile.mkdtemp(prefix="repro-traces-"))
    path = workdir / "trc1.trace"
    write_trace(generated, path)
    size_kb = path.stat().st_size / 1024
    print(f"wrote {len(generated):,} queries to {path} ({size_kb:.0f} KiB)")
    with open(path) as handle:
        for line in list(handle)[:5]:
            print(f"  | {line.rstrip()}")

    # 2. Read it back (this is where your own file would enter).
    loaded = read_trace(path)
    print(f"re-read {len(loaded):,} queries, duration "
          f"{loaded.duration / DAY:g} days\n")

    # 3. Or build a trace programmatically (e.g. from resolver logs).
    zones = list(scenario.built.catalog)
    hand_written = Trace(
        name="hand-rolled",
        duration=7 * DAY,
        queries=[
            TraceQuery(time=float(i * 450), client_id=i % 3,
                       qname=scenario.built.catalog[zones[i % 8]][0])
            for i in range(1200)
        ],
    )
    hand_written.validate_ordering()

    # 4. Replay both against the same hierarchy and attack.
    for trace in (loaded, hand_written):
        result = run_replay(
            scenario.built, trace, ResilienceConfig.refresh(),
            attack=AttackSpec(),
        )
        print(
            f"replayed {trace.name:>11}: {result.metrics.sr_queries:,} queries, "
            f"{result.sr_attack_failure_rate:.1%} failed during the attack"
        )

    print("\nTo use a real trace: convert your resolver log to")
    print("'time_seconds client_id qname qtype' lines and point read_trace at it.")


if __name__ == "__main__":
    main()
