#!/usr/bin/env python3
"""Attack-resilience study: the paper's Figures 4/5/9 scenario in one run.

Replays the TRC1 trace under root+TLD attacks of increasing duration and
prints the failure grid for vanilla DNS, TTL refresh, and the strongest
renewal policy — the heart of the paper's evaluation.

Usage::

    python examples/attack_resilience.py            # tiny scale, seconds
    REPRO_SCALE=small python examples/attack_resilience.py
"""

from repro import AttackSpec, ResilienceConfig, Scale, make_scenario, run_replay

HOUR = 3600.0
DURATIONS_HOURS = (3, 6, 12, 24)

SCHEMES = [
    ("vanilla", ResilienceConfig.vanilla()),
    ("refresh", ResilienceConfig.refresh()),
    ("refresh + A-LFU(5)", ResilienceConfig.refresh_renew("a-lfu", 5)),
    ("combination", ResilienceConfig.combination()),
]


def main() -> None:
    scale = Scale.from_env(default=Scale.TINY)
    scenario = make_scenario(scale)
    trace = scenario.trace("TRC1")
    print(f"scale={scale.value}: {scenario.built.tree.zone_count():,} zones, "
          f"{len(trace):,} queries over 7 days")
    print("attack: root + all TLDs blocked starting at the beginning of day 7\n")

    header = f"{'scheme':<20}" + "".join(f"{h:>3} h attack" + "  " for h in DURATIONS_HOURS)
    for metric in ("SR", "CS"):
        print(f"--- failed queries from {'stub resolvers' if metric == 'SR' else 'the caching server'} ---")
        print(header)
        for label, config in SCHEMES:
            cells = []
            for hours in DURATIONS_HOURS:
                attack = AttackSpec(start=scenario.attack_start,
                                    duration=hours * HOUR)
                result = run_replay(scenario.built, trace, config, attack=attack)
                rate = (result.sr_attack_failure_rate if metric == "SR"
                        else result.cs_attack_failure_rate)
                cells.append(f"{rate:>10.1%}")
            print(f"{label:<20}" + "  ".join(cells))
        print()

    print("Expected shapes (paper): failures grow with duration; refresh")
    print("halves them; renewal/combination cut them by ~10x.")


if __name__ == "__main__":
    main()
