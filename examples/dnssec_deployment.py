#!/usr/bin/env python3
"""DNSSEC under DDoS: why key records need the paper's IRR treatment.

Paper §6 notes that DNSSEC introduces new infrastructure records (DNSKEY,
DS) and that the refresh/renewal/long-TTL techniques must extend to
them.  This example shows what happens if they don't: on a fully signed
hierarchy, a validating resolver turns a root+TLD attack into SERVFAILs
even for answers it has cached — unless the combination scheme keeps the
key chain alive.

Usage::

    python examples/dnssec_deployment.py
"""

from repro import Name, RRType, sign_irrs
from repro.api import EXPERIMENTS
from repro.experiments.dnssec import DnssecSpec
from repro.hierarchy.builder import HierarchyConfig
from repro.workload.generator import WorkloadConfig


def main() -> None:
    print("=== 1. What signing adds to a zone's IRRs ===")
    from repro.dns.records import InfrastructureRecordSet, ResourceRecord, RRset

    zone = Name.from_text("ucla.edu")
    ns = RRset.from_records(
        [ResourceRecord(zone, RRType.NS, 3600, Name.from_text("ns1.ucla.edu"))]
    )
    glue = (RRset.from_records(
        [ResourceRecord(Name.from_text("ns1.ucla.edu"), RRType.A, 3600,
                        "164.67.128.1")]
    ),)
    irrs = InfrastructureRecordSet(zone, ns, glue)
    signed = sign_irrs(irrs)
    for rrset in signed.all_rrsets():
        for record in rrset:
            print(f"  {record}")
    print(f"  ({irrs.record_count()} records before signing, "
          f"{signed.record_count()} after)\n")

    print("=== 2. The amplification experiment ===")
    result = EXPERIMENTS["dnssec"].run(DnssecSpec(
        hierarchy=HierarchyConfig(num_tlds=8, num_slds=150,
                                  num_providers=3, dnssec_fraction=1.0),
        workload=WorkloadConfig(duration_days=7.0, queries_per_day=2_500,
                                num_clients=60),
    ))
    print(result.render())
    print()
    print("Reading the table: with validation on (+dnssec rows), vanilla")
    print("DNS fails MORE under attack — cached answers become useless when")
    print("the TLD keys can't be re-verified.  The combination scheme,")
    print("extended over DNSSEC IRRs, erases the difference.")


if __name__ == "__main__":
    main()
