"""End-to-end checks of the paper's qualitative claims at test scale.

Each test replays a full 7-day trace through the simulator and asserts a
*shape* the paper reports — not absolute numbers (those depend on the
testbed), but who wins, orderings and rough factors.  The bench suite
reproduces the same shapes at larger scale.
"""

import pytest

from repro.core.config import ResilienceConfig
from repro.experiments.harness import AttackSpec, run_replay
from repro.experiments.scenarios import Scale, make_scenario

HOUR = 3600.0


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(Scale.TINY)


@pytest.fixture(scope="module")
def trace(scenario):
    return scenario.trace("TRC1")


def attack(hours=6.0):
    return AttackSpec(duration=hours * HOUR)


def sr_rate(scenario, trace, config, hours=6.0):
    result = run_replay(scenario.built, trace, config, attack=attack(hours))
    return result.sr_attack_failure_rate


class TestHeadlineClaims:
    def test_vanilla_suffers_badly_under_attack(self, scenario, trace):
        rate = sr_rate(scenario, trace, ResilienceConfig.vanilla())
        assert rate > 0.25  # a large share of lookups fail

    def test_refresh_cuts_failures_substantially(self, scenario, trace):
        # Paper: "at least 5_% lower compared to the current system" in
        # most cases.  Our synthetic workload is less skewed than the
        # 2006 university traces, and with RFC 2308 negative answers
        # (SOA-only authority) fewer responses carry refresh vehicles,
        # so we require a solid cut rather than a full halving; the
        # 24 h column of bench_figure5 shows the gap widening with
        # duration exactly as the paper's figures do.
        vanilla = sr_rate(scenario, trace, ResilienceConfig.vanilla())
        refresh = sr_rate(scenario, trace, ResilienceConfig.refresh())
        assert refresh < vanilla * 0.85
        long_attack_vanilla = sr_rate(scenario, trace,
                                      ResilienceConfig.vanilla(), hours=24)
        long_attack_refresh = sr_rate(scenario, trace,
                                      ResilienceConfig.refresh(), hours=24)
        assert long_attack_refresh < long_attack_vanilla * 0.75

    def test_best_renewal_is_order_of_magnitude_better(self, scenario, trace):
        vanilla = sr_rate(scenario, trace, ResilienceConfig.vanilla())
        best = sr_rate(scenario, trace, ResilienceConfig.refresh_renew("a-lfu", 5))
        assert best < vanilla / 8

    def test_long_ttl_matches_best_renewal(self, scenario, trace):
        renew = sr_rate(scenario, trace, ResilienceConfig.refresh_renew("a-lfu", 5))
        long_ttl = sr_rate(scenario, trace, ResilienceConfig.refresh_long_ttl(7))
        assert abs(long_ttl - renew) < 0.05

    def test_combination_reaches_best_resilience(self, scenario, trace):
        vanilla = sr_rate(scenario, trace, ResilienceConfig.vanilla())
        combo = sr_rate(scenario, trace, ResilienceConfig.combination())
        assert combo < vanilla / 8

    def test_failures_increase_with_attack_duration(self, scenario, trace):
        short = sr_rate(scenario, trace, ResilienceConfig.vanilla(), hours=3)
        long = sr_rate(scenario, trace, ResilienceConfig.vanilla(), hours=24)
        assert long > short

    def test_cs_failures_exceed_sr_failures(self, scenario, trace):
        # SR queries can still be served from cache during the attack;
        # every CS query must touch the infrastructure (paper §5.1.1).
        result = run_replay(scenario.built, trace, ResilienceConfig.vanilla(),
                            attack=attack())
        assert result.cs_attack_failure_rate > result.sr_attack_failure_rate


class TestPolicyOrdering:
    @pytest.fixture(scope="class")
    def rates(self, scenario, trace):
        return {
            policy: sr_rate(
                scenario, trace, ResilienceConfig.refresh_renew(policy, 3)
            )
            for policy in ("lru", "lfu", "a-lru", "a-lfu")
        }

    def test_adaptive_beats_plain(self, rates):
        # Paper: LRU <= LFU <= A-LRU <= A-LFU (in resilience).
        assert rates["a-lru"] <= rates["lru"] + 0.01
        assert rates["a-lfu"] <= rates["lfu"] + 0.01

    def test_all_beat_refresh_only(self, scenario, trace, rates):
        refresh = sr_rate(scenario, trace, ResilienceConfig.refresh())
        for policy, rate in rates.items():
            assert rate <= refresh + 0.01, policy

    def test_higher_credit_never_hurts(self, scenario, trace):
        low = sr_rate(scenario, trace, ResilienceConfig.refresh_renew("lru", 1))
        high = sr_rate(scenario, trace, ResilienceConfig.refresh_renew("lru", 5))
        assert high <= low + 0.01


class TestLongTtlSaturation:
    def test_five_days_close_to_seven(self, scenario, trace):
        # Paper Figure 10: 5-day TTL ≈ 7-day TTL (the gap CDF saturates).
        five = sr_rate(scenario, trace, ResilienceConfig.refresh_long_ttl(5))
        seven = sr_rate(scenario, trace, ResilienceConfig.refresh_long_ttl(7))
        assert abs(five - seven) < 0.02

    def test_combination_saturates_at_three_days(self, scenario, trace):
        # Paper Figure 11: with A-LFU renewal, 3 days is enough.
        three = sr_rate(scenario, trace, ResilienceConfig.combination(days=3))
        seven = sr_rate(scenario, trace, ResilienceConfig.combination(days=7))
        assert abs(three - seven) < 0.02


class TestOverheadClaims:
    @pytest.fixture(scope="class")
    def baseline(self, scenario, trace):
        return run_replay(scenario.built, trace, ResilienceConfig.vanilla())

    def overhead(self, scenario, trace, config, baseline):
        result = run_replay(scenario.built, trace, config)
        return result.metrics.message_overhead_vs(baseline.metrics)

    def test_refresh_reduces_messages(self, scenario, trace, baseline):
        assert self.overhead(scenario, trace, ResilienceConfig.refresh(),
                             baseline) < 0.0

    def test_long_ttl_reduces_messages(self, scenario, trace, baseline):
        assert self.overhead(
            scenario, trace, ResilienceConfig.refresh_long_ttl(7), baseline
        ) < 0.0

    def test_adaptive_renewal_costs_most(self, scenario, trace, baseline):
        plain = self.overhead(
            scenario, trace, ResilienceConfig.refresh_renew("lfu", 3), baseline
        )
        adaptive = self.overhead(
            scenario, trace, ResilienceConfig.refresh_renew("a-lfu", 3), baseline
        )
        assert adaptive > plain > 0.0

    def test_combination_cheaper_than_adaptive_renewal(self, scenario, trace,
                                                       baseline):
        adaptive = self.overhead(
            scenario, trace, ResilienceConfig.refresh_renew("a-lfu", 3), baseline
        )
        combo = self.overhead(
            scenario, trace, ResilienceConfig.combination(), baseline
        )
        # Long TTLs slash the renewal refetch rate (paper §5.2.1).
        assert combo < adaptive / 2

    def test_memory_overhead_within_small_factor(self, scenario, trace):
        vanilla = run_replay(scenario.built, trace, ResilienceConfig.vanilla(),
                             memory_sample_interval=12 * HOUR)
        combo = run_replay(scenario.built, trace, ResilienceConfig.combination(),
                           memory_sample_interval=12 * HOUR)

        def steady(result):
            tail = [s.records_cached for s in result.metrics.memory_samples
                    if s.time >= 2 * 86400.0]
            return sum(tail) / len(tail)

        ratio = steady(combo) / steady(vanilla)
        # Paper Figure 12: enhanced schemes cache ~2-3x more objects.
        assert 1.0 <= ratio < 6.0
