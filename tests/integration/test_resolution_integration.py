"""End-to-end resolution against the *synthetic* hierarchy builder.

The unit suite uses the hand-built mini internet; these tests verify the
caching server can resolve every name the random builder produces,
including provider-hosted and parent-served zones, and that cache
economics behave sensibly over a replay.
"""

import pytest

from repro.core.caching_server import CachingServer, ResolutionOutcome
from repro.core.config import ResilienceConfig
from repro.dns.rrtypes import RRType
from repro.hierarchy.builder import HierarchyConfig, build_hierarchy
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import ReplayMetrics
from repro.simulation.network import Network


@pytest.fixture(scope="module")
def built():
    config = HierarchyConfig(num_tlds=6, num_slds=60, num_providers=3,
                             third_level_fraction=0.3)
    return build_hierarchy(config, seed=11)


def make_server(built, config=None):
    engine = SimulationEngine()
    network = Network(built.tree)
    metrics = ReplayMetrics()
    server = CachingServer(
        root_hints=built.tree.root_hints(),
        network=network,
        clock=engine,
        config=config or ResilienceConfig.vanilla(),
        metrics=metrics,
    )
    return server, metrics


class TestUniversalResolvability:
    def test_every_catalog_name_resolves(self, built):
        server, metrics = make_server(built)
        time = 0.0
        for zone_name, hosts in built.catalog.items():
            resolution = server.handle_stub_query(hosts[0], RRType.A, time)
            assert resolution.outcome in (
                ResolutionOutcome.ANSWERED, ResolutionOutcome.CACHE_HIT
            ), f"failed to resolve {hosts[0]}"
            time += 1.0
        assert metrics.sr_failures == 0

    def test_provider_hosted_zones_resolve(self, built):
        server, _ = make_server(built)
        hosted = [
            zone for zone in built.tree.zones()
            if zone.name.depth() == 2
            and not zone.infrastructure_records.glue
        ]
        assert hosted, "builder produced no provider-hosted zones"
        for zone in hosted[:5]:
            host = built.catalog[zone.name][0]
            resolution = server.handle_stub_query(host, RRType.A, 0.0)
            assert not resolution.failed

    def test_third_level_zones_resolve(self, built):
        server, _ = make_server(built)
        thirds = [z for z in built.tree.zone_names() if z.depth() == 3]
        assert thirds, "builder produced no third-level zones"
        for zone_name in thirds[:5]:
            host = built.catalog[zone_name][0]
            resolution = server.handle_stub_query(host, RRType.A, 0.0)
            assert not resolution.failed


class TestCacheEconomics:
    def test_warm_cache_reduces_per_query_cost(self, built):
        server, metrics = make_server(built)
        names = [hosts[0] for hosts in list(built.catalog.values())[:30]]
        for qname in names:
            server.handle_stub_query(qname, RRType.A, 0.0)
        cold_queries = metrics.cs_demand_queries
        for qname in names:
            server.handle_stub_query(qname, RRType.A, 1.0)
        warm_queries = metrics.cs_demand_queries - cold_queries
        assert warm_queries == 0  # all hits: data TTLs exceed 1 s

    def test_cache_holds_irrs_for_visited_zones(self, built):
        server, _ = make_server(built)
        names = [hosts[0] for hosts in list(built.catalog.values())[:20]]
        for qname in names:
            server.handle_stub_query(qname, RRType.A, 0.0)
        assert server.cached_zone_count(0.0) >= 15
        assert server.cached_record_count(0.0) > server.cached_zone_count(0.0)

    def test_refresh_config_never_resolves_worse(self, built):
        vanilla_server, vanilla_metrics = make_server(built)
        refresh_server, refresh_metrics = make_server(
            built, ResilienceConfig.refresh()
        )
        names = [hosts[0] for hosts in list(built.catalog.values())[:40]]
        for step, qname in enumerate(names * 3):
            vanilla_server.handle_stub_query(qname, RRType.A, float(step * 600))
            refresh_server.handle_stub_query(qname, RRType.A, float(step * 600))
        assert refresh_metrics.sr_failures == 0
        assert vanilla_metrics.sr_failures == 0
        assert refresh_metrics.cs_demand_queries <= vanilla_metrics.cs_demand_queries
