"""Failure injection: the resolver against broken/adversarial zone setups.

A production resolver's worth is measured on broken configurations —
CNAME loops, lame delegations, unresolvable glue — all of which the 2004
SIGCOMM study by the same authors found rampant.  The resolver must
degrade to clean failures in bounded work, never hang or crash.
"""

import pytest

from repro.core.caching_server import CachingServer, ResolutionOutcome
from repro.core.config import ResilienceConfig
from repro.dns.name import Name, root_name
from repro.dns.records import InfrastructureRecordSet, ResourceRecord, RRset
from repro.dns.rrtypes import RRType
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import ZoneBuilder
from repro.hierarchy.tree import ZoneTree
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import ReplayMetrics
from repro.simulation.network import Network

from tests.helpers import _irrs, _ns_only_irrs, name


def build_pathological_internet() -> ZoneTree:
    """Root + 'bad.' TLD with several deliberately broken children."""
    tree = ZoneTree()

    root_irrs = _irrs(".", [("a.root.", "10.9.0.1")], 86400 * 6)
    tld_irrs = _irrs("bad.", [("ns1.bad.", "10.9.0.2")], 86400 * 2)

    # Child 1: CNAME loop inside the zone.
    loop_irrs = _irrs("loop.bad.", [("ns1.loop.bad.", "10.9.0.3")], 3600)
    loop_builder = ZoneBuilder(name("loop.bad."), default_ttl=3600)
    loop_builder.add_ns("ns1.loop.bad.", "10.9.0.3")
    loop_builder.add_record(
        ResourceRecord(name("a.loop.bad."), RRType.CNAME, 300, name("b.loop.bad."))
    )
    loop_builder.add_record(
        ResourceRecord(name("b.loop.bad."), RRType.CNAME, 300, name("a.loop.bad."))
    )

    # Child 2: lame delegation — the parent points at a server that does
    # not serve the zone at all.
    lame_irrs = _ns_only_irrs("lame.bad.", ["ns1.loop.bad."], 3600)

    # Child 3: delegation whose server address does not exist.
    dead_irrs = _irrs("dead.bad.", [("ns1.dead.bad.", "10.9.99.99")], 3600)

    # Child 4: glue-less delegation whose NS name lives inside itself —
    # an unresolvable chicken-and-egg cut.
    cyclic_irrs = _ns_only_irrs("cyclic.bad.", ["ns1.cyclic.bad."], 3600)

    # Child 5: healthy control zone.
    good_irrs = _irrs("good.bad.", [("ns1.good.bad.", "10.9.0.4")], 3600)
    good_builder = ZoneBuilder(name("good.bad."), default_ttl=3600)
    good_builder.add_ns("ns1.good.bad.", "10.9.0.4")
    good_builder.add_address("www.good.bad.", "10.9.1.1", ttl=300)

    root_builder = ZoneBuilder(root_name(), default_ttl=86400 * 6)
    root_builder.add_ns("a.root.", "10.9.0.1")
    root_builder.delegate(tld_irrs)
    tree.add_zone(root_builder.build(),
                  [AuthoritativeServer(name("a.root."), "10.9.0.1")])

    tld_builder = ZoneBuilder(name("bad."), default_ttl=86400 * 2)
    tld_builder.add_ns("ns1.bad.", "10.9.0.2")
    for irrs in (loop_irrs, lame_irrs, dead_irrs, cyclic_irrs, good_irrs):
        tld_builder.delegate(irrs)
    tree.add_zone(tld_builder.build(),
                  [AuthoritativeServer(name("ns1.bad."), "10.9.0.2")])

    loop_server = AuthoritativeServer(name("ns1.loop.bad."), "10.9.0.3")
    tree.add_zone(loop_builder.build(), [loop_server])
    tree.add_zone(good_builder.build(),
                  [AuthoritativeServer(name("ns1.good.bad."), "10.9.0.4")])
    # dead.bad., lame.bad., cyclic.bad. are intentionally not added: their
    # "servers" either don't exist or never serve them.
    return tree


@pytest.fixture
def stack():
    tree = build_pathological_internet()
    engine = SimulationEngine()
    metrics = ReplayMetrics()
    server = CachingServer(
        root_hints=tree.root_hints(),
        network=Network(tree),
        clock=engine,
        config=ResilienceConfig.vanilla(),
        metrics=metrics,
    )
    return server, metrics


class TestPathologies:
    def test_cname_loop_fails_cleanly(self, stack):
        server, metrics = stack
        result = server.handle_stub_query(name("a.loop.bad."), RRType.A, 0.0)
        assert result.outcome is ResolutionOutcome.FAILURE
        # Bounded work despite the loop.
        assert metrics.cs_demand_queries < 25

    def test_lame_delegation_fails_cleanly(self, stack):
        server, metrics = stack
        result = server.handle_stub_query(name("www.lame.bad."), RRType.A, 0.0)
        assert result.outcome is ResolutionOutcome.FAILURE
        assert metrics.cs_demand_queries < 25

    def test_dead_server_fails_cleanly(self, stack):
        server, metrics = stack
        result = server.handle_stub_query(name("www.dead.bad."), RRType.A, 0.0)
        assert result.outcome is ResolutionOutcome.FAILURE

    def test_glueless_self_cycle_fails_cleanly(self, stack):
        server, metrics = stack
        result = server.handle_stub_query(name("www.cyclic.bad."), RRType.A, 0.0)
        assert result.outcome is ResolutionOutcome.FAILURE
        assert metrics.cs_demand_queries < 25

    def test_healthy_sibling_unaffected(self, stack):
        server, _ = stack
        for broken in ("a.loop.bad.", "www.lame.bad.", "www.dead.bad.",
                       "www.cyclic.bad."):
            server.handle_stub_query(name(broken), RRType.A, 0.0)
        result = server.handle_stub_query(name("www.good.bad."), RRType.A, 1.0)
        assert result.outcome is ResolutionOutcome.ANSWERED

    def test_repeated_pathological_queries_stay_bounded(self, stack):
        server, metrics = stack
        for step in range(10):
            server.handle_stub_query(name("www.dead.bad."), RRType.A,
                                     float(step))
        # Each retry costs a bounded number of queries (no amplification).
        assert metrics.cs_demand_queries < 10 * 12

    def test_out_of_zone_cname_tail_chased(self):
        """A CNAME pointing out of the zone is chased across zones."""
        tree = build_pathological_internet()
        # Add a zone with an external CNAME into good.bad.
        irrs = _irrs("x.bad.", [("ns1.x.bad.", "10.9.0.5")], 3600)
        builder = ZoneBuilder(name("x.bad."), default_ttl=3600)
        builder.add_ns("ns1.x.bad.", "10.9.0.5")
        builder.add_record(
            ResourceRecord(name("alias.x.bad."), RRType.CNAME, 300,
                           name("www.good.bad."))
        )
        tree.add_zone(builder.build(),
                      [AuthoritativeServer(name("ns1.x.bad."), "10.9.0.5")])
        # The TLD's delegation set is fixed at build time, so seed the
        # resolver's cache with x.bad.'s IRRs as if a referral had
        # delivered them.
        engine = SimulationEngine()
        server = CachingServer(
            root_hints=tree.root_hints(),
            network=Network(tree),
            clock=engine,
            config=ResilienceConfig.vanilla(),
            metrics=ReplayMetrics(),
        )
        from repro.dns.ranking import Rank
        for rrset in irrs.all_rrsets():
            server.cache.put(rrset, Rank.NON_AUTH_AUTHORITY, now=0.0)
        result = server.handle_stub_query(name("alias.x.bad."), RRType.A, 0.0)
        assert result.outcome is ResolutionOutcome.ANSWERED
        assert result.answer.rrtype is RRType.A
