"""Property-based tests of resolver-level invariants (hypothesis).

Random query sequences over the deterministic mini internet, checking
invariants that must hold for *any* workload:

* with all servers up, no lookup ever fails;
* metrics are internally consistent;
* identical (seed, sequence) pairs behave identically;
* the cache never grows without bound relative to the universe size.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.caching_server import CachingServer, ResolutionOutcome
from repro.core.config import ResilienceConfig
from repro.dns.rrtypes import RRType
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import ReplayMetrics
from repro.simulation.network import Network

from tests.helpers import build_mini_internet, name

_ALL_NAMES = [
    "www.example.test.",
    "mail.example.test.",
    "web.example.test.",
    "www.dept.example.test.",
    "www.hosted.test.",
    "www.provider.test.",
    "ghost.example.test.",      # NXDOMAIN
    "nope.hosted.test.",        # NXDOMAIN
]

_QTYPES = [RRType.A, RRType.AAAA, RRType.MX]

query_sequences = st.lists(
    st.tuples(
        st.sampled_from(_ALL_NAMES),
        st.sampled_from(_QTYPES),
        st.floats(min_value=0.1, max_value=3600.0, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)

configs = st.sampled_from([
    ResilienceConfig.vanilla(),
    ResilienceConfig.refresh(),
    ResilienceConfig.refresh_renew("a-lfu", 3),
    ResilienceConfig.refresh_long_ttl(3),
    ResilienceConfig.combination(),
    ResilienceConfig.stale_serving(),
])


def run_sequence(sequence, config, seed=0):
    mini = build_mini_internet()
    engine = SimulationEngine()
    metrics = ReplayMetrics()
    server = CachingServer(
        root_hints=mini.tree.root_hints(),
        network=Network(mini.tree),
        clock=engine,
        config=config,
        metrics=metrics,
        seed=seed,
    )
    outcomes = []
    now = 0.0
    for qname, qtype, gap in sequence:
        now += gap
        engine.advance_to(now)
        outcomes.append(
            server.handle_stub_query(name(qname), qtype, now).outcome
        )
    return server, metrics, outcomes


class TestResolverInvariants:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(query_sequences, configs)
    def test_no_failures_when_everything_is_up(self, sequence, config):
        _, metrics, outcomes = run_sequence(sequence, config)
        assert ResolutionOutcome.FAILURE not in outcomes
        assert metrics.sr_failures == 0

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(query_sequences, configs)
    def test_metrics_consistent(self, sequence, config):
        _, metrics, outcomes = run_sequence(sequence, config)
        assert metrics.sr_queries == len(sequence)
        assert metrics.sr_cache_hits <= metrics.sr_queries
        assert metrics.sr_failures <= metrics.sr_queries
        assert metrics.cs_demand_failures <= metrics.cs_demand_queries
        assert metrics.cs_renewal_failures <= metrics.cs_renewal_queries
        assert metrics.total_latency >= 0.0

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(query_sequences, configs,
           st.integers(min_value=0, max_value=1000))
    def test_deterministic_given_seed(self, sequence, config, seed):
        _, first_metrics, first = run_sequence(sequence, config, seed=seed)
        _, second_metrics, second = run_sequence(sequence, config, seed=seed)
        assert first == second
        assert first_metrics.cs_demand_queries == second_metrics.cs_demand_queries

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(query_sequences, configs)
    def test_cache_bounded_by_universe(self, sequence, config):
        server, _, _ = run_sequence(sequence, config)
        # The mini internet holds well under 100 distinct RRsets; no
        # sequence of queries may conjure more entries than exist.
        assert server.cache.total_entry_count() < 100

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(query_sequences)
    def test_nxdomain_names_always_nxdomain(self, sequence):
        augmented = sequence + [("ghost.example.test.", RRType.A, 1.0)]
        _, _, outcomes = run_sequence(augmented, ResilienceConfig.vanilla())
        assert outcomes[-1] is ResolutionOutcome.NXDOMAIN

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(query_sequences, configs)
    def test_answers_carry_rrsets(self, sequence, config):
        mini_outcomes_with_answers = (
            ResolutionOutcome.CACHE_HIT,
            ResolutionOutcome.ANSWERED,
            ResolutionOutcome.STALE_HIT,
        )
        server, metrics, outcomes = run_sequence(sequence, config)
        # Re-run capturing resolutions to inspect answers.
        mini = build_mini_internet()
        engine = SimulationEngine()
        server = CachingServer(
            root_hints=mini.tree.root_hints(),
            network=Network(mini.tree),
            clock=engine,
            config=config,
            metrics=ReplayMetrics(),
        )
        now = 0.0
        for qname, qtype, gap in sequence:
            now += gap
            engine.advance_to(now)
            resolution = server.handle_stub_query(name(qname), qtype, now)
            if resolution.outcome in mini_outcomes_with_answers:
                assert resolution.answer is not None
                assert len(resolution.answer) >= 1
