"""The bounded serve-stale memo: eviction order, sweep, and the gauge.

Regression tests for the unbounded ``_last_good`` memo: entries were
only evicted when their exact key was probed after expiry, so a pass
over many distinct names pinned memory forever.  The memo is exercised
directly (no sockets): ``_store_memo`` takes ``now`` as an argument
and ``_usable_memo`` only needs a clock with ``now()``.
"""

from __future__ import annotations

from repro.core.caching_server import Resolution, ResolutionOutcome
from repro.serve.server import DnsFrontEnd
from repro.serve.spec import ServeSpec


class _Clock:
    def __init__(self, now: float = 0.0) -> None:
        self._now = now

    def now(self) -> float:
        return self._now


def _front_end(**overrides) -> DnsFrontEnd:
    spec = ServeSpec(port=0, metrics_port=-1, stale_grace=30.0, **overrides)
    front_end = DnsFrontEnd(spec)
    front_end.clock = _Clock()
    return front_end


_ANSWER = Resolution(ResolutionOutcome.ANSWERED, None)


class TestMemoBound:
    def test_capacity_never_exceeded(self):
        front_end = _front_end(stale_memo_max=8)
        for key in range(50):
            front_end._store_memo(key, now=float(key), ttl=300.0, resolution=_ANSWER)
            assert len(front_end._last_good) <= 8
        assert front_end.metrics.stale_memo_entries == 8

    def test_expired_entries_swept_before_live_eviction(self):
        front_end = _front_end(stale_memo_max=3)
        # Two entries long past ttl+grace by t=100, one still fresh.
        front_end._store_memo(1, now=0.0, ttl=10.0, resolution=_ANSWER)
        front_end._store_memo(2, now=0.0, ttl=10.0, resolution=_ANSWER)
        front_end._store_memo(3, now=99.0, ttl=300.0, resolution=_ANSWER)
        front_end._store_memo(4, now=100.0, ttl=300.0, resolution=_ANSWER)
        # The sweep removed the expired pair, not the fresh entry.
        assert set(front_end._last_good) == {3, 4}
        assert front_end.metrics.stale_memo_entries == 2

    def test_oldest_stored_evicted_when_nothing_expired(self):
        front_end = _front_end(stale_memo_max=2)
        front_end._store_memo(1, now=0.0, ttl=300.0, resolution=_ANSWER)
        front_end._store_memo(2, now=1.0, ttl=300.0, resolution=_ANSWER)
        front_end._store_memo(3, now=2.0, ttl=300.0, resolution=_ANSWER)
        assert set(front_end._last_good) == {2, 3}

    def test_restore_refreshes_storage_order(self):
        front_end = _front_end(stale_memo_max=2)
        front_end._store_memo(1, now=0.0, ttl=300.0, resolution=_ANSWER)
        front_end._store_memo(2, now=1.0, ttl=300.0, resolution=_ANSWER)
        # Re-storing key 1 moves it to the back: key 2 is now oldest.
        front_end._store_memo(1, now=2.0, ttl=300.0, resolution=_ANSWER)
        front_end._store_memo(3, now=3.0, ttl=300.0, resolution=_ANSWER)
        assert set(front_end._last_good) == {1, 3}

    def test_zero_max_disables_the_memo(self):
        front_end = _front_end(stale_memo_max=0)
        front_end._store_memo(1, now=0.0, ttl=300.0, resolution=_ANSWER)
        assert not front_end._last_good
        assert front_end.metrics.stale_memo_entries == 0


class TestMemoProbe:
    def test_usable_within_grace_then_dropped_past_it(self):
        front_end = _front_end(stale_memo_max=8)
        front_end._store_memo(1, now=0.0, ttl=10.0, resolution=_ANSWER)
        front_end.clock._now = 40.0  # ttl 10 + grace 30: boundary
        assert front_end._usable_memo(1) is _ANSWER
        front_end.clock._now = 40.5
        assert front_end._usable_memo(1) is None
        assert 1 not in front_end._last_good
        assert front_end.metrics.stale_memo_entries == 0

    def test_gauge_rendered_in_scrape(self):
        front_end = _front_end(stale_memo_max=8)
        front_end._store_memo(1, now=0.0, ttl=300.0, resolution=_ANSWER)
        text = front_end.metrics.render()
        assert "repro_serve_stale_memo_entries 1" in text
