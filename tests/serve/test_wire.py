"""Wire codec: golden vectors against the SNIPPETS layout + round trips.

Two kinds of evidence that the codec speaks RFC 1035 and not a private
dialect:

* Golden vectors built with the exact ``struct`` layout the raw-socket
  resolvers in SNIPPETS.md use (``!HHHHHH`` header, length-prefixed
  labels, ``!HH`` question tail, ``!HHIH`` RR fixed part, ``0xC0``
  compression pointers) — encoded queries must match those bytes
  octet-for-octet, and encoded responses must parse under a
  transliteration of that snippet's reader.
* Hypothesis round trips ``Message -> encode_response -> decode_message``
  over every rdata shape the simulator emits, including compressed
  names, mixed-case query echo and the TC/TCP fallback path.
"""

from __future__ import annotations

import ipaddress
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.dns.message import Message, Question, Rcode
from repro.dns.name import Name
from repro.dns.records import ResourceRecord, RRset
from repro.dns.rrtypes import RRClass, RRType
from repro.serve.wire import (
    FLAG_AA,
    FLAG_QR,
    FLAG_RA,
    FLAG_RD,
    FLAG_TC,
    HEADER,
    UDP_PAYLOAD_MAX,
    WireFormatError,
    decode_message,
    decode_query,
    encode_query,
    encode_response,
    frame_tcp,
)


def _snippet_qname(domain: str) -> bytes:
    """The SNIPPETS.md query-name encoding, verbatim technique."""
    return b"".join(
        bytes([len(part)]) + part.encode() for part in domain.split(".")
    ) + b"\x00"


def _snippet_read_name(data: bytes, offset: int) -> tuple[str, int]:
    """Name reader transliterated from the SNIPPETS raw-socket resolver:
    length-prefixed labels terminated by 0x00, 0xC0 two-octet pointers."""
    labels = []
    jumped_end = None
    while True:
        length = data[offset]
        if length & 0xC0 == 0xC0:
            pointer = struct.unpack("!H", data[offset:offset + 2])[0] & 0x3FFF
            if jumped_end is None:
                jumped_end = offset + 2
            offset = pointer
            continue
        offset += 1
        if length == 0:
            return ".".join(labels), (
                jumped_end if jumped_end is not None else offset
            )
        labels.append(data[offset:offset + length].decode())
        offset += length


def _snippet_parse_answers(data: bytes) -> list[tuple[str, int, int, str]]:
    """Answer-section parser in the SNIPPETS struct layout.

    Returns ``(owner, ttl, rtype, rdata-as-text)`` rows; A records are
    rendered dotted-quad exactly as the snippet does.
    """
    _tid, _flags, qdcount, ancount, _ns, _ar = struct.unpack(
        "!HHHHHH", data[:12]
    )
    offset = 12
    for _ in range(qdcount):
        _, offset = _snippet_read_name(data, offset)
        offset += 4  # qtype + qclass
    rows = []
    for _ in range(ancount):
        owner, offset = _snippet_read_name(data, offset)
        rtype, _rclass, ttl, rdlength = struct.unpack(
            "!HHIH", data[offset:offset + 10]
        )
        offset += 10
        if rtype == 1 and rdlength == 4:
            rdata = ".".join(str(b) for b in data[offset:offset + 4])
        else:
            rdata = data[offset:offset + rdlength].hex()
        rows.append((owner, ttl, rtype, rdata))
        offset += rdlength
    return rows


class TestGoldenVectors:
    def test_query_matches_snippet_layout(self):
        """encode_query output is byte-identical to the SNIPPETS builder:
        ``pack("!HHHHHH", tid, 0x0100, 1, 0, 0, 0)`` + qname + ``!HH``."""
        question = Question(Name.from_text("www.example.com"), RRType.A)
        expected = (
            struct.pack("!HHHHHH", 0x1234, 0x0100, 1, 0, 0, 0)
            + _snippet_qname("www.example.com")
            + struct.pack("!HH", 1, 1)
        )
        assert encode_query(question, 0x1234) == expected

    def test_query_without_rd_clears_the_flag(self):
        question = Question(Name.from_text("example.com"), RRType.NS)
        packet = encode_query(question, 7, recursion_desired=False)
        assert packet[:12] == struct.pack("!HHHHHH", 7, 0, 1, 0, 0, 0)
        assert packet[12:] == _snippet_qname("example.com") + struct.pack(
            "!HH", 2, 1
        )

    def test_response_parses_under_the_snippet_reader(self):
        """A compressed two-record answer decodes correctly with the
        SNIPPETS parser (owner via 0xC0 pointer, A rdata dotted-quad)."""
        name = Name.from_text("www.ucla.edu")
        rrset = RRset.from_records([
            ResourceRecord(name, RRType.A, 300, "131.179.0.1"),
            ResourceRecord(name, RRType.A, 300, "131.179.0.2"),
        ])
        message = Message(
            question=Question(name, RRType.A),
            authoritative=True,
            answer=(rrset,),
            message_id=0xBEEF,
        )
        packet = encode_response(message)
        rows = _snippet_parse_answers(packet)
        assert rows == [
            ("www.ucla.edu", 300, 1, "131.179.0.1"),
            ("www.ucla.edu", 300, 1, "131.179.0.2"),
        ]
        # The owner name repeats, so the second record must use a
        # compression pointer back into the question.
        assert any(
            packet[i] & 0xC0 == 0xC0 for i in range(12, len(packet))
        )
        assert len(packet) < 12 + 2 * (len("www.ucla.edu") + 2 + 4 + 10 + 4)

    def test_hand_built_response_decodes(self):
        """A packet assembled with raw struct calls (the snippet's
        authoring side) decodes into the expected Message."""
        qname = _snippet_qname("ns1.tld7.example")
        packet = (
            struct.pack(
                "!HHHHHH", 42, FLAG_QR | FLAG_AA | FLAG_RA, 1, 1, 0, 0
            )
            + qname
            + struct.pack("!HH", 1, 1)
            + struct.pack("!H", 0xC000 | 12)  # owner = pointer to qname
            + struct.pack("!HHIH", 1, 1, 3600, 4)
            + bytes([10, 0, 0, 7])
        )
        decoded = decode_message(packet)
        message = decoded.message
        assert message.message_id == 42
        assert message.authoritative
        assert message.rcode is Rcode.NOERROR
        assert decoded.recursion_available
        assert not decoded.truncated
        assert message.question == Question(
            Name.from_text("ns1.tld7.example"), RRType.A
        )
        (answer,) = message.answer
        assert answer.name == Name.from_text("ns1.tld7.example")
        assert [record.data for record in answer.records] == ["10.0.0.7"]
        assert answer.records[0].ttl == 3600.0


class TestQueryDecoding:
    def test_round_trip_preserves_raw_case(self):
        """0x20 case mixing survives: canonical Name is lowercased but
        raw_labels keep the client's octets."""
        question = Question(Name.from_text("www.example.com"), RRType.A)
        packet = encode_query(
            question, 99, raw_labels=("WwW", "ExAmPlE", "CoM")
        )
        decoded = decode_query(packet)
        assert decoded.message_id == 99
        assert decoded.question == question
        assert decoded.raw_labels == ("WwW", "ExAmPlE", "CoM")
        assert decoded.recursion_desired
        assert decoded.opcode == 0

    def test_response_bit_rejected(self):
        packet = bytearray(
            encode_query(Question(Name.from_text("a.b"), RRType.A), 1)
        )
        packet[2] |= FLAG_QR >> 8
        with pytest.raises(WireFormatError, match="QR"):
            decode_query(bytes(packet))

    def test_short_packet_rejected(self):
        with pytest.raises(WireFormatError, match="shorter"):
            decode_query(b"\x00\x01\x00")

    def test_multi_question_rejected(self):
        packet = bytearray(
            encode_query(Question(Name.from_text("a.b"), RRType.A), 1)
        )
        packet[5] = 2  # qdcount
        with pytest.raises(WireFormatError, match="one question"):
            decode_query(bytes(packet))

    def test_forward_pointer_rejected(self):
        packet = (
            struct.pack("!HHHHHH", 1, 0, 1, 0, 0, 0)
            + struct.pack("!H", 0xC000 | 400)
            + struct.pack("!HH", 1, 1)
        )
        with pytest.raises(WireFormatError, match="pointer"):
            decode_query(packet)

    def test_label_running_off_the_end_rejected(self):
        packet = struct.pack("!HHHHHH", 1, 0, 1, 0, 0, 0) + b"\x3fabc"
        with pytest.raises(WireFormatError):
            decode_query(packet)


class TestTruncationAndTcp:
    def _big_message(self) -> Message:
        name = Name.from_text("big.example.com")
        records = [
            ResourceRecord(name, RRType.TXT, 60, f"filler-{i:03d}-" + "x" * 40)
            for i in range(20)
        ]
        return Message(
            question=Question(name, RRType.TXT),
            answer=(RRset.from_records(records),),
            message_id=5,
        )

    def test_oversize_udp_response_truncates_to_question(self):
        message = self._big_message()
        full = encode_response(message)
        assert len(full) > UDP_PAYLOAD_MAX
        packet = encode_response(message, max_size=UDP_PAYLOAD_MAX)
        assert len(packet) <= UDP_PAYLOAD_MAX
        decoded = decode_message(packet)
        assert decoded.truncated
        assert decoded.message.answer == ()
        assert decoded.message.question == message.question
        assert packet[2] & (FLAG_TC >> 8)

    def test_tcp_path_carries_the_full_answer(self):
        message = self._big_message()
        framed = frame_tcp(encode_response(message))
        (length,) = struct.unpack("!H", framed[:2])
        assert length == len(framed) - 2
        decoded = decode_message(framed[2:])
        assert not decoded.truncated
        assert decoded.message == message

    def test_fits_exactly_is_not_truncated(self):
        name = Name.from_text("a.b")
        message = Message(
            question=Question(name, RRType.A),
            answer=(
                RRset.from_records([ResourceRecord(name, RRType.A, 1, "1.2.3.4")]),
            ),
            message_id=1,
        )
        packet = encode_response(message, max_size=UDP_PAYLOAD_MAX)
        assert not decode_message(packet).truncated

    def test_overlong_tcp_message_rejected(self):
        with pytest.raises(WireFormatError, match="TCP framing"):
            frame_tcp(b"\x00" * 0x10000)


# ---------------------------------------------------------------------------
# Property-based round trips
# ---------------------------------------------------------------------------

_LABEL = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=12
)
_NAMES = st.lists(_LABEL, min_size=1, max_size=3).map(
    lambda labels: Name.from_text(".".join(labels) + ".")
)
_TTLS = st.integers(min_value=0, max_value=2**31)
_MESSAGE_IDS = st.integers(min_value=0, max_value=0xFFFF)

_A_DATA = st.tuples(*(st.integers(0, 255),) * 4).map(
    lambda quad: ".".join(str(octet) for octet in quad)
)
_AAAA_DATA = st.integers(min_value=0, max_value=2**128 - 1).map(
    lambda value: str(ipaddress.IPv6Address(value))
)
_TXT_DATA = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789 -._", max_size=40
)


@st.composite
def _soa_data(draw) -> str:
    mname = draw(_NAMES)
    rname = draw(_NAMES)
    serial = draw(st.integers(0, 2**32 - 1))
    minimum = draw(st.integers(0, 2**32 - 1))
    return f"{mname} {rname} {serial} {minimum}"


@st.composite
def _rrset(draw, name: Name, rrtype: RRType) -> RRset:
    ttl = draw(_TTLS)
    if rrtype is RRType.A:
        data = draw(st.lists(_A_DATA, min_size=1, max_size=3, unique=True))
    elif rrtype is RRType.AAAA:
        data = draw(st.lists(_AAAA_DATA, min_size=1, max_size=2, unique=True))
    elif rrtype in (RRType.NS, RRType.CNAME):
        data = draw(st.lists(_NAMES, min_size=1, max_size=3, unique=True))
    elif rrtype is RRType.SOA:
        data = [draw(_soa_data())]
    else:  # TXT
        data = draw(st.lists(_TXT_DATA, min_size=1, max_size=2, unique=True))
    return RRset.from_records(
        [ResourceRecord(name, rrtype, ttl, value) for value in data]
    )


_SECTION_TYPES = st.sampled_from(
    (RRType.A, RRType.AAAA, RRType.NS, RRType.CNAME, RRType.SOA, RRType.TXT)
)


@st.composite
def _section(draw, max_rrsets: int = 2) -> tuple[RRset, ...]:
    # Adjacent records sharing an (owner, type) are re-bundled into one
    # RRset on decode, so each section draws distinct keys.
    keys = draw(
        st.lists(
            st.tuples(_NAMES, _SECTION_TYPES),
            max_size=max_rrsets,
            unique=True,
        )
    )
    return tuple(draw(_rrset(name, rrtype)) for name, rrtype in keys)


@st.composite
def _message(draw) -> Message:
    return Message(
        question=Question(draw(_NAMES), draw(_SECTION_TYPES)),
        rcode=draw(st.sampled_from(Rcode)),
        authoritative=draw(st.booleans()),
        answer=draw(_section()),
        authority=draw(_section()),
        additional=draw(_section(max_rrsets=1)),
        message_id=draw(_MESSAGE_IDS),
    )


class TestRoundTripProperties:
    @settings(max_examples=150, deadline=None)
    @given(message=_message())
    def test_message_round_trips(self, message: Message):
        """Message -> encode_response -> decode_message is the identity
        (modulo float TTLs, which the strategies keep integral)."""
        decoded = decode_message(encode_response(message))
        assert decoded.message == message
        assert not decoded.truncated

    @settings(max_examples=150, deadline=None)
    @given(message=_message(), mid=_MESSAGE_IDS, rd=st.booleans())
    def test_server_side_overrides_round_trip(self, message, mid, rd):
        """The serving path's id rewrite and RD echo land in the header."""
        packet = encode_response(
            message, message_id=mid, recursion_desired=rd
        )
        decoded = decode_message(packet)
        assert decoded.message.message_id == mid
        assert bool(packet[2] & (FLAG_RD >> 8)) == rd
        assert decoded.recursion_available
        other = Message(
            question=message.question,
            rcode=message.rcode,
            authoritative=message.authoritative,
            answer=message.answer,
            authority=message.authority,
            additional=message.additional,
            message_id=mid,
        )
        assert decoded.message == other

    @settings(max_examples=100, deadline=None)
    @given(
        name=_NAMES,
        rrtype=_SECTION_TYPES,
        mid=_MESSAGE_IDS,
        rd=st.booleans(),
    )
    def test_query_round_trips(self, name, rrtype, mid, rd):
        question = Question(name, rrtype)
        decoded = decode_query(
            encode_query(question, mid, recursion_desired=rd)
        )
        assert decoded.question == question
        assert decoded.message_id == mid
        assert decoded.recursion_desired == rd
        assert decoded.raw_labels == name.labels

    @settings(max_examples=100, deadline=None)
    @given(message=_message())
    def test_truncation_never_exceeds_the_ceiling(self, message: Message):
        packet = encode_response(message, max_size=UDP_PAYLOAD_MAX)
        assert len(packet) <= UDP_PAYLOAD_MAX or len(
            encode_response(message)
        ) <= UDP_PAYLOAD_MAX
        decoded = decode_message(packet)
        assert decoded.message.question == message.question
        if decoded.truncated:
            assert decoded.message.answer == ()

    @settings(max_examples=100, deadline=None)
    @given(message=_message())
    def test_compression_round_trips_class(self, message: Message):
        """Every decoded record keeps class IN (the only class encoded)."""
        decoded = decode_message(encode_response(message))
        for rrset in decoded.message.all_rrsets():
            for record in rrset:
                assert record.rrclass is RRClass.IN
