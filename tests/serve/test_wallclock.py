"""WallClock: the Clock protocol on a live asyncio loop.

These tests run a real (short-lived) event loop — they live under
``tests/serve/`` and inherit the serve REP001 allowlance, because
asserting wall-timer behaviour requires reading wall time.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.clock import Clock, VirtualClock, as_clock
from repro.serve.clock import WallClock
from repro.simulation.engine import SimulationEngine


def _run(coro):
    return asyncio.run(coro)


class TestProtocolConformance:
    def test_wallclock_satisfies_clock(self):
        async def check() -> bool:
            clock = WallClock(asyncio.get_running_loop())
            return isinstance(clock, Clock)

        assert _run(check())

    def test_as_clock_passes_wallclock_through(self):
        async def check():
            clock = WallClock(asyncio.get_running_loop())
            return as_clock(clock) is clock

        assert _run(check())

    def test_virtualclock_and_wallclock_share_the_contract(self):
        virtual = VirtualClock(SimulationEngine())
        assert isinstance(virtual, Clock)
        for method in ("now", "schedule", "schedule_at", "cancel"):
            assert callable(getattr(virtual, method))
            assert callable(getattr(WallClock, method))


class TestTimers:
    def test_now_is_monotonic(self):
        async def check():
            clock = WallClock(asyncio.get_running_loop())
            first = clock.now()
            await asyncio.sleep(0.01)
            return first, clock.now()

        first, second = _run(check())
        assert second > first

    def test_schedule_fires_with_the_fire_time(self):
        async def check():
            clock = WallClock(asyncio.get_running_loop())
            fired = asyncio.Event()
            seen: list[float] = []

            def action(when: float) -> None:
                seen.append(when)
                fired.set()

            before = clock.now()
            clock.schedule(0.01, action)
            await asyncio.wait_for(fired.wait(), timeout=2.0)
            return before, seen

        before, seen = _run(check())
        assert len(seen) == 1
        assert seen[0] >= before

    def test_schedule_at_in_the_past_fires_promptly(self):
        async def check():
            clock = WallClock(asyncio.get_running_loop())
            fired = asyncio.Event()
            clock.schedule_at(clock.now() - 10.0, lambda _now: fired.set())
            await asyncio.wait_for(fired.wait(), timeout=2.0)
            return clock.pending_timers()

        assert _run(check()) == 0

    def test_negative_delay_rejected(self):
        async def check():
            clock = WallClock(asyncio.get_running_loop())
            with pytest.raises(ValueError, match="negative delay"):
                clock.schedule(-1.0, lambda _now: None)

        _run(check())

    def test_cancel_prevents_firing(self):
        async def check():
            clock = WallClock(asyncio.get_running_loop())
            fired: list[float] = []
            token = clock.schedule(0.01, fired.append)
            assert clock.cancel(token)
            assert not clock.cancel(token)  # idempotent: already gone
            await asyncio.sleep(0.05)
            return fired, clock.pending_timers()

        fired, pending = _run(check())
        assert fired == []
        assert pending == 0

    def test_cancel_of_fired_timer_returns_false(self):
        async def check():
            clock = WallClock(asyncio.get_running_loop())
            fired = asyncio.Event()
            token = clock.schedule(0.0, lambda _now: fired.set())
            await asyncio.wait_for(fired.wait(), timeout=2.0)
            return clock.cancel(token)

        assert _run(check()) is False

    def test_tokens_are_unique(self):
        async def check():
            clock = WallClock(asyncio.get_running_loop())
            tokens = [
                clock.schedule(5.0, lambda _now: None) for _ in range(10)
            ]
            for token in tokens:
                assert clock.cancel(token)
            return tokens

        tokens = _run(check())
        assert len(set(tokens)) == len(tokens)


class TestThreading:
    def test_schedule_from_another_thread(self):
        """The resolver thread arms timers while the loop thread owns the
        handles — the exact shape RenewalManager exercises."""

        async def check():
            loop = asyncio.get_running_loop()
            clock = WallClock(loop)
            fired = asyncio.Event()

            def from_thread() -> None:
                clock.schedule(0.01, lambda _now: loop.call_soon_threadsafe(fired.set))

            worker = threading.Thread(target=from_thread)
            worker.start()
            worker.join()
            await asyncio.wait_for(fired.wait(), timeout=2.0)
            return True

        assert _run(check())

    def test_runner_receives_the_timer_body(self):
        """Timer bodies execute wherever the runner puts them, not on the
        loop thread."""

        async def check():
            loop = asyncio.get_running_loop()
            clock_threads: list[str] = []
            done = asyncio.Event()

            def runner(body):
                def labelled():
                    clock_threads.append(threading.current_thread().name)
                    body()
                    loop.call_soon_threadsafe(done.set)

                thread = threading.Thread(target=labelled, name="test-runner")
                thread.start()
                return thread

            clock = WallClock(loop, runner=runner)
            fired: list[float] = []
            clock.schedule(0.0, fired.append)
            await asyncio.wait_for(done.wait(), timeout=2.0)
            return clock_threads, fired

        clock_threads, fired = _run(check())
        assert clock_threads == ["test-runner"]
        assert len(fired) == 1

    def test_cancel_from_another_thread_before_arming(self):
        """schedule() immediately followed by cancel() on a non-loop
        thread never fires — the arming callback sees the token gone."""

        async def check():
            loop = asyncio.get_running_loop()
            clock = WallClock(loop)
            fired: list[float] = []
            outcomes: list[bool] = []

            def from_thread() -> None:
                token = clock.schedule(0.0, fired.append)
                outcomes.append(clock.cancel(token))

            worker = threading.Thread(target=from_thread)
            worker.start()
            worker.join()
            await asyncio.sleep(0.05)
            return fired, outcomes, clock.pending_timers()

        fired, outcomes, pending = _run(check())
        assert fired == []
        assert outcomes == [True]
        assert pending == 0
